//! # stateful-entities — paper reproduction, top-level facade
//!
//! Re-exports the public API of `se-core`. See the README for a tour and
//! `examples/` for runnable scenarios.

pub use se_core::*;
