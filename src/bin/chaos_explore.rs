//! `chaos_explore` — randomized, seed-reproducible chaos scenarios against
//! the StateFlow engine, with script shrinking on failure.
//!
//! Each scenario samples a point in {workload A/T, zipfian/uniform key
//! popularity, pipeline depth 1/2/4/8, execution backend interp/vm,
//! exec-pool size 1/4, durability off/wal, live upgrade on/off, seeded
//! fault script} — a 256-cell matrix — and runs a contended workload (plus,
//! for T, a slice of transfers to a nonexistent "ghost" account, so errored
//! transactions share batches with healthy ones). Durable scenarios
//! additionally sample an fsync policy and arm disk-fault generation
//! (torn/lost WAL tails, bit flips, missing base snapshots, slow/failed
//! fsyncs), so recovery runs from damaged disks. Upgrade scenarios redeploy
//! a semantics-preserving v2 of the account class mid-stream, so the
//! epoch-boundary switchover and its migration pass race the fault script.
//! The run records its execution history; a scenario passes only if
//!
//! 1. every request completes (liveness — quarantined messages and scripted
//!    crashes must never wedge the system),
//! 2. the history passes the serializability checker (decisions justified,
//!    exactly-once across recoveries, retries monotone),
//! 3. replaying the history's equivalent serial order through the
//!    single-threaded Local oracle reproduces every committed response and
//!    the distributed run's final state.
//!
//! On failure the driver *shrinks*: it removes scripted faults one at a
//! time, re-running after each removal and keeping it when the failure
//! still reproduces, then reports `(seed, minimized script)` as JSON under
//! `chaos_results/` and exits non-zero.
//!
//! Knobs: `SE_CHAOS_SEED` (master seed), `SE_CHAOS_SCENARIOS` (count,
//! default 20; `--scenarios N` wins), `SE_TIME_SCALE` (applied to the
//! simulated network), `SE_CHAOS_INJECT_BUG` (pair with `--expect-bug`):
//! `reserve-errored` reverts the errored-transaction reservation fix — the
//! self-test proving the harness catches a real historical bug;
//! `wal-no-crc` disables WAL checksum validation at recovery while forcing
//! durable scenarios with bit-flip disk faults, proving the harness catches
//! silently corrupted recovery state; `torn-upgrade` makes the coordinator
//! resume sealing batches while a live upgrade's migration pass is still in
//! flight, proving the checker catches a non-atomic version switchover.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use se_chaos::{CrashFault, CrashPoint};
use stateful_entities::prelude::*;
use stateful_entities::{
    check_history, serial_order, ChaosPlan, DiskFault, DiskFaultKind, DurabilityMode, FaultScript,
    FsyncPolicy, History, ScriptConfig, StateflowConfig, StateflowRuntime,
};

const WORKERS: usize = 3;
const KEYS: usize = 8;
/// One extra account normal ops never touch: each ghost transfer draws
/// from it and is chased by a healthy deposit to it, so the pair shares a
/// key with *no other writer* — an abort of that deposit can never be
/// justified by a natural conflict, which is exactly the signature of the
/// errored-reservation regression the harness must be able to catch.
const FRAGILE: usize = KEYS;
const ACCOUNTS: usize = KEYS + 1;
const OPS: usize = 120;
const INITIAL_BALANCE: i64 = 500;
const VALUE_SIZE: usize = 16;
const WAIT: Duration = Duration::from_secs(60);

fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// One sampled scenario (everything needed to reproduce it).
#[derive(Debug, Clone, Serialize)]
struct Scenario {
    seed: u64,
    workload: &'static str,
    dist: &'static str,
    depth: usize,
    backend: String,
    exec_threads: usize,
    durability: &'static str,
    /// Fsync policy string for durable scenarios (`"-"` with durability
    /// off): `every-commit`, `on-epoch`, `every-3` or `never`.
    fsync: String,
    /// Whether a semantics-preserving v2 of the account class is
    /// live-redeployed halfway through the request stream.
    upgrade: bool,
    script: FaultScript,
}

impl Scenario {
    fn sample(seed: u64) -> Scenario {
        // The workload point comes from the seed's low bits, so the
        // sequential seeds of one run sweep the whole 256-cell matrix
        // (A/T × zipfian/uniform × depth {1,2,4,8} × interp/vm ×
        // exec-pool {1,4} × durability off/wal × upgrade off/on)
        // deterministically; the fault script comes from the full seed.
        let workload = if seed & 1 == 0 { "A" } else { "T" };
        let dist = if seed & 2 == 0 { "zipfian" } else { "uniform" };
        let depth = [1usize, 2, 4, 8][(seed >> 2) as usize % 4];
        let backend = if seed & 16 == 0 { "interp" } else { "vm" };
        let exec_threads = if seed & 32 == 0 { 1 } else { 4 };
        let durability = if seed & 64 == 0 { "off" } else { "wal" };
        let upgrade = seed & 128 != 0;
        let mut script_cfg = ScriptConfig::stateflow(WORKERS);
        let fsync = if durability == "wal" {
            // Disk faults only make sense against a WAL; the fsync policy
            // moves the durable/unsynced boundary the faults play against.
            script_cfg = script_cfg.with_disk_faults(2);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C_F517_AB1E_5EED);
            ["every-commit", "on-epoch", "every-3", "never"][rng.gen_range(0..4)].to_string()
        } else {
            "-".to_string()
        };
        let script = FaultScript::generate(seed, &script_cfg);
        Scenario {
            seed,
            workload,
            dist,
            depth,
            backend: backend.to_string(),
            exec_threads,
            durability,
            fsync,
            upgrade,
            script,
        }
    }
}

/// One operation of the generated request sequence.
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Update(usize, u8),
    Deposit(usize, i64),
    Transfer(usize, usize, i64),
    /// Transfer to the nonexistent ghost account: errors mid-chain with a
    /// buffered write — the shape that exercises the errored-reservation
    /// path.
    GhostTransfer(usize),
}

fn ops_for(sc: &Scenario) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut chooser: Box<dyn se_workloads::KeyChooser> = match sc.dist {
        "zipfian" => Box::new(se_workloads::Zipfian::new(KEYS)),
        _ => Box::new(se_workloads::Uniform::new(KEYS)),
    };
    let mut ops = Vec::with_capacity(OPS + OPS / 9 + 1);
    for i in 0..OPS {
        let k = chooser.next_key(&mut rng);
        match sc.workload {
            "A" => {
                if rng.gen_bool(0.5) {
                    ops.push(Op::Read(k));
                } else {
                    ops.push(Op::Update(k, rng.gen::<u8>()));
                }
            }
            _ => {
                if i % 9 == 8 {
                    // The errored writer and a healthy higher-id deposit
                    // on the same otherwise-untouched account, issued
                    // back-to-back so they usually share a batch: the
                    // deposit may only ever abort if the errored chain's
                    // buffered write reserves — the regression signature.
                    ops.push(Op::GhostTransfer(FRAGILE));
                    ops.push(Op::Deposit(FRAGILE, rng.gen_range(1..5)));
                } else {
                    let mut to = chooser.next_key(&mut rng);
                    if to == k {
                        to = (to + 1) % KEYS;
                    }
                    ops.push(Op::Transfer(k, to, rng.gen_range(1..5)));
                }
            }
        }
    }
    ops
}

fn acct(i: usize) -> EntityRef {
    EntityRef::new("Account", se_workloads::key_name(i))
}

fn invocation(op: &Op) -> (EntityRef, &'static str, Vec<Value>) {
    match op {
        Op::Read(k) => (acct(*k), "read", vec![]),
        Op::Update(k, fill) => (
            acct(*k),
            "update",
            vec![Value::Bytes(vec![*fill; VALUE_SIZE])],
        ),
        Op::Deposit(k, amount) => (acct(*k), "deposit", vec![Value::Int(*amount)]),
        Op::Transfer(from, to, amount) => (
            acct(*from),
            "transfer",
            vec![Value::Ref(acct(*to)), Value::Int(*amount)],
        ),
        Op::GhostTransfer(from) => (
            acct(*from),
            "transfer",
            vec![
                Value::Ref(EntityRef::new("Account", "ghost")),
                Value::Int(3),
            ],
        ),
    }
}

/// Which deliberately-reintroduced bug a self-test run injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    None,
    /// Errored transactions reserve their buffered accesses again.
    ReserveErrored,
    /// WAL recovery skips checksum validation, so a flipped bit in a
    /// replayed record silently corrupts the restored state.
    WalNoCrc,
    /// The coordinator resumes sealing batches while a live upgrade's
    /// migration pass is still in flight, so batches commit inside the
    /// (supposedly sealed) upgrade window — a non-atomic switchover.
    TornUpgrade,
}

/// Runs one scenario under `script`; `Ok` carries a short stats line.
/// `obs_dir`, when set, arms full span tracing and dumps the run's
/// `metrics.json` + `trace.jsonl` under it (used to re-run a failing
/// scenario with the flight recorder on).
fn run_scenario(
    sc: &Scenario,
    script: &FaultScript,
    time_scale: f64,
    bug: Bug,
    obs_dir: Option<&std::path::Path>,
) -> Result<String, String> {
    let program = se_workloads::ycsb_program();
    let upgrading = sc.upgrade || bug == Bug::TornUpgrade;
    let mut cfg = StateflowConfig::fast_test(WORKERS);
    if let Some(dir) = obs_dir {
        cfg.obs = se_obs::ObsConfig {
            mode: se_obs::ObsMode::Trace,
            dir: dir.to_path_buf(),
            label: format!("chaos-{:#x}", sc.seed),
            ..se_obs::ObsConfig::default()
        };
    }
    cfg.net.time_scale = time_scale;
    cfg.pipeline_depth = sc.depth;
    cfg.exec_threads = sc.exec_threads;
    cfg.backend = match sc.backend.as_str() {
        "vm" => stateful_entities::ExecBackend::Vm,
        _ => stateful_entities::ExecBackend::Interp,
    };
    cfg.snapshot_every_batches = 4;
    if sc.durability == "wal" {
        cfg.durability.mode = DurabilityMode::Wal;
        cfg.durability.fsync = FsyncPolicy::parse(&sc.fsync).expect("sampled fsync policy");
    }
    if bug == Bug::WalNoCrc {
        // Maximize the odds that the flipped record lands inside the
        // replayed prefix: lockstep batches, a cut after every batch, and
        // nothing fsynced (so the bit flip may target any data record).
        cfg.durability.mode = DurabilityMode::Wal;
        cfg.durability.inject_wal_no_crc = true;
        cfg.durability.fsync = FsyncPolicy::Never;
        cfg.pipeline_depth = 1;
        cfg.snapshot_every_batches = 1;
    }
    if bug == Bug::TornUpgrade {
        // The lever only manifests when a batch seals *inside* the open
        // upgrade window; at test-speed hops the window is microseconds
        // wide. Real-time slow control-plane hops (the directed scenario
        // overrides the ambient time scale) stretch the migration round
        // trip to ~10 ms while a short batch interval keeps records
        // sealing through it.
        cfg.inject_torn_upgrade = true;
        cfg.net.time_scale = 1.0;
        cfg.net.f2f_hop = Duration::from_millis(5);
        cfg.batch_interval = Duration::from_millis(1);
    }
    cfg.chaos = ChaosPlan::from_script(script.clone());
    cfg.inject_reserve_bug = bug == Bug::ReserveErrored;
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let chaos = cfg.chaos.clone();

    let graph =
        stateful_entities::compile(&program).map_err(|e| format!("deploy failed: {e:?}"))?;
    let rt = std::sync::Arc::new(StateflowRuntime::deploy(graph, cfg));
    se_workloads::load_accounts(&*rt, ACCOUNTS, VALUE_SIZE, INITIAL_BALANCE);

    let ops = ops_for(sc);
    let mut waiters = Vec::with_capacity(ops.len());
    // The no-CRC self-test paces harder: epoch cuts must exist before the
    // scripted crash for the corrupted record to land in a replayed prefix.
    let (pause_every, pause) = if bug == Bug::WalNoCrc {
        // Long enough for a full pipeline drain, so nearly every pause
        // completes a snapshot epoch: each batch is then preceded by an
        // epoch cut, and a mid-execution bit flip lands on the *previous*
        // batch's commit record — inside the replayed prefix.
        (5, Duration::from_millis(12))
    } else if bug == Bug::TornUpgrade {
        // Space requests out so records keep arriving while the redeploy's
        // migration round trip is in flight — under the lever those seal
        // inside the open upgrade window.
        (1, Duration::from_micros(300))
    } else {
        (15, Duration::from_millis(2))
    };
    // Upgrade scenarios redeploy the semantics-preserving v2 from a side
    // thread at the stream's halfway point, so the switchover races both
    // in-flight traffic and any scripted faults.
    let mut redeployer: Option<std::thread::JoinHandle<Result<u64, String>>> = None;
    for (i, op) in ops.iter().enumerate() {
        if upgrading && i == ops.len() / 2 {
            let rt2 = std::sync::Arc::clone(&rt);
            redeployer = Some(std::thread::spawn(move || {
                rt2.redeploy(&se_workloads::ycsb_program_v2())
                    .map_err(|e| format!("redeploy failed: {e:?}"))
            }));
        }
        let (target, method, args) = invocation(op);
        waiters.push((op.clone(), rt.call_async(target, method, args)));
        if i % pause_every == pause_every - 1 {
            // Short pauses let the pipeline drain now and then, so
            // snapshot cuts (and their barriers) happen mid-run.
            std::thread::sleep(pause);
        }
    }
    // Liveness: every request must complete, whatever the weather.
    for (i, (op, w)) in waiters.into_iter().enumerate() {
        let outcome = w
            .wait_timeout(WAIT)
            .ok_or_else(|| format!("op {i} ({op:?}) did not complete within {WAIT:?}"))?;
        match (&op, outcome) {
            (Op::GhostTransfer(_), Err(e)) if e.to_string().contains("unknown entity") => {}
            (Op::GhostTransfer(_), other) => {
                return Err(format!(
                    "op {i} (ghost transfer) expected an unknown-entity error, got {other:?}"
                ));
            }
            (_, Err(e)) => return Err(format!("op {i} ({op:?}) errored: {e}")),
            (_, Ok(_)) => {}
        }
    }
    if let Some(handle) = redeployer {
        let v2 = handle
            .join()
            .map_err(|_| "redeploy thread panicked".to_string())??;
        if v2 != 2 {
            return Err(format!(
                "the mid-run redeploy must produce version 2, got {v2}"
            ));
        }
    }

    // Quiesce before judging. A scripted crash near the end of the client
    // stream leaves a post-recovery replay still re-executing requests whose
    // waiters were answered in the previous lineage; capturing the history
    // mid-replay fabricates dangling retries and truncated serial orders.
    // The probes double as barriers — the source replays in order, so each
    // answer proves every earlier record re-decided — and the settle loop
    // covers the short tail of fallback retries sealed after the last
    // probe's own batch.
    let mut probed = Vec::new();
    for k in 0..ACCOUNTS {
        for probe in ["balance", "read"] {
            let got = rt.call(acct(k), probe, vec![]).map_err(|e| e.to_string());
            probed.push((k, probe, got));
        }
    }
    let settle_deadline = std::time::Instant::now() + WAIT;
    let mut last_len = history.events().len();
    let mut stable = 0;
    while stable < 3 {
        std::thread::sleep(Duration::from_millis(40));
        let len = history.events().len();
        if len == last_len {
            stable += 1;
            continue;
        }
        if std::time::Instant::now() >= settle_deadline {
            return Err(format!(
                "history kept growing while settling ({last_len} -> {len} events)"
            ));
        }
        (last_len, stable) = (len, 0);
    }

    // Verify: history checker, then serial replay through the Local oracle.
    let events = history.events();
    if std::env::var("SE_CHAOS_DUMP_HISTORY").is_ok() {
        for e in events.iter().rev().take(40).rev() {
            eprintln!("HIST {e:?}");
        }
    }
    let summary = check_history(&events, rule).map_err(|e| format!("history check: {e}"))?;
    // At least one committed upgrade must survive; a crash that rewinds
    // past the upgrade's epoch cut legitimately re-arms and re-commits it
    // in the new lineage, so the count may exceed one.
    if upgrading && bug == Bug::None && summary.upgrades == 0 {
        return Err("the mid-run redeploy never committed an upgrade".to_string());
    }
    let order = serial_order(&events).map_err(|e| format!("serial order: {e}"))?;
    let oracle =
        deploy(&program, RuntimeChoice::Local).map_err(|e| format!("oracle deploy: {e:?}"))?;
    se_workloads::load_accounts(oracle.as_ref(), ACCOUNTS, VALUE_SIZE, INITIAL_BALANCE);
    for sop in &order {
        let got = oracle
            .call(sop.target, &sop.method, sop.args.clone())
            .map_err(|e| e.to_string());
        if got != sop.result {
            return Err(format!(
                "serial replay diverged at txn {} (batch {}, {} on {}): \
                 distributed run answered {:?}, oracle answered {:?}",
                sop.txn, sop.batch, sop.method, sop.target, sop.result, got
            ));
        }
    }
    for (k, probe, got) in &probed {
        let want = oracle
            .call(acct(*k), probe, vec![])
            .map_err(|e| e.to_string());
        if *got != want {
            return Err(format!(
                "final state diverged on account {k} ({probe}): {got:?} != {want:?}"
            ));
        }
    }
    let line = format!(
        "{} commits ({} surviving), {} retries, {} failed, {} recoveries, \
         {} upgrades, {} crashes + {} msg + {} disk faults fired",
        summary.commits,
        summary.surviving_commits,
        summary.retries,
        summary.failed,
        summary.recoveries,
        summary.upgrades,
        chaos.crashes_fired(),
        chaos.msg_faults_fired(),
        chaos.disk_faults_fired(),
    );
    rt.shutdown();
    oracle.shutdown();
    Ok(line)
}

/// Delta-debugs a failing script down to a locally minimal one: repeatedly
/// remove single faults, keeping any removal under which the failure still
/// reproduces. Bounded by `max_runs` re-executions.
fn shrink(sc: &Scenario, time_scale: f64, bug: Bug, max_runs: usize) -> (FaultScript, String) {
    let mut script = sc.script.clone();
    let mut last_error = String::new();
    let mut runs = 0;
    let mut progress = true;
    while progress && runs < max_runs {
        progress = false;
        for i in 0..script.fault_count() {
            if runs >= max_runs {
                break;
            }
            let candidate = script.without_fault(i);
            runs += 1;
            match run_scenario(sc, &candidate, time_scale, bug, None) {
                Ok(_) => {} // fault i is load-bearing; keep it
                Err(e) => {
                    script = candidate;
                    last_error = e;
                    progress = true;
                    break; // indices shifted; restart the sweep
                }
            }
        }
    }
    (script, last_error)
}

// Owned fields: the vendored serde derive does not support generic types.
#[derive(Debug, Serialize)]
struct FailureReport {
    scenario: Scenario,
    minimized_script: FaultScript,
    error: String,
    reproduce: String,
    /// Run directory of the trace-armed re-run (`metrics.json` +
    /// `trace.jsonl`); empty if the re-run produced no dump.
    obs_trace: String,
    /// `obs_report --last-batches 8` over that dump: the last batches'
    /// waterfall plus stage latencies and protocol counters at failure.
    obs_summary: String,
}

/// Re-runs a failing (minimized) scenario with span tracing armed and
/// renders its flight-recorder summary. Best-effort: a pass on the re-run
/// (faults can be timing-sensitive) still yields the trace of a clean run,
/// which is itself informative.
fn trace_failure(
    sc: &Scenario,
    script: &FaultScript,
    time_scale: f64,
    bug: Bug,
) -> (String, String) {
    let dir = std::path::Path::new("chaos_results").join(format!("obs_{:#x}", sc.seed));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = run_scenario(sc, script, time_scale, bug, Some(&dir));
    // The runtime dumps at shutdown into a unique subdirectory of `dir`;
    // find it (one re-run — there is at most one, plus oracle noise-free).
    let run_dir = std::fs::read_dir(&dir)
        .ok()
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.join("metrics.json").is_file());
    let Some(run_dir) = run_dir else {
        return (String::new(), String::new());
    };
    let summary = match se_obs::report::RunData::load(&run_dir) {
        Ok(run) => se_obs::report::render_text(&run, 8),
        Err(e) => format!("(obs dump unreadable: {e})"),
    };
    (run_dir.display().to_string(), summary)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scenarios = env_or("SE_CHAOS_SCENARIOS", 20) as usize;
    let mut seed = env_or("SE_CHAOS_SEED", 0xC1A0_5EED);
    let mut expect_bug = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scenarios" => {
                i += 1;
                scenarios = args[i].parse().expect("--scenarios N");
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed S");
            }
            "--expect-bug" => expect_bug = true,
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    let time_scale = std::env::var("SE_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let bug = match std::env::var("SE_CHAOS_INJECT_BUG").ok().as_deref() {
        None | Some("") => Bug::None,
        Some("reserve-errored") => Bug::ReserveErrored,
        Some("wal-no-crc") => Bug::WalNoCrc,
        Some("torn-upgrade") => Bug::TornUpgrade,
        Some(other) => panic!("unknown SE_CHAOS_INJECT_BUG={other:?}"),
    };
    let bug_name = match bug {
        Bug::None => "",
        Bug::ReserveErrored => "reserve-errored",
        Bug::WalNoCrc => "wal-no-crc",
        Bug::TornUpgrade => "torn-upgrade",
    };
    println!(
        "chaos_explore: {scenarios} scenarios, master seed {seed:#x}, \
         time scale {time_scale}{}{}",
        if bug == Bug::None {
            ""
        } else {
            ", INJECTED BUG: "
        },
        bug_name
    );

    let mut failures = 0usize;
    for k in 0..scenarios {
        let scenario_seed = seed.wrapping_add(k as u64);
        let mut sc = Scenario::sample(scenario_seed);
        if bug == Bug::WalNoCrc {
            // The no-CRC self-test needs a corrupted record inside the
            // replayed prefix, so the sampled script is replaced with a
            // directed one: an early-execution crash paired with a bit flip
            // in the crashed worker's unsynced WAL region. Workload T is
            // forced (multi-hop transfers feed the crash countdown) and the
            // driver paces requests so snapshots — which need a drained
            // pipeline — complete; without a completed epoch, recovery
            // restarts from scratch and masks the corruption.
            sc.workload = "T";
            sc.durability = "wal";
            sc.fsync = "never".into();
            // Keep the corruption self-test focused on the WAL path.
            sc.upgrade = false;
            sc.script = FaultScript {
                crashes: vec![CrashFault {
                    node: "worker1".into(),
                    point: CrashPoint::Exec,
                    // Mid-run, while batches are paced one per pause: the
                    // crashed worker's WAL tail is then Commit(b−1)
                    // followed by an epoch cut, so the flipped last data
                    // record (that commit) lands inside the replayed
                    // prefix. Flipping a record from an epoch that never
                    // cut would be useless — recovery truncates it with or
                    // without checksums.
                    after_events: 10 + scenario_seed % 20,
                }],
                disk: vec![DiskFault {
                    node: "worker1".into(),
                    kind: DiskFaultKind::BitFlip,
                }],
                ..FaultScript::default()
            };
        }
        if bug == Bug::TornUpgrade {
            // Directed shape: the lever only matters when an upgrade
            // happens, and the single-entity workload A keeps the
            // slow-control-plane run short. No scripted faults — the
            // seeded bug alone must trip the checker.
            sc.workload = "A";
            sc.durability = "off";
            sc.fsync = "-".into();
            sc.upgrade = true;
            sc.script = FaultScript::default();
        }
        let label = format!(
            "[{k:>3}] seed {scenario_seed:#x} {}-{} depth {} {} exec {} dur {}/{}{} ({} faults)",
            sc.workload,
            sc.dist,
            sc.depth,
            sc.backend,
            sc.exec_threads,
            sc.durability,
            sc.fsync,
            if sc.upgrade { " upg" } else { "" },
            sc.script.fault_count()
        );
        match run_scenario(&sc, &sc.script, time_scale, bug, None) {
            Ok(stats) => println!("{label}: ok — {stats}"),
            Err(error) => {
                failures += 1;
                println!("{label}: FAILED — {error}");
                println!("      shrinking the fault script…");
                let (minimized, shrunk_error) = shrink(&sc, time_scale, bug, 30);
                let final_error = if shrunk_error.is_empty() {
                    error
                } else {
                    shrunk_error
                };
                println!(
                    "      minimized to {} fault(s):\n{}",
                    minimized.fault_count(),
                    minimized
                );
                println!("      re-running with SE_OBS=trace for the flight recorder…");
                let (obs_trace, obs_summary) = trace_failure(&sc, &minimized, time_scale, bug);
                if !obs_summary.is_empty() {
                    println!("      obs summary (last 8 batches):");
                    for line in obs_summary.lines() {
                        println!("        {line}");
                    }
                }
                let report = FailureReport {
                    scenario: sc.clone(),
                    minimized_script: minimized,
                    error: final_error,
                    // Embed the exact environment of the failing run:
                    // fault triggers are count-based, but real-time
                    // interplay (quarantine vs. recovery, crash countdown
                    // vs. batch sealing) shifts with the time scale.
                    reproduce: format!(
                        "SE_TIME_SCALE={time_scale} {}SE_CHAOS_SEED={scenario_seed} \
                         cargo run --release --bin chaos_explore -- --scenarios 1",
                        if bug == Bug::None {
                            String::new()
                        } else {
                            format!("SE_CHAOS_INJECT_BUG={bug_name} ")
                        }
                    ),
                    obs_trace,
                    obs_summary,
                };
                let dir = std::path::Path::new("chaos_results");
                let _ = std::fs::create_dir_all(dir);
                let path = dir.join(format!("failure_{scenario_seed:#x}.json"));
                let json = serde_json::to_string_pretty(&report).expect("report serializes");
                if std::fs::write(&path, json + "\n").is_ok() {
                    println!("      report written to {}", path.display());
                }
            }
        }
    }

    if expect_bug {
        if failures == 0 {
            println!("expected the injected bug to be caught, but every scenario passed");
            std::process::exit(1);
        }
        println!(
            "injected bug caught by {failures}/{scenarios} scenarios (expected) — \
             the harness detects a real regression"
        );
        return;
    }
    if failures > 0 {
        println!("{failures}/{scenarios} scenarios failed");
        std::process::exit(1);
    }
    println!("all {scenarios} scenarios passed");
}
