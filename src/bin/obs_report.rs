//! Renders a dumped obs run directory (`metrics.json` + `trace.jsonl`)
//! into a terminal report: per-batch stage waterfall (trace mode), stage
//! p50/p99 latency table, and the counter/gauge roll-up.
//!
//! ```text
//! obs_report <run-dir> [--last-batches N] [--json]
//! ```
//!
//! `<run-dir>` is the directory an engine printed (or the path embedded in
//! a chaos_explore failure report) — one of the `<label>-<pid>-<seq>`
//! subdirectories under `SE_OBS_DIR` (default `obs_results/`). If the
//! given path has no `metrics.json` but exactly one subdirectory does, the
//! report descends into it, so `obs_report obs_results` works after a
//! single run.
//!
//! `--last-batches N` limits the waterfall to the most recent N batches
//! (default 16; 0 = all). `--json` re-emits the parsed metrics document
//! (for scripting) instead of the text report.
//!
//! Exit codes: 0 rendered, 2 usage/load error.

use std::path::PathBuf;
use std::process::ExitCode;

use se_obs::report::{render_text, RunData};

fn die(msg: &str) -> ExitCode {
    eprintln!("obs_report: {msg}");
    eprintln!("usage: obs_report <run-dir> [--last-batches N] [--json]");
    ExitCode::from(2)
}

/// Resolves the directory actually holding `metrics.json`: the given path,
/// or its unique child that has one (convenience for `SE_OBS_DIR` roots).
fn resolve(dir: PathBuf) -> Result<PathBuf, String> {
    if dir.join("metrics.json").is_file() {
        return Ok(dir);
    }
    let mut candidates = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.join("metrics.json").is_file() {
                candidates.push(p);
            }
        }
    }
    match candidates.len() {
        0 => Err(format!(
            "{}: no metrics.json here or in any subdirectory — \
             was the run started with SE_OBS=metrics or SE_OBS=trace?",
            dir.display()
        )),
        1 => Ok(candidates.remove(0)),
        n => {
            candidates.sort();
            Err(format!(
                "{}: {n} run directories found; pick one:\n{}",
                dir.display(),
                candidates
                    .iter()
                    .map(|p| format!("  {}", p.display()))
                    .collect::<Vec<_>>()
                    .join("\n")
            ))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut last_batches = 16usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--last-batches" => {
                let Some(v) = it.next() else {
                    return die("--last-batches needs a value");
                };
                match v.parse::<usize>() {
                    Ok(n) => last_batches = n,
                    Err(_) => return die("--last-batches must be a non-negative integer"),
                }
            }
            "--json" => json = true,
            other if !other.starts_with("--") => {
                if dir.is_some() {
                    return die("expected exactly one run directory");
                }
                dir = Some(PathBuf::from(other));
            }
            other => return die(&format!("unknown flag {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return die("expected a run directory");
    };
    let dir = match resolve(dir) {
        Ok(d) => d,
        Err(e) => return die(&e),
    };
    if json {
        // Re-emit the raw metrics document after checking it parses.
        let text = match std::fs::read_to_string(dir.join("metrics.json")) {
            Ok(t) => t,
            Err(e) => return die(&format!("read metrics.json: {e}")),
        };
        if let Err(e) = serde_json::from_str(&text) {
            return die(&format!("metrics.json: {e}"));
        }
        println!("{text}");
        return ExitCode::SUCCESS;
    }
    let run = match RunData::load(&dir) {
        Ok(r) => r,
        Err(e) => return die(&e),
    };
    print!("{}", render_text(&run, last_batches));
    ExitCode::SUCCESS
}
