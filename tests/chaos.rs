//! Chaos-plan and history-checker integration tests through the public
//! facade: seeded-script byte-reproducibility (the property the scenario
//! driver's replay depends on), the deliberately-injected reservation bug
//! being caught by the checker, and message weather on both engines.

use std::time::Duration;

use proptest::prelude::*;

use se_chaos::{
    check_history, check_statefun_history, ChaosPlan, FaultScript, History, MessageFault,
    MsgFaultKind, ScriptConfig, Seam,
};
use stateful_entities::prelude::*;
use stateful_entities::{StateflowConfig, StatefunConfig};

const WAIT: Duration = Duration::from_secs(60);

fn acct(i: usize) -> EntityRef {
    EntityRef::new("Account", se_workloads::key_name(i))
}

/// One logically deterministic run: zero time scale ("SE_TIME_SCALE=0
/// service times"), requests issued strictly one at a time, a fault script
/// restricted to duplicates and delays. Returns the canonical history JSON.
fn serial_history_run(script: &FaultScript) -> String {
    let program = se_workloads::ycsb_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.net.time_scale = 0.0;
    cfg.chaos = ChaosPlan::from_script(script.clone());
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    let n = 3usize;
    for i in 0..n {
        // Serial creates (load_accounts parallelizes, which would make
        // request-id assignment racy).
        rt.create(
            "Account",
            &se_workloads::key_name(i),
            vec![("balance".into(), Value::Int(100))],
        )
        .unwrap();
    }
    for i in 0..10 {
        if i % 3 == 0 {
            rt.call(acct(i % n), "deposit", vec![Value::Int((i % 5) as i64 + 1)])
                .unwrap();
        } else {
            rt.call(
                acct(i % n),
                "transfer",
                vec![Value::Ref(acct((i + 1) % n)), Value::Int(2)],
            )
            .unwrap();
        }
    }
    rt.shutdown();
    // A deterministic weather run must still be a valid serializable
    // history — duplicates and delays change nothing observable.
    check_history(&history.events(), rule).expect("weathered serial run stays serializable");
    history.to_json_canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, max_shrink_iters: 0 })]

    /// Satellite: any seeded `ChaosPlan` is byte-reproducible — the same
    /// seed yields the identical fault script, and (for the deterministic
    /// fault classes) the identical recorded history.
    #[test]
    fn seeded_chaos_plan_is_byte_reproducible(seed in any::<u64>()) {
        let cfg = ScriptConfig::stateflow(3).deterministic_only();
        let script_a = FaultScript::generate(seed, &cfg);
        let script_b = FaultScript::generate(seed, &cfg);
        prop_assert_eq!(&script_a, &script_b, "seed {} script not reproducible", seed);
        let history_a = serial_history_run(&script_a);
        let history_b = serial_history_run(&script_b);
        prop_assert_eq!(
            history_a, history_b,
            "seed {} recorded history not byte-identical", seed
        );
    }
}

/// Builds the contended scenario the reservation regression needs: an
/// errored transfer (ghost target) whose buffered write shares a key with a
/// healthy deposit in the same batch. Returns the recorded events and the
/// configured commit rule.
fn errored_plus_healthy_batch(
    inject_bug: bool,
) -> (Vec<se_chaos::HistoryEvent>, stateful_entities::CommitRule) {
    let program = se_workloads::ycsb_program();
    let mut cfg = StateflowConfig::fast_test(3);
    // Generous interval so both transactions land in one batch.
    cfg.batch_interval = Duration::from_millis(30);
    cfg.inject_reserve_bug = inject_bug;
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    rt.create("Account", "src", vec![("balance".into(), Value::Int(100))])
        .unwrap();
    // t0 (lower id): withdraws from src (a buffered write), then errors on
    // the unknown transfer target. t1 (higher id): deposits into src.
    let w0 = rt.call_async(
        EntityRef::new("Account", "src"),
        "transfer",
        vec![
            Value::Ref(EntityRef::new("Account", "ghost")),
            Value::Int(5),
        ],
    );
    let w1 = rt.call_async(
        EntityRef::new("Account", "src"),
        "deposit",
        vec![Value::Int(7)],
    );
    let err = w0.wait_timeout(WAIT).expect("completes").unwrap_err();
    assert!(err.to_string().contains("unknown entity"), "{err}");
    assert_eq!(
        w1.wait_timeout(WAIT).expect("completes").expect("no error"),
        Value::Int(107),
        "the deposit lands either way — the bug only costs a retry round"
    );
    rt.shutdown();
    (history.events(), rule)
}

/// Acceptance: reverting the errored-txn reservation fix behind the
/// test-only flag is caught by the history checker as an unjustified abort
/// (the final state converges, so state comparison alone would miss it).
#[test]
fn injected_reserve_bug_is_caught_by_history_checker() {
    // Control: the fixed protocol records a clean, serializable history.
    let (events, rule) = errored_plus_healthy_batch(false);
    let summary = check_history(&events, rule).expect("fixed protocol passes the checker");
    assert_eq!(summary.failed, 1, "the ghost transfer hard-fails");
    assert_eq!(summary.retries, 0, "no retry without the bug");

    // Bugged: the errored writer reserves, WAW-aborting the healthy
    // deposit — a decision the recorded access sets cannot justify.
    let (events, rule) = errored_plus_healthy_batch(true);
    let err = check_history(&events, rule)
        .expect_err("the checker must flag the regressed reservation path");
    assert!(
        err.message
            .contains("aborted without a justifying conflict"),
        "unexpected violation: {err}"
    );
}

/// Message weather on the StateFlow seams — duplicates and delays on every
/// data-plane channel plus a quarantined commit record — must leave the
/// run serializable and exactly-once; the quarantined record exercises the
/// watermark's in-order buffering.
#[test]
fn stateflow_message_weather_stays_serializable() {
    let program = se_workloads::ycsb_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.pipeline_depth = 4;
    cfg.max_batch = 8;
    let script = FaultScript {
        messages: vec![
            MessageFault {
                seam: Seam::CoordToWorker,
                nth: 3,
                kind: MsgFaultKind::Duplicate { gap_us: 10_000 },
            },
            MessageFault {
                seam: Seam::CoordToWorker,
                nth: 9,
                kind: MsgFaultKind::Drop {
                    quarantine_us: 200_000,
                },
            },
            MessageFault {
                seam: Seam::WorkerToCoord,
                nth: 5,
                kind: MsgFaultKind::Duplicate { gap_us: 0 },
            },
            MessageFault {
                seam: Seam::WorkerToCoord,
                nth: 11,
                kind: MsgFaultKind::Delay { extra_us: 50_000 },
            },
            MessageFault {
                seam: Seam::WorkerToWorker,
                nth: 2,
                kind: MsgFaultKind::Duplicate { gap_us: 5_000 },
            },
        ],
        ..FaultScript::default()
    };
    cfg.chaos = ChaosPlan::from_script(script);
    let chaos = cfg.chaos.clone();
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    let n = 4usize;
    se_workloads::load_accounts(rt.as_ref(), n, 8, 1000);
    let waiters: Vec<_> = (0..60)
        .map(|i| {
            rt.call_async(
                acct(i % n),
                "transfer",
                vec![Value::Ref(acct((i + 1) % n)), Value::Int(1)],
            )
        })
        .collect();
    for w in waiters {
        assert_eq!(
            w.wait_timeout(WAIT).expect("completes").expect("no error"),
            Value::Bool(true)
        );
    }
    assert!(
        chaos.msg_faults_fired() >= 4,
        "the weather must actually hit ({} faults fired)",
        chaos.msg_faults_fired()
    );
    let summary = check_history(&history.events(), rule).expect("weathered run serializable");
    assert_eq!(summary.surviving_commits, 60);
    let total: i64 = (0..n)
        .map(|i| {
            rt.call(acct(i), "balance", vec![])
                .unwrap()
                .as_int()
                .unwrap()
        })
        .sum();
    assert_eq!(total, 1000 * n as i64, "conservation under message weather");
    rt.shutdown();
}

/// Message weather on the StateFun remote seams plus a broker outage: the
/// engine's per-key serialization guarantee must survive duplicated and
/// quarantined remote round trips (the dispatch sequence numbers are what
/// make installs idempotent).
#[test]
fn statefun_weather_preserves_per_key_serialization() {
    let program = se_workloads::ycsb_program();
    let mut cfg = StatefunConfig::fast_test(2);
    let script = FaultScript {
        messages: vec![
            MessageFault {
                seam: Seam::RemoteRequest,
                nth: 2,
                kind: MsgFaultKind::Duplicate { gap_us: 20_000 },
            },
            MessageFault {
                seam: Seam::RemoteResponse,
                nth: 4,
                kind: MsgFaultKind::Duplicate { gap_us: 0 },
            },
            MessageFault {
                seam: Seam::RemoteResponse,
                nth: 7,
                kind: MsgFaultKind::Delay { extra_us: 40_000 },
            },
        ],
        outages: vec![se_chaos::BrokerOutage {
            after_produces: 10,
            produces: 5,
            extra_us: 50_000,
        }],
        ..FaultScript::default()
    };
    cfg.chaos = ChaosPlan::from_script(script);
    let chaos = cfg.chaos.clone();
    let history = History::new();
    cfg.history = Some(history.clone());
    let rt = deploy(&program, RuntimeChoice::Statefun(cfg)).unwrap();
    let n = 3usize;
    for i in 0..n {
        rt.create("Account", &se_workloads::key_name(i), vec![])
            .unwrap();
    }
    let mut expected = vec![0i64; n];
    let mut waiters = Vec::new();
    for i in 0..40 {
        let k = i % n;
        let amount = (i % 6 + 1) as i64;
        expected[k] += amount;
        waiters.push(rt.call_async(acct(k), "deposit", vec![Value::Int(amount)]));
    }
    for w in waiters {
        w.wait_timeout(WAIT).expect("completes").expect("no error");
    }
    assert!(chaos.msg_faults_fired() >= 3, "weather must hit");
    let installs = check_statefun_history(&history.events())
        .expect("per-key serialization must hold under weather");
    assert!(
        installs >= 40,
        "every deposit dispatch installs ({installs})"
    );
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            rt.call(acct(i), "balance", vec![])
                .unwrap()
                .as_int()
                .unwrap(),
            *want,
            "account {i}: a duplicated remote round trip must not double-apply"
        );
    }
    rt.shutdown();
}
