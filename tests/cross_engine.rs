//! Cross-engine portability: the same compiled program must behave
//! identically on Local, StateFun and StateFlow — "the choice of a runtime
//! system is completely independent of the application layer" (§1).

use stateful_entities::prelude::*;
use stateful_entities::{StateflowConfig, StatefunConfig};

fn engines() -> Vec<Box<dyn EntityRuntime>> {
    let program = stateful_entities::programs::figure1_program();
    vec![
        deploy(&program, RuntimeChoice::Local).unwrap(),
        deploy(
            &program,
            RuntimeChoice::Statefun(StatefunConfig::fast_test(3)),
        )
        .unwrap(),
        deploy(
            &program,
            RuntimeChoice::Stateflow(StateflowConfig::fast_test(3)),
        )
        .unwrap(),
    ]
}

#[test]
fn figure1_identical_across_engines() {
    for rt in engines() {
        let name = rt.name().to_owned();
        let user = rt
            .create("User", "u", vec![("balance".into(), Value::Int(100))])
            .unwrap();
        let item = rt
            .create(
                "Item",
                "i",
                vec![
                    ("price".into(), Value::Int(30)),
                    ("stock".into(), Value::Int(3)),
                ],
            )
            .unwrap();

        // Purchase 1: 2×30 = 60 ≤ 100 → ok, stock 3→1, balance 40.
        assert_eq!(
            rt.call(
                user.clone(),
                "buy_item",
                vec![Value::Int(2), Value::Ref(item.clone())]
            )
            .unwrap(),
            Value::Bool(true),
            "[{name}]"
        );
        // Purchase 2: 1×30 = 30 ≤ 40 but stock 1−2 < 0 → compensated reject.
        assert_eq!(
            rt.call(
                user.clone(),
                "buy_item",
                vec![Value::Int(2), Value::Ref(item.clone())]
            )
            .unwrap(),
            Value::Bool(false),
            "[{name}]"
        );
        // Balance unchanged by the rejected purchase; stock restored to 1.
        assert_eq!(
            rt.call(user.clone(), "balance", vec![]).unwrap(),
            Value::Int(40),
            "[{name}]"
        );
        assert_eq!(
            rt.call(item, "update_stock", vec![Value::Int(0)]).unwrap(),
            Value::Bool(true),
            "[{name}] stock must be non-negative after compensation"
        );
        rt.shutdown();
    }
}

#[test]
fn chain_program_identical_across_engines() {
    let depth = 3;
    let program = stateful_entities::programs::chain_program(depth);
    for choice in [
        RuntimeChoice::Local,
        RuntimeChoice::Statefun(StatefunConfig::fast_test(2)),
        RuntimeChoice::Stateflow(StateflowConfig::fast_test(2)),
    ] {
        let rt = deploy(&program, choice).unwrap();
        for i in (0..=depth).rev() {
            let init = if i < depth {
                vec![(
                    "next".to_string(),
                    Value::Ref(EntityRef::new(format!("C{}", i + 1), "n")),
                )]
            } else {
                vec![]
            };
            rt.create(&format!("C{i}"), "n", init).unwrap();
        }
        assert_eq!(
            rt.call(EntityRef::new("C0", "n"), "relay", vec![Value::Int(10)])
                .unwrap(),
            Value::Int(10 + depth as i64),
            "[{}]",
            rt.name()
        );
        rt.shutdown();
    }
}

#[test]
fn errors_are_consistent_across_engines() {
    for rt in engines() {
        let name = rt.name().to_owned();
        // Unknown entity.
        let err = rt
            .call(EntityRef::new("User", "ghost"), "balance", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("unknown entity"), "[{name}] {err}");
        // Unknown method.
        rt.create("User", "u2", vec![]).unwrap();
        let err = rt
            .call(EntityRef::new("User", "u2"), "frobnicate", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("no method"), "[{name}] {err}");
        // Wrong arity.
        let err = rt
            .call(EntityRef::new("User", "u2"), "buy_item", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("argument"), "[{name}] {err}");
        rt.shutdown();
    }
}

#[test]
fn ycsb_program_runs_on_all_engines() {
    let program = se_workloads::ycsb_program();
    for choice in [
        RuntimeChoice::Local,
        RuntimeChoice::Statefun(StatefunConfig::fast_test(2)),
        RuntimeChoice::Stateflow(StateflowConfig::fast_test(2)),
    ] {
        let rt = deploy(&program, choice).unwrap();
        let a = rt
            .create("Account", "a", vec![("balance".into(), Value::Int(10))])
            .unwrap();
        let payload = Value::Bytes(vec![9u8; 256]);
        assert_eq!(
            rt.call(a.clone(), "update", vec![payload.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            rt.call(a.clone(), "read", vec![]).unwrap(),
            payload,
            "[{}]",
            rt.name()
        );
        if rt.supports_transactions() {
            let b = rt.create("Account", "b", vec![]).unwrap();
            assert_eq!(
                rt.call(a, "transfer", vec![Value::Ref(b.clone()), Value::Int(4)])
                    .unwrap(),
                Value::Bool(true)
            );
            assert_eq!(rt.call(b, "balance", vec![]).unwrap(), Value::Int(4));
        }
        rt.shutdown();
    }
}
