//! Cross-engine portability: the same compiled program must behave
//! identically on Local, StateFun and StateFlow — "the choice of a runtime
//! system is completely independent of the application layer" (§1).

use stateful_entities::prelude::*;
use stateful_entities::{StateflowConfig, StatefunConfig};

fn engines() -> Vec<Box<dyn EntityRuntime>> {
    let program = stateful_entities::programs::figure1_program();
    vec![
        deploy(&program, RuntimeChoice::Local).unwrap(),
        deploy(
            &program,
            RuntimeChoice::Statefun(StatefunConfig::fast_test(3)),
        )
        .unwrap(),
        deploy(
            &program,
            RuntimeChoice::Stateflow(StateflowConfig::fast_test(3)),
        )
        .unwrap(),
    ]
}

#[test]
fn figure1_identical_across_engines() {
    for rt in engines() {
        let name = rt.name().to_owned();
        let user = rt
            .create("User", "u", vec![("balance".into(), Value::Int(100))])
            .unwrap();
        let item = rt
            .create(
                "Item",
                "i",
                vec![
                    ("price".into(), Value::Int(30)),
                    ("stock".into(), Value::Int(3)),
                ],
            )
            .unwrap();

        // Purchase 1: 2×30 = 60 ≤ 100 → ok, stock 3→1, balance 40.
        assert_eq!(
            rt.call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
                .unwrap(),
            Value::Bool(true),
            "[{name}]"
        );
        // Purchase 2: 1×30 = 30 ≤ 40 but stock 1−2 < 0 → compensated reject.
        assert_eq!(
            rt.call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
                .unwrap(),
            Value::Bool(false),
            "[{name}]"
        );
        // Balance unchanged by the rejected purchase; stock restored to 1.
        assert_eq!(
            rt.call(user, "balance", vec![]).unwrap(),
            Value::Int(40),
            "[{name}]"
        );
        assert_eq!(
            rt.call(item, "update_stock", vec![Value::Int(0)]).unwrap(),
            Value::Bool(true),
            "[{name}] stock must be non-negative after compensation"
        );
        rt.shutdown();
    }
}

#[test]
fn chain_program_identical_across_engines() {
    let depth = 3;
    let program = stateful_entities::programs::chain_program(depth);
    for choice in [
        RuntimeChoice::Local,
        RuntimeChoice::Statefun(StatefunConfig::fast_test(2)),
        RuntimeChoice::Stateflow(StateflowConfig::fast_test(2)),
    ] {
        let rt = deploy(&program, choice).unwrap();
        for i in (0..=depth).rev() {
            let init = if i < depth {
                vec![(
                    "next".to_string(),
                    Value::Ref(EntityRef::new(format!("C{}", i + 1), "n")),
                )]
            } else {
                vec![]
            };
            rt.create(&format!("C{i}"), "n", init).unwrap();
        }
        assert_eq!(
            rt.call(EntityRef::new("C0", "n"), "relay", vec![Value::Int(10)])
                .unwrap(),
            Value::Int(10 + depth as i64),
            "[{}]",
            rt.name()
        );
        rt.shutdown();
    }
}

#[test]
fn errors_are_consistent_across_engines() {
    for rt in engines() {
        let name = rt.name().to_owned();
        // Unknown entity.
        let err = rt
            .call(EntityRef::new("User", "ghost"), "balance", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("unknown entity"), "[{name}] {err}");
        // Unknown method.
        rt.create("User", "u2", vec![]).unwrap();
        let err = rt
            .call(EntityRef::new("User", "u2"), "frobnicate", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("no method"), "[{name}] {err}");
        // Wrong arity.
        let err = rt
            .call(EntityRef::new("User", "u2"), "buy_item", vec![])
            .unwrap_err();
        assert!(err.to_string().contains("argument"), "[{name}] {err}");
        rt.shutdown();
    }
}

/// Churn workload over copy-on-write state: a completed snapshot epoch must
/// stay frozen while the live store keeps mutating (entity state shares
/// storage with snapshots until a write diverges them), and the final state
/// must agree with the Local serial oracle.
#[test]
fn snapshot_epochs_stay_frozen_under_cow_churn() {
    let program = stateful_entities::programs::counter_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.snapshot_every_batches = 1;
    cfg.snapshot_retention = 0; // keep every epoch: this test re-reads old ones
    let graph = stateful_entities::compile(&program).unwrap();
    let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg.clone());
    let oracle = deploy(&program, RuntimeChoice::Local).unwrap();

    let n = 6;
    for i in 0..n {
        rt.create("Counter", &format!("c{i}"), vec![]).unwrap();
        oracle.create("Counter", &format!("c{i}"), vec![]).unwrap();
    }
    let incr = |engine: &dyn EntityRuntime, i: usize, by: i64| {
        engine
            .call(
                EntityRef::new("Counter", format!("c{i}")),
                "incr",
                vec![Value::Int(by)],
            )
            .unwrap()
    };

    // Phase 1: churn, then let a snapshot complete at a quiescent point.
    let mut expected_phase1 = 0i64;
    for round in 0..4 {
        for i in 0..n {
            let by = (round * n + i) as i64 % 7 + 1;
            expected_phase1 += by;
            incr(&rt, i, by);
            incr(oracle.as_ref(), i, by);
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(60));
    let frozen_epoch = rt
        .snapshots()
        .latest_complete()
        .expect("snapshot completed after quiescence");
    let epoch_sum = |epoch| {
        let mut sum = 0i64;
        for w in 0..cfg.workers {
            if let Some(store) = rt.snapshots().get(epoch, &format!("worker{w}")) {
                for (_, state) in store.iter() {
                    sum += state["count"].as_int().unwrap();
                }
            }
        }
        sum
    };
    assert_eq!(epoch_sum(frozen_epoch), expected_phase1);

    // Phase 2: mutate every entity *after* the snapshot. Under copy-on-write
    // the live store initially shares storage with the frozen epoch; the
    // writes must copy-before-diverge, never leak backwards.
    let mut expected_final = expected_phase1;
    for i in 0..n {
        for by in [3i64, 11] {
            expected_final += by;
            incr(&rt, i, by);
            incr(oracle.as_ref(), i, by);
        }
    }
    assert_eq!(
        epoch_sum(frozen_epoch),
        expected_phase1,
        "mutations after the cut leaked into the frozen epoch"
    );

    // Cross-engine equivalence of the final state against the serial oracle.
    for i in 0..n {
        let sf_count = incr(&rt, i, 0);
        let oracle_count = incr(oracle.as_ref(), i, 0);
        assert_eq!(sf_count, oracle_count, "counter c{i} diverged");
    }
    let final_sum: i64 = (0..n)
        .map(|i| incr(&rt, i, 0).as_int().unwrap())
        .sum::<i64>();
    assert_eq!(final_sum, expected_final);
    rt.shutdown();
    oracle.shutdown();
}

/// With the default retention policy the snapshot store must stay bounded no
/// matter how many epochs complete — only the last K complete epochs (plus
/// any in-flight one) survive, and recovery's target (the latest complete
/// epoch) is always among them.
#[test]
fn snapshot_retention_bounds_epoch_memory() {
    let program = stateful_entities::programs::counter_program();
    let mut cfg = StateflowConfig::fast_test(2);
    cfg.snapshot_every_batches = 1; // snapshot as often as possible
    let retention = cfg.snapshot_retention;
    assert!(retention > 0, "default retention must bound memory");
    let graph = stateful_entities::compile(&program).unwrap();
    let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg);
    rt.create("Counter", "c", vec![]).unwrap();
    for round in 0..30 {
        rt.call(
            EntityRef::new("Counter", "c"),
            "incr",
            vec![Value::Int(round)],
        )
        .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    std::thread::sleep(std::time::Duration::from_millis(60));
    let latest = rt
        .snapshots()
        .latest_complete()
        .expect("snapshots completed");
    assert!(
        latest > retention as u64,
        "enough epochs to make pruning observable (latest = {latest})"
    );
    assert!(
        rt.snapshots().epoch_count() <= retention + 1,
        "epoch count {} exceeds retention {retention} (+1 in-flight)",
        rt.snapshots().epoch_count()
    );
    // The recovery target is retained.
    assert!(rt.snapshots().get(latest, "worker0").is_some());
    rt.shutdown();
}

/// Pipelined StateFlow must stay byte-equivalent to the serial Local
/// oracle, for every exec-pool size × pipeline depth × execution backend: a mix of
/// contended transfers (which exercise abort/solo-fallback/retry across
/// overlapping batches) and deposits must land on identical final state.
#[test]
fn stateflow_pipelined_matches_local_oracle() {
    use stateful_entities::ExecBackend;
    let program = se_workloads::ycsb_program();
    let n = 5usize;
    let key = |i: usize| EntityRef::new("Account", se_workloads::key_name(i % n));

    // The oracle executes the same operation sequence serially.
    let oracle = deploy(&program, RuntimeChoice::Local).unwrap();
    se_workloads::load_accounts(oracle.as_ref(), n, 8, 100);
    for i in 0..60 {
        if i % 3 == 0 {
            oracle
                .call(key(i), "deposit", vec![Value::Int((i % 7) as i64 + 1)])
                .unwrap();
        } else {
            oracle
                .call(
                    key(i),
                    "transfer",
                    vec![Value::Ref(key(i + 1)), Value::Int(2)],
                )
                .unwrap();
        }
    }
    let expected: Vec<i64> = (0..n)
        .map(|i| {
            oracle
                .call(key(i), "balance", vec![])
                .unwrap()
                .as_int()
                .unwrap()
        })
        .collect();
    oracle.shutdown();

    for exec_threads in [1usize, 4] {
        for pipeline_depth in [1usize, 2, 4] {
            for backend in [ExecBackend::Interp, ExecBackend::Vm] {
                let mut cfg = StateflowConfig::fast_test(3);
                cfg.exec_threads = exec_threads;
                cfg.pipeline_depth = pipeline_depth;
                cfg.backend = backend;
                let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
                se_workloads::load_accounts(rt.as_ref(), n, 8, 100);
                // Issue the ops one at a time (awaiting each) so the commit
                // order matches the oracle's serial order; the pipeline still
                // overlaps the protocol phases underneath.
                for i in 0..60 {
                    if i % 3 == 0 {
                        rt.call(key(i), "deposit", vec![Value::Int((i % 7) as i64 + 1)])
                            .unwrap();
                    } else {
                        rt.call(
                            key(i),
                            "transfer",
                            vec![Value::Ref(key(i + 1)), Value::Int(2)],
                        )
                        .unwrap();
                    }
                }
                for (i, want) in expected.iter().enumerate() {
                    let got = rt
                        .call(key(i), "balance", vec![])
                        .unwrap()
                        .as_int()
                        .unwrap();
                    assert_eq!(
                        got, *want,
                        "[exec {exec_threads}, depth {pipeline_depth}, {backend}] \
                         account {i} diverged from oracle"
                    );
                }
                rt.shutdown();
            }
        }
    }
}

/// Concurrent contended transfers at every depth × backend: serializability
/// (conservation + all-success) with real batch overlap — unlike the oracle
/// test above, requests are issued concurrently so batches genuinely
/// pipeline and aborted transactions drain through the fallback path.
#[test]
fn pipelined_concurrent_transfers_conserve_money_all_backends() {
    use stateful_entities::ExecBackend;
    let program = se_workloads::ycsb_program();
    let n = 4usize;
    let key = |i: usize| EntityRef::new("Account", se_workloads::key_name(i % n));
    for exec_threads in [1usize, 4] {
        for pipeline_depth in [1usize, 2, 4] {
            for backend in [ExecBackend::Interp, ExecBackend::Vm] {
                let mut cfg = StateflowConfig::fast_test(3);
                cfg.exec_threads = exec_threads;
                cfg.pipeline_depth = pipeline_depth;
                cfg.backend = backend;
                let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
                se_workloads::load_accounts(rt.as_ref(), n, 8, 1000);
                let waiters: Vec<_> = (0..80)
                    .map(|i| {
                        rt.call_async(
                            key(i),
                            "transfer",
                            vec![Value::Ref(key(i + 1)), Value::Int(1)],
                        )
                    })
                    .collect();
                for w in waiters {
                    assert_eq!(
                        w.wait_timeout(std::time::Duration::from_secs(60))
                            .expect("completes")
                            .expect("no error"),
                        Value::Bool(true),
                        "[exec {exec_threads}, depth {pipeline_depth}, {backend}]"
                    );
                }
                let total: i64 = (0..n)
                    .map(|i| {
                        rt.call(key(i), "balance", vec![])
                            .unwrap()
                            .as_int()
                            .unwrap()
                    })
                    .sum();
                assert_eq!(
                    total,
                    1000 * n as i64,
                    "[exec {exec_threads}, depth {pipeline_depth}, {backend}] conservation"
                );
                rt.shutdown();
            }
        }
    }
}

/// History-recorded run under real contention: the recorded event log must
/// pass the serializability checker (decisions justified by the recorded
/// access sets, exactly-once, retry monotonicity), and replaying its
/// equivalent serial order through the single-threaded Local oracle must
/// reproduce both every committed response and the final state.
#[test]
fn recorded_history_is_serializable_and_replays_to_oracle() {
    use se_chaos::{check_history, serial_order, History};
    let program = se_workloads::ycsb_program();
    let n = 4usize;
    let key = |i: usize| EntityRef::new("Account", se_workloads::key_name(i % n));
    for exec_threads in [1usize, 4] {
        for pipeline_depth in [1usize, 4] {
            let mut cfg = StateflowConfig::fast_test(3);
            cfg.exec_threads = exec_threads;
            cfg.pipeline_depth = pipeline_depth;
            let history = History::new();
            cfg.history = Some(history.clone());
            let rule = cfg.commit_rule;
            let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
            se_workloads::load_accounts(rt.as_ref(), n, 8, 1000);
            let waiters: Vec<_> = (0..60)
                .map(|i| {
                    rt.call_async(
                        key(i),
                        "transfer",
                        vec![Value::Ref(key(i + 1)), Value::Int(1)],
                    )
                })
                .collect();
            for w in waiters {
                w.wait_timeout(std::time::Duration::from_secs(60))
                    .expect("completes")
                    .expect("no error");
            }
            let events = history.events();
            let summary = check_history(&events, rule).unwrap_or_else(|e| {
                panic!("[exec {exec_threads}, depth {pipeline_depth}] history check: {e}")
            });
            assert_eq!(
                summary.surviving_commits, 60,
                "[exec {exec_threads}, depth {pipeline_depth}] \
                 every transfer commits exactly once"
            );

            // Replay the equivalent serial order through the Local oracle.
            let order = serial_order(&events).unwrap();
            assert_eq!(order.len(), 60);
            let oracle = deploy(&program, RuntimeChoice::Local).unwrap();
            se_workloads::load_accounts(oracle.as_ref(), n, 8, 1000);
            for op in &order {
                let got = oracle
                    .call(op.target, &op.method, op.args.clone())
                    .map_err(|e| e.to_string());
                assert_eq!(
                    got,
                    op.result.clone(),
                    "[exec {exec_threads}, depth {pipeline_depth}] \
                     txn {} response diverged in serial replay",
                    op.txn
                );
            }
            for i in 0..n {
                assert_eq!(
                    rt.call(key(i), "balance", vec![]).unwrap(),
                    oracle.call(key(i), "balance", vec![]).unwrap(),
                    "[exec {exec_threads}, depth {pipeline_depth}] \
                     account {i} final state diverged"
                );
            }
            rt.shutdown();
            oracle.shutdown();
        }
    }
}

#[test]
fn ycsb_program_runs_on_all_engines() {
    let program = se_workloads::ycsb_program();
    for choice in [
        RuntimeChoice::Local,
        RuntimeChoice::Statefun(StatefunConfig::fast_test(2)),
        RuntimeChoice::Stateflow(StateflowConfig::fast_test(2)),
    ] {
        let rt = deploy(&program, choice).unwrap();
        let a = rt
            .create("Account", "a", vec![("balance".into(), Value::Int(10))])
            .unwrap();
        let payload = Value::Bytes(vec![9u8; 256]);
        assert_eq!(
            rt.call(a, "update", vec![payload.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            rt.call(a, "read", vec![]).unwrap(),
            payload,
            "[{}]",
            rt.name()
        );
        if rt.supports_transactions() {
            let b = rt.create("Account", "b", vec![]).unwrap();
            assert_eq!(
                rt.call(a, "transfer", vec![Value::Ref(b), Value::Int(4)])
                    .unwrap(),
                Value::Bool(true)
            );
            assert_eq!(rt.call(b, "balance", vec![]).unwrap(), Value::Int(4));
        }
        rt.shutdown();
    }
}

/// Observability is read-path-only: tracing every probe in the stack must
/// not change one byte of the recorded logical history. Runs a
/// deterministic burst workload at pipeline depth 4 × exec pool 4 with the
/// WAL on — so batch-lifecycle, exec-pool, WAL *and* VM probes are all
/// live — once with `SE_OBS=off` and once with `SE_OBS=trace`, and compares
/// the canonical history serializations byte for byte.
#[test]
fn obs_trace_vs_off_histories_are_byte_identical() {
    use se_chaos::History;
    use stateful_entities::DurabilityMode;
    let n = 8usize;
    let run = |mode: se_obs::ObsMode| {
        let program = se_workloads::ycsb_program();
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.exec_threads = 4;
        cfg.pipeline_depth = 4;
        cfg.durability.mode = DurabilityMode::Wal;
        cfg.snapshot_every_batches = 0;
        cfg.obs = se_obs::ObsConfig {
            mode,
            dir: std::env::temp_dir().join(format!("se-obs-identity-{}", std::process::id())),
            label: "identity".into(),
            ..Default::default()
        };
        let history = History::new();
        cfg.history = Some(history.clone());
        let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
        for i in 0..n {
            rt.create(
                "Account",
                &se_workloads::key_name(i),
                vec![("balance".into(), Value::Int(100))],
            )
            .unwrap();
        }
        // Bursts of disjoint cross-partition transfers: conflict-free
        // multi-hop chains, so the schedule is fully pinned and any
        // divergence is an obs write-path leak, not retry noise.
        for round in 0..2i64 {
            let waiters: Vec<_> = (0..n / 2)
                .map(|p| {
                    rt.call_async(
                        EntityRef::new("Account", se_workloads::key_name(2 * p)),
                        "transfer",
                        vec![
                            Value::Ref(EntityRef::new(
                                "Account",
                                se_workloads::key_name(2 * p + 1),
                            )),
                            Value::Int((round + p as i64) % 5 + 1),
                        ],
                    )
                })
                .collect();
            for w in waiters {
                w.wait_timeout(std::time::Duration::from_secs(60))
                    .expect("completes")
                    .expect("no error");
            }
        }
        rt.shutdown();
        history.to_json_canonical()
    };
    let off = run(se_obs::ObsMode::Off);
    let trace = run(se_obs::ObsMode::Trace);
    assert_eq!(off, trace, "obs trace mode leaked into logical execution");
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("se-obs-identity-{}", std::process::id())),
    );
}
