//! System-level guarantee tests: serializability on StateFlow, the
//! documented non-transactional race on StateFun, and exactly-once state
//! updates under failure on both engines — the paper's core claims,
//! exercised through the public facade.
//!
//! Fault injection runs through `ChaosPlan` scripts (the single injection
//! path; the legacy `FailurePlan` is a thin wrapper over the same plan).

use std::sync::Arc;
use std::time::Duration;

use se_chaos::{ChaosPlan, CrashFault, CrashPoint, FaultScript};
use stateful_entities::prelude::*;
use stateful_entities::{CheckpointMode, ExecBackend, StateflowConfig, StatefunConfig};

const WAIT: Duration = Duration::from_secs(60);

/// Flash-sale scenario: every user affords exactly one purchase.
fn run_flash_sale(rt: &dyn EntityRuntime, users: usize) -> (i64, usize) {
    let program_item = rt
        .create(
            "Item",
            "gpu",
            vec![
                ("price".into(), Value::Int(30)),
                ("stock".into(), Value::Int(10_000)),
            ],
        )
        .unwrap();
    let user_refs: Vec<EntityRef> = (0..users)
        .map(|i| {
            rt.create(
                "User",
                &format!("u{i}"),
                vec![("balance".into(), Value::Int(60))],
            )
            .unwrap()
        })
        .collect();
    let waiters: Vec<_> = user_refs
        .iter()
        .flat_map(|u| {
            (0..2).map(|_| {
                rt.call_async(
                    *u,
                    "buy_item",
                    vec![Value::Int(2), Value::Ref(program_item)],
                )
            })
        })
        .collect();
    let successes = waiters
        .into_iter()
        .filter(|w| w.wait_timeout(WAIT).unwrap().unwrap() == Value::Bool(true))
        .count() as i64;
    let negative = user_refs
        .iter()
        .filter(|u| rt.call(*(*u), "balance", vec![]).unwrap().as_int().unwrap() < 0)
        .count();
    (successes, negative)
}

#[test]
fn stateflow_serializability_holds_under_contention() {
    // The guarantee must hold for every coordinator schedule × execution
    // backend × exec-pool size: stop-and-wait and pipelined batches,
    // tree-walk and VM, serial and shard-parallel execution.
    let program = stateful_entities::programs::figure1_program();
    for exec_threads in [1usize, 4] {
        for pipeline_depth in [1usize, 2, 4] {
            for backend in [ExecBackend::Interp, ExecBackend::Vm] {
                let mut cfg = StateflowConfig::fast_test(4);
                cfg.exec_threads = exec_threads;
                cfg.pipeline_depth = pipeline_depth;
                cfg.backend = backend;
                let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
                let users = 20;
                let (successes, negative) = run_flash_sale(rt.as_ref(), users);
                assert_eq!(
                    successes, users as i64,
                    "[exec {exec_threads}, depth {pipeline_depth}, {backend}] \
                     exactly one purchase per user must commit"
                );
                assert_eq!(
                    negative, 0,
                    "[exec {exec_threads}, depth {pipeline_depth}, {backend}] \
                     serializable execution never overdrafts"
                );
                rt.shutdown();
            }
        }
    }
}

#[test]
fn statefun_documented_race_violates_invariants() {
    let program = stateful_entities::programs::figure1_program();
    let mut cfg = StatefunConfig::fast_test(2);
    // Widen the suspension window (price-call round trip) so the
    // interleaving is deterministic enough for CI.
    cfg.net.broker_hop = Duration::from_millis(3);
    let rt = deploy(&program, RuntimeChoice::Statefun(cfg)).unwrap();
    let users = 10;
    let (successes, negative) = run_flash_sale(rt.as_ref(), users);
    assert!(
        successes > users as i64 || negative > 0,
        "expected the §3 write-skew race on an engine without transactions \
         (got {successes} successes, {negative} negative balances)"
    );
    rt.shutdown();
}

/// Commutative deposits + a worker crash: the final balances detect any
/// lost or duplicated effect.
fn deposits_with_failure(rt: &dyn EntityRuntime, n_accounts: usize, ops: usize) -> Vec<i64> {
    for i in 0..n_accounts {
        rt.create("Account", &se_workloads::key_name(i), vec![])
            .unwrap();
    }
    let mut expected = vec![0i64; n_accounts];
    let mut waiters = Vec::new();
    for i in 0..ops {
        let k = i % n_accounts;
        let amount = (i % 11 + 1) as i64;
        expected[k] += amount;
        waiters.push(rt.call_async(
            EntityRef::new("Account", se_workloads::key_name(k)),
            "deposit",
            vec![Value::Int(amount)],
        ));
        if i % 12 == 0 {
            std::thread::sleep(Duration::from_millis(4));
        }
    }
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("completes after recovery")
            .expect("no error");
    }
    let got: Vec<i64> = (0..n_accounts)
        .map(|i| {
            rt.call(
                EntityRef::new("Account", se_workloads::key_name(i)),
                "balance",
                vec![],
            )
            .unwrap()
            .as_int()
            .unwrap()
        })
        .collect();
    assert_eq!(got, expected, "exactly-once violated");
    got
}

#[test]
fn exactly_once_stateflow_through_facade() {
    let program = se_workloads::ycsb_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.snapshot_every_batches = 3;
    cfg.chaos = ChaosPlan::single_crash("worker1", 40);
    let chaos = cfg.chaos.clone();
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    deposits_with_failure(rt.as_ref(), 5, 100);
    assert_eq!(chaos.crashes_fired(), 1);
    rt.shutdown();
}

#[test]
fn exactly_once_statefun_through_facade() {
    let program = se_workloads::ycsb_program();
    let mut cfg = StatefunConfig::fast_test(3);
    cfg.checkpoint = CheckpointMode::Transactional {
        interval: Duration::from_millis(20),
    };
    cfg.chaos = ChaosPlan::single_crash("task1", 25);
    let chaos = cfg.chaos.clone();
    let rt = deploy(&program, RuntimeChoice::Statefun(cfg)).unwrap();
    deposits_with_failure(rt.as_ref(), 5, 100);
    assert_eq!(chaos.crashes_fired(), 1);
    rt.shutdown();
}

/// Cross-account transfers with a mid-stream worker crash: money must be
/// conserved at every pipeline depth (the crash lands while batches are in
/// flight, so recovery must fence and replay an overlapping window).
fn transfers_with_crash_conserve_money(cfg: StateflowConfig) {
    let program = se_workloads::ycsb_program();
    let rt = Arc::new(deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap());
    let n = 6;
    se_workloads::load_accounts(rt.as_ref().as_ref(), n, 16, 500);
    let waiters: Vec<_> = (0..90)
        .map(|i| {
            rt.call_async(
                EntityRef::new("Account", se_workloads::key_name(i % n)),
                "transfer",
                vec![
                    Value::Ref(EntityRef::new(
                        "Account",
                        se_workloads::key_name((i + 2) % n),
                    )),
                    Value::Int(3),
                ],
            )
        })
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT).expect("completes").expect("no error");
    }
    let total: i64 = (0..n)
        .map(|i| {
            rt.call(
                EntityRef::new("Account", se_workloads::key_name(i)),
                "balance",
                vec![],
            )
            .unwrap()
            .as_int()
            .unwrap()
        })
        .sum();
    assert_eq!(total, 500 * n as i64);
    rt.shutdown();
}

#[test]
fn transactional_transfers_with_crash_conserve_money() {
    // Conservation under a crash must hold with and without the exec pool:
    // a pool segment in flight when the protocol thread wipes the partition
    // becomes a fenced zombie, never a double-applied effect.
    for exec_threads in [1usize, 4] {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.exec_threads = exec_threads;
        cfg.snapshot_every_batches = 2;
        cfg.chaos = ChaosPlan::single_crash("worker0", 30);
        transfers_with_crash_conserve_money(cfg);
    }
}

/// Crash/restore while several batches are in flight: tiny batches + depth
/// 4 keep the pipeline saturated (the 90 transfers arrive at once and seal
/// into ≥ 20 overlapping batches), and the worker dies mid-window — the
/// generation fence must discard every half-committed batch and the replay
/// must land exactly once.
#[test]
fn pipelined_crash_with_batches_in_flight_conserves_money() {
    for exec_threads in [1usize, 4] {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.exec_threads = exec_threads;
        cfg.pipeline_depth = 4;
        cfg.max_batch = 4;
        cfg.snapshot_every_batches = 3;
        cfg.chaos = ChaosPlan::single_crash("worker1", 35);
        let chaos = cfg.chaos.clone();
        transfers_with_crash_conserve_money(cfg);
        assert_eq!(
            chaos.crashes_fired(),
            1,
            "[exec {exec_threads}] the crash must land mid-pipeline"
        );
    }
}

/// The exec pool must be observationally invisible: for the same request
/// sequence, the recorded history — batch composition, access sets, commit
/// decisions, every response — must be byte-identical in canonical JSON
/// whether transactions execute serially or on a 2- or 4-thread pool. A wide
/// seal window pins batch composition (each burst lands in one batch), so
/// the only thing varying across runs is pool scheduling — which must not
/// leak into any recorded outcome.
#[test]
fn history_is_byte_identical_across_exec_pool_sizes() {
    use se_chaos::History;
    let program = se_workloads::ycsb_program();
    let n = 8usize;
    let run = |exec_threads: usize| -> String {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.exec_threads = exec_threads;
        cfg.pipeline_depth = 1;
        cfg.snapshot_every_batches = 0;
        cfg.batch_interval = Duration::from_millis(10);
        let history = History::new();
        cfg.history = Some(history.clone());
        let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
        for i in 0..n {
            rt.create(
                "Account",
                &se_workloads::key_name(i),
                vec![("balance".into(), Value::Int(100))],
            )
            .unwrap();
        }
        // Two bursts of disjoint cross-partition transfers: multi-hop
        // chains run concurrently on the pool, conflict-free, so every
        // transaction commits and the schedule is fully pinned.
        for round in 0..2i64 {
            let waiters: Vec<_> = (0..n / 2)
                .map(|p| {
                    rt.call_async(
                        EntityRef::new("Account", se_workloads::key_name(2 * p)),
                        "transfer",
                        vec![
                            Value::Ref(EntityRef::new(
                                "Account",
                                se_workloads::key_name(2 * p + 1),
                            )),
                            Value::Int((round + p as i64) % 5 + 1),
                        ],
                    )
                })
                .collect();
            for w in waiters {
                w.wait_timeout(WAIT).expect("completes").expect("no error");
            }
        }
        rt.shutdown();
        history.to_json_canonical()
    };
    let serial = run(1);
    for exec_threads in [2usize, 4] {
        assert_eq!(
            run(exec_threads),
            serial,
            "exec pool of {exec_threads} threads changed the recorded history"
        );
    }
}

/// Regression for the snapshot pipeline-drain barrier at depth 4: the crash
/// is scripted at a *commit-application* point, so it lands while the
/// coordinator is draining toward a snapshot cut — batches decided, commit
/// records in flight, commit acks only partially collected (the one timing
/// window a crash counted in exec events cannot pin down). Recovery must
/// fence the half-committed window and replay to the oracle state.
#[test]
fn crash_while_snapshot_barrier_drains_replays_to_oracle_state() {
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.pipeline_depth = 4;
    cfg.max_batch = 4;
    // Snapshot after every batch: the drain barrier (in-flight empty + all
    // commit acks) is armed almost continuously.
    cfg.snapshot_every_batches = 1;
    cfg.chaos = ChaosPlan::from_script(FaultScript {
        crashes: vec![CrashFault {
            node: "worker1".into(),
            point: CrashPoint::Commit,
            // Dies applying its 6th commit record: by then several batches
            // are in flight and peers' acks for the current batch are
            // already (or not yet) at the coordinator — a partial drain.
            after_events: 6,
        }],
        ..FaultScript::default()
    });
    let chaos = cfg.chaos.clone();
    let snapshots_seen;
    {
        let program = se_workloads::ycsb_program();
        let graph = stateful_entities::compile(&program).unwrap();
        let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg);
        let oracle = deploy(&program, RuntimeChoice::Local).unwrap();
        let n = 6usize;
        se_workloads::load_accounts(&rt, n, 16, 500);
        se_workloads::load_accounts(oracle.as_ref(), n, 16, 500);
        let key = |i: usize| EntityRef::new("Account", se_workloads::key_name(i % n));
        // Deposits are commutative, so the oracle state is schedule-
        // independent; the crash mid-drain must lose or duplicate nothing.
        // Bursts with short pauses let the pipeline drain repeatedly, so
        // snapshot cuts (and their ack-draining windows) happen mid-run.
        let waiters: Vec<_> = (0..90)
            .map(|i| {
                let amount = (i % 7 + 1) as i64;
                oracle
                    .call(key(i), "deposit", vec![Value::Int(amount)])
                    .unwrap();
                if i % 12 == 0 {
                    std::thread::sleep(Duration::from_millis(4));
                }
                rt.call_async(key(i), "deposit", vec![Value::Int(amount)])
            })
            .collect();
        for w in waiters {
            w.wait_timeout(WAIT)
                .expect("completes after recovery")
                .expect("no error");
        }
        assert_eq!(chaos.crashes_fired(), 1, "the commit-point crash must fire");
        assert_eq!(rt.stats().recoveries.get(), 1);
        // Let the final batch's commit acks land so the trailing snapshot
        // completes before the count is read.
        std::thread::sleep(Duration::from_millis(60));
        snapshots_seen = rt.stats().snapshots.get();
        for i in 0..n {
            let got = rt.call(key(i), "balance", vec![]).unwrap();
            let want = oracle.call(key(i), "balance", vec![]).unwrap();
            assert_eq!(got, want, "account {i} diverged from the oracle");
        }
        rt.shutdown();
        oracle.shutdown();
    }
    assert!(
        snapshots_seen >= 1,
        "per-batch snapshots must complete around the crash window"
    );
}
