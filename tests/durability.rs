//! Durability acceptance tests: with `SE_DURABILITY=wal` semantics turned
//! on in the config, every post-crash restore rebuilds partition state from
//! the on-disk WAL + base snapshots instead of the in-memory snapshot store
//! — and the runs must still pass the serializability checker and land on
//! oracle-equal state, even when the crash is paired with scripted disk
//! damage (torn/lost tails, bit flips, missing snapshot files).

use std::sync::Arc;
use std::time::Duration;

use se_chaos::{
    check_history, ChaosPlan, CrashFault, CrashPoint, DiskFault, DiskFaultKind, FaultScript,
    History,
};
use stateful_entities::prelude::*;
use stateful_entities::{DurabilityMode, StateflowConfig};

const WAIT: Duration = Duration::from_secs(60);

fn acct(i: usize) -> EntityRef {
    EntityRef::new("Account", se_workloads::key_name(i))
}

fn durable_cfg(workers: usize) -> StateflowConfig {
    let mut cfg = StateflowConfig::fast_test(workers);
    cfg.durability.mode = DurabilityMode::Wal;
    // Small incremental-snapshot period so base rewrites happen mid-run.
    cfg.durability.full_snapshot_every = 2;
    cfg.snapshot_every_batches = 2;
    cfg
}

/// Commutative deposits against a Local-runtime oracle, a scripted crash on
/// `worker1`, history recording, and a post-run audit: crash fired, at least
/// one recovery ran, the history is serializable, and every balance equals
/// the oracle's.
fn crashed_durable_run_matches_oracle(cfg: StateflowConfig, ops: usize) {
    let chaos = cfg.chaos.clone();
    let history = History::new();
    let mut cfg = cfg;
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let program = se_workloads::ycsb_program();
    let graph = stateful_entities::compile(&program).unwrap();
    let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg);
    let oracle = deploy(&program, RuntimeChoice::Local).unwrap();
    let n = 5usize;
    se_workloads::load_accounts(&rt, n, 8, 200);
    se_workloads::load_accounts(oracle.as_ref(), n, 8, 200);
    let waiters: Vec<_> = (0..ops)
        .map(|i| {
            let amount = (i % 9 + 1) as i64;
            oracle
                .call(acct(i % n), "deposit", vec![Value::Int(amount)])
                .unwrap();
            // Short pauses spread the batches out so the crash lands while
            // snapshots (and WAL epoch cuts) are interleaved with commits.
            if i % 10 == 0 {
                std::thread::sleep(Duration::from_millis(4));
            }
            rt.call_async(acct(i % n), "deposit", vec![Value::Int(amount)])
        })
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("completes after recovery")
            .expect("no error");
    }
    assert_eq!(chaos.crashes_fired(), 1, "the scripted crash must fire");
    assert!(
        rt.stats().recoveries.get() >= 1,
        "the crash must trigger at least one restore round"
    );
    check_history(&history.events(), rule).expect("post-crash disk recovery stays serializable");
    for i in 0..n {
        assert_eq!(
            rt.call(acct(i), "balance", vec![]).unwrap(),
            oracle.call(acct(i), "balance", vec![]).unwrap(),
            "account {i} diverged from the oracle after disk recovery"
        );
    }
    rt.shutdown();
    oracle.shutdown();
}

/// Tentpole acceptance: a worker crash at each of the three protocol points
/// (execution, reservation, commit application) with durability on — the
/// partition must come back from its own disk and the run must stay
/// serializable and oracle-equal.
#[test]
fn crash_at_each_protocol_point_recovers_from_disk() {
    for point in [CrashPoint::Exec, CrashPoint::Reserve, CrashPoint::Commit] {
        let mut cfg = durable_cfg(3);
        cfg.chaos = ChaosPlan::from_script(FaultScript {
            crashes: vec![CrashFault {
                node: "worker1".into(),
                point,
                after_events: 5,
            }],
            ..FaultScript::default()
        });
        crashed_durable_run_matches_oracle(cfg, 80);
    }
}

/// Power-loss faults: the crashed worker's unsynced WAL tail is torn
/// mid-record or lost entirely. Recovery must replay the last durable
/// prefix and rejoin cleanly — zero checker violations, money conserved.
#[test]
fn torn_and_lost_tails_recover_to_last_durable_prefix() {
    for kind in [
        DiskFaultKind::TornTail { bytes: 37 },
        DiskFaultKind::LostTail,
    ] {
        let mut cfg = durable_cfg(3);
        cfg.pipeline_depth = 2;
        cfg.chaos = ChaosPlan::from_script(FaultScript {
            crashes: vec![CrashFault {
                node: "worker1".into(),
                point: CrashPoint::Commit,
                after_events: 6,
            }],
            disk: vec![DiskFault {
                node: "worker1".into(),
                kind,
            }],
            ..FaultScript::default()
        });
        let chaos = cfg.chaos.clone();
        let history = History::new();
        cfg.history = Some(history.clone());
        let rule = cfg.commit_rule;
        let program = se_workloads::ycsb_program();
        let rt = Arc::new(deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap());
        let n = 6usize;
        se_workloads::load_accounts(rt.as_ref().as_ref(), n, 16, 500);
        let waiters: Vec<_> = (0..90)
            .map(|i| {
                if i % 12 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
                rt.call_async(
                    acct(i % n),
                    "transfer",
                    vec![Value::Ref(acct((i + 2) % n)), Value::Int(3)],
                )
            })
            .collect();
        for w in waiters {
            w.wait_timeout(WAIT).expect("completes").expect("no error");
        }
        assert_eq!(chaos.crashes_fired(), 1, "[{kind:?}] crash must fire");
        assert_eq!(
            chaos.disk_faults_fired(),
            1,
            "[{kind:?}] the disk fault must be consumed at crash time"
        );
        check_history(&history.events(), rule)
            .unwrap_or_else(|e| panic!("[{kind:?}] recovery violated serializability: {e}"));
        let total: i64 = (0..n)
            .map(|i| {
                rt.call(acct(i), "balance", vec![])
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 500 * n as i64, "[{kind:?}] money not conserved");
        rt.shutdown();
    }
}

/// Silent corruption: one bit flips inside the last unsynced WAL data
/// record. The CRC must catch it, recovery truncates at the damaged frame
/// (possibly falling back an epoch, which forces a cluster-wide extra
/// restore round), and the replayed run still matches the oracle.
#[test]
fn bitflipped_wal_record_is_caught_by_checksum() {
    let mut cfg = durable_cfg(3);
    cfg.chaos = ChaosPlan::from_script(FaultScript {
        crashes: vec![CrashFault {
            node: "worker0".into(),
            point: CrashPoint::Exec,
            after_events: 18,
        }],
        disk: vec![DiskFault {
            node: "worker0".into(),
            kind: DiskFaultKind::BitFlip,
        }],
        ..FaultScript::default()
    });
    crashed_durable_run_matches_oracle(cfg, 80);
}

/// Missing-base fault plus fsync weather: the newest base snapshot file is
/// gone at recovery time (recovery falls back to an older base or full log
/// replay), while one fsync fails outright and another is slowed — the
/// synced prefix lags, but nothing observable may change.
#[test]
fn missing_snapshot_and_fsync_weather_still_recover() {
    let mut cfg = durable_cfg(3);
    cfg.chaos = ChaosPlan::from_script(FaultScript {
        crashes: vec![CrashFault {
            node: "worker2".into(),
            point: CrashPoint::Commit,
            after_events: 5,
        }],
        disk: vec![
            DiskFault {
                node: "worker2".into(),
                kind: DiskFaultKind::MissingSnapshot,
            },
            DiskFault {
                node: "worker2".into(),
                kind: DiskFaultKind::FailedFsync { nth: 1 },
            },
            DiskFault {
                node: "worker0".into(),
                kind: DiskFaultKind::SlowFsync {
                    nth: 2,
                    extra_us: 20_000,
                },
            },
        ],
        ..FaultScript::default()
    });
    crashed_durable_run_matches_oracle(cfg, 80);
}

/// One logically deterministic serial run, parameterized by durability
/// mode; returns the canonical history JSON.
fn serial_history_run(mode: DurabilityMode) -> String {
    let program = se_workloads::ycsb_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.net.time_scale = 0.0;
    cfg.durability.mode = mode;
    cfg.snapshot_every_batches = 2;
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    let n = 3usize;
    for i in 0..n {
        rt.create(
            "Account",
            &se_workloads::key_name(i),
            vec![("balance".into(), Value::Int(100))],
        )
        .unwrap();
    }
    for i in 0..12 {
        if i % 3 == 0 {
            rt.call(acct(i % n), "deposit", vec![Value::Int((i % 5) as i64 + 1)])
                .unwrap();
        } else {
            rt.call(
                acct(i % n),
                "transfer",
                vec![Value::Ref(acct((i + 1) % n)), Value::Int(2)],
            )
            .unwrap();
        }
    }
    rt.shutdown();
    check_history(&history.events(), rule).expect("serial run serializable");
    history.to_json_canonical()
}

/// Durability is write-path-only: turning the WAL on must not change one
/// byte of the recorded logical history relative to the volatile default.
#[test]
fn durability_on_vs_off_histories_are_byte_identical() {
    assert_eq!(
        serial_history_run(DurabilityMode::Off),
        serial_history_run(DurabilityMode::Wal),
        "the WAL write path leaked into logical execution"
    );
}

/// Total on-disk `wal.log` bytes across every worker subdirectory.
fn wal_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    for entry in std::fs::read_dir(dir).expect("read durability dir") {
        let wal = entry.expect("dir entry").path().join("wal.log");
        if let Ok(meta) = std::fs::metadata(&wal) {
            total += meta.len();
        }
    }
    total
}

/// WAL reclamation: every completed snapshot round advances the cluster
/// durable floor, and the next snapshot marker compacts each worker's log
/// below it — so a long run's on-disk WAL stays a fraction of the
/// never-compacted control's. The compacted run also takes a *late* crash,
/// proving a partition can still rejoin from its rewritten log, and both
/// runs must stay oracle-equal.
#[test]
fn snapshots_reclaim_wal_space() {
    let stamp = format!(
        "se-wal-reclaim-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    );
    let compacted_dir = std::env::temp_dir().join(format!("{stamp}-compacted"));
    let control_dir = std::env::temp_dir().join(format!("{stamp}-control"));
    std::fs::create_dir_all(&compacted_dir).unwrap();
    std::fs::create_dir_all(&control_dir).unwrap();

    // Compacted run: snapshots every 2 batches, crash after the floor has
    // had time to advance past several compactions. The batch size is
    // capped well below the request count: `fast_test`'s 256-txn batches
    // can swallow the whole run in one or two seals on a quiet host, so no
    // snapshot round completes, the durable floor never advances, and the
    // "compacted" log equals the control's. Capping at 8 forces ≥ 25
    // batches → ≥ 12 snapshot rounds regardless of scheduling.
    let mut cfg = durable_cfg(3);
    cfg.max_batch = 8;
    cfg.durability.dir = Some(compacted_dir.clone());
    cfg.chaos = ChaosPlan::from_script(FaultScript {
        crashes: vec![CrashFault {
            node: "worker1".into(),
            point: CrashPoint::Exec,
            after_events: 40,
        }],
        ..FaultScript::default()
    });
    crashed_durable_run_matches_oracle(cfg, 200);

    // Control run: durability on, snapshots off — no floor, no compaction,
    // the log keeps every commit of the run. Same batch cap so the
    // per-batch record framing overhead is comparable across the two logs.
    let mut cfg = durable_cfg(3);
    cfg.max_batch = 8;
    cfg.durability.dir = Some(control_dir.clone());
    cfg.snapshot_every_batches = 0;
    let program = se_workloads::ycsb_program();
    let graph = stateful_entities::compile(&program).unwrap();
    let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg);
    se_workloads::load_accounts(&rt, 5, 8, 200);
    let waiters: Vec<_> = (0..200)
        .map(|i| rt.call_async(acct(i % 5), "deposit", vec![Value::Int((i % 9 + 1) as i64)]))
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT).expect("completes").expect("no error");
    }
    rt.shutdown();

    let compacted = wal_bytes(&compacted_dir);
    let control = wal_bytes(&control_dir);
    assert!(control > 0, "control run must leave a WAL behind");
    assert!(compacted > 0, "compacted run must leave a WAL behind");
    assert!(
        compacted * 2 < control,
        "snapshots must reclaim WAL space: compacted {compacted} bytes \
         vs never-compacted {control} bytes"
    );
    std::fs::remove_dir_all(&compacted_dir).ok();
    std::fs::remove_dir_all(&control_dir).ok();
}
