//! Structural checks of the compiler's output over every reference program:
//! valid block CFGs, fully reachable state machines, live-in parameter
//! sanity, and stable golden shapes for the paper's running example.

use se_ir::{StateMachine, Terminator};
use stateful_entities::compile;

fn all_programs() -> Vec<(&'static str, se_lang::Program)> {
    vec![
        ("figure1", stateful_entities::programs::figure1_program()),
        ("counter", stateful_entities::programs::counter_program()),
        ("chain4", stateful_entities::programs::chain_program(4)),
        ("ycsb", se_workloads::ycsb_program()),
        ("tpcc", se_workloads::tpcc::tpcc_program()),
    ]
}

#[test]
fn every_method_produces_a_valid_cfg() {
    for (name, program) in all_programs() {
        let graph = compile(&program).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        for class in &graph.program.classes {
            for method in &class.methods {
                method
                    .validate()
                    .unwrap_or_else(|e| panic!("{name}/{}.{}: {e}", class.name(), method.name));
                let sm = StateMachine::from_method(method);
                assert!(
                    sm.fully_reachable(),
                    "{name}/{}.{}: dead states",
                    class.name(),
                    method.name
                );
            }
        }
    }
}

#[test]
fn block_params_are_consistent_with_uses() {
    // Every variable referenced by a block (before local definition) must be
    // in its params — otherwise resumption would hit undefined variables.
    for (name, program) in all_programs() {
        let graph = compile(&program).unwrap();
        for class in &graph.program.classes {
            for method in &class.methods {
                for block in &method.blocks {
                    let mut defined: std::collections::BTreeSet<se_lang::Symbol> =
                        block.params.iter().copied().collect();
                    // Entry block params come from the invocation arguments.
                    if block.id == method.entry {
                        defined.extend(method.params.iter().map(|(n, _)| *n));
                    }
                    for stmt in &block.stmts {
                        if let se_lang::Stmt::Assign { name: n, value, .. } = stmt {
                            check_expr(value, &defined, name, method.name, block.id);
                            defined.insert(*n);
                        }
                    }
                    if let Terminator::Return(e) | Terminator::Branch { cond: e, .. } =
                        &block.terminator
                    {
                        check_expr(e, &defined, name, method.name, block.id);
                    }
                }
            }
        }
    }

    fn check_expr(
        e: &se_lang::Expr,
        defined: &std::collections::BTreeSet<se_lang::Symbol>,
        program: &str,
        method: se_lang::Symbol,
        block: se_ir::BlockId,
    ) {
        let mut used = std::collections::BTreeSet::new();
        e.referenced_vars(&mut used);
        for v in used {
            assert!(
                defined.contains(&v),
                "{program}/{method} block {block}: `{v}` used but not live-in/defined"
            );
        }
    }
}

#[test]
fn figure1_golden_shape() {
    let graph = compile(&stateful_entities::programs::figure1_program()).unwrap();
    let buy = graph.program.method_or_err("User", "buy_item").unwrap();
    assert_eq!(buy.suspension_points(), 3, "price + update_stock ×2");
    // The entry suspends immediately on price() with `item` live.
    let Terminator::RemoteCall {
        method,
        result_var,
        resume,
        ..
    } = &buy.blocks[0].terminator
    else {
        panic!("entry must suspend on price()");
    };
    assert_eq!(method, "price");
    assert!(result_var.is_some());
    // The resume block needs amount (total computation), item (later calls)
    // and the hoisted price result.
    let resume_params = &buy.block(*resume).params;
    for v in ["amount", "item"] {
        assert!(
            resume_params.contains(&se_lang::Symbol::from(v)),
            "{resume_params:?}"
        );
    }

    let price = graph.program.method_or_err("Item", "price").unwrap();
    assert!(price.is_simple(), "getters stay single-block");
    let update = graph.program.method_or_err("Item", "update_stock").unwrap();
    assert!(update.is_simple());
}

#[test]
fn tpcc_new_order_loop_machine_has_cycle() {
    let graph = compile(&se_workloads::tpcc::tpcc_program()).unwrap();
    let sm = graph
        .program
        .class("Customer")
        .unwrap()
        .machine("new_order")
        .unwrap();
    assert!(
        sm.has_cycle(),
        "the stocks loop must appear as a cycle in the state machine"
    );
    assert!(sm.fully_reachable());
}

#[test]
fn dataflow_graph_edges_cover_call_graph() {
    let graph = compile(&se_workloads::tpcc::tpcc_program()).unwrap();
    let call_edges: Vec<String> = graph
        .edges
        .iter()
        .filter_map(|e| match &e.kind {
            se_ir::EdgeKind::Call { caller, callee } => Some(format!("{caller}→{callee}")),
            _ => None,
        })
        .collect();
    for expected in [
        "Customer.payment→Warehouse.receive_payment",
        "Customer.payment→District.receive_payment",
        "Customer.new_order→District.next_order_id",
        "Customer.new_order→Stock.take",
    ] {
        assert!(
            call_edges.iter().any(|e| e == expected),
            "missing edge {expected}; have {call_edges:?}"
        );
    }
}

#[test]
fn compile_is_deterministic() {
    let p = se_workloads::tpcc::tpcc_program();
    let g1 = compile(&p).unwrap();
    let g2 = compile(&p).unwrap();
    assert_eq!(g1, g2, "compilation must be a pure function of the program");
}
