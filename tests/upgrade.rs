//! Live-code-upgrade acceptance tests (tentpole): a v2 class deployed while
//! v1 serves traffic must switch at an epoch boundary — new roots route to
//! v2, entity state migrates exactly once via `__migrate__`, in-flight v1
//! work drains on v1 — on the StateFlow engine, under both execution
//! backends, across crashes, and without leaking any version machinery into
//! the recorded history of runs that never upgrade.

use std::time::Duration;

use proptest::prelude::*;

use se_chaos::{check_history, ChaosPlan, CrashFault, CrashPoint, FaultScript, History};
use se_lang::arb;
use stateful_entities::prelude::*;
use stateful_entities::{DurabilityMode, ExecBackend, StateflowConfig, StateflowRuntime};

const WAIT: Duration = Duration::from_secs(60);

fn counter(i: usize) -> EntityRef {
    EntityRef::new("Counter", se_workloads::key_name(i))
}

/// Deploys counter v1, drives `per_counter` incr(1) calls per counter, live
/// upgrades to v2 (incr doubles; `__migrate__` seeds `shadow = count * 10`),
/// drives the same load again, and returns the runtime for assertions.
///
/// The arithmetic is fully deterministic: every pre-upgrade root is appended
/// to the source before the `Redeploy` record and therefore seals at v1
/// (count = k per counter), migration snapshots shadow = 10k, and every
/// post-upgrade root seals at v2 (count = k + 2k = 3k, shadow untouched).
fn upgraded_counter_run(
    cfg: StateflowConfig,
    counters: usize,
    per_counter: usize,
) -> StateflowRuntime {
    let graph = stateful_entities::compile(&se_lang::programs::counter_program()).unwrap();
    let rt = StateflowRuntime::deploy(graph, cfg);
    assert_eq!(rt.active_version(), 1, "fresh deploys start at version 1");
    for i in 0..counters {
        rt.create("Counter", &se_workloads::key_name(i), vec![])
            .unwrap();
    }
    let phase = |rt: &StateflowRuntime| {
        let waiters: Vec<_> = (0..counters * per_counter)
            .map(|i| rt.call_async(counter(i % counters), "incr", vec![Value::Int(1)]))
            .collect();
        for w in waiters {
            w.wait_timeout(WAIT).expect("completes").expect("no error");
        }
    };
    phase(&rt);
    let v2 = rt
        .redeploy(&se_lang::programs::counter_v2_program())
        .expect("v2 compiles and commits");
    assert_eq!(v2, 2, "one upgrade after the initial deploy");
    assert_eq!(
        rt.active_version(),
        2,
        "new roots route to v2 after redeploy"
    );
    phase(&rt);
    rt
}

/// Tentpole acceptance on StateFlow, under both execution backends: the
/// switchover routes new roots to v2 (post-upgrade incrs count double),
/// migration runs exactly once per entity (shadow reflects the *pre-upgrade*
/// count and no later incr touches it), and the recorded history passes the
/// version-atomicity checker with exactly one committed upgrade.
#[test]
fn redeploy_routes_new_roots_and_migrates_exactly_once() {
    for backend in [ExecBackend::Interp, ExecBackend::Vm] {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.backend = backend;
        let history = History::new();
        cfg.history = Some(history.clone());
        let rule = cfg.commit_rule;
        let (counters, per) = (3usize, 8usize);
        let rt = upgraded_counter_run(cfg, counters, per);
        for i in 0..counters {
            assert_eq!(
                rt.call(counter(i), "get", vec![]).unwrap(),
                Value::Int(3 * per as i64),
                "[{backend:?}] counter {i}: k v1 incrs + k doubled v2 incrs"
            );
            assert_eq!(
                rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                Value::Int(10 * per as i64),
                "[{backend:?}] counter {i}: shadow must reflect the pre-upgrade \
                 count exactly once — v2 incrs must not re-migrate"
            );
        }
        rt.shutdown();
        let summary =
            check_history(&history.events(), rule).expect("upgraded run stays serializable");
        assert_eq!(
            summary.upgrades, 1,
            "[{backend:?}] exactly one committed upgrade"
        );
    }
}

/// Version pinning is visible in the history: every batch sealed before the
/// upgrade window carries version 1 and every batch after it version 2 —
/// no batch inside the window, no version other than {1, 2}.
#[test]
fn batches_never_straddle_the_upgrade_window() {
    use se_chaos::HistoryEvent;
    let mut cfg = StateflowConfig::fast_test(3);
    let history = History::new();
    cfg.history = Some(history.clone());
    let rt = upgraded_counter_run(cfg, 2, 6);
    rt.shutdown();
    let mut committed = false;
    for event in history.events() {
        match event {
            HistoryEvent::UpgradeCommitted { version, .. } => {
                assert_eq!(version, 2);
                committed = true;
            }
            HistoryEvent::BatchVersion { batch, version } => {
                let expected = if committed { 2 } else { 1 };
                assert_eq!(
                    version, expected,
                    "batch {batch} sealed on the wrong side of the upgrade"
                );
            }
            _ => {}
        }
    }
    assert!(committed, "the upgrade must commit");
}

/// Runs that never upgrade must leave zero trace of the version machinery:
/// the canonical history JSON contains no version or upgrade event at all,
/// so it stays byte-comparable with histories recorded before this feature
/// existed.
#[test]
fn histories_without_upgrade_carry_no_version_events() {
    let program = se_lang::programs::counter_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.net.time_scale = 0.0;
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).unwrap();
    rt.create("Counter", &se_workloads::key_name(0), vec![])
        .unwrap();
    for _ in 0..6 {
        rt.call(counter(0), "incr", vec![Value::Int(1)]).unwrap();
    }
    rt.shutdown();
    check_history(&history.events(), rule).expect("serializable");
    let json = history.to_json_canonical();
    for marker in [
        "BatchVersion",
        "UpgradeStarted",
        "UpgradeCommitted",
        "SfUpgrade",
    ] {
        assert!(
            !json.contains(marker),
            "an upgrade-free run leaked `{marker}` into its history"
        );
    }
}

/// Two upgrades back to back: v1 → v2 → v2-again (recompiled as v3). The
/// second redeploy exercises registry eviction of the fully-drained v1 and
/// incremental recompilation against v2 as the baseline.
#[test]
fn double_redeploy_keeps_serving() {
    let cfg = StateflowConfig::fast_test(2);
    let rt = upgraded_counter_run(cfg, 2, 4);
    let v3 = rt
        .redeploy(&se_lang::programs::counter_v2_program())
        .expect("idempotent program redeploy");
    assert_eq!(v3, 3);
    assert_eq!(rt.active_version(), 3);
    // v3's migration re-runs over the v2 state: shadow = count * 10 again.
    assert_eq!(
        rt.call(counter(0), "incr", vec![Value::Int(1)]).unwrap(),
        Value::Int(3 * 4 + 2),
        "v3 still doubles increments"
    );
    assert_eq!(
        rt.call(counter(1), "get_shadow", vec![]).unwrap(),
        Value::Int(10 * 3 * 4),
        "the second migration pass resnapshots shadow from the v2 count"
    );
    rt.shutdown();
}

/// Crash-mid-upgrade chaos: a scripted worker crash landing before, around
/// and inside the upgrade window, with the WAL on. Recovery must replay the
/// upgrade from the log (`VersionCut`), the upgrade must still commit
/// exactly once per redeploy, the checker must stay clean, and the final
/// arithmetic must be exactly the no-crash outcome.
#[test]
fn crash_near_upgrade_replays_from_wal_and_commits() {
    for after_events in [3u64, 9, 14] {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.durability.mode = DurabilityMode::Wal;
        cfg.durability.full_snapshot_every = 2;
        cfg.snapshot_every_batches = 2;
        cfg.chaos = ChaosPlan::from_script(FaultScript {
            crashes: vec![CrashFault {
                node: "worker1".into(),
                point: CrashPoint::Exec,
                after_events,
            }],
            ..FaultScript::default()
        });
        let chaos = cfg.chaos.clone();
        let history = History::new();
        cfg.history = Some(history.clone());
        let rule = cfg.commit_rule;
        let (counters, per) = (3usize, 8usize);
        let rt = upgraded_counter_run(cfg, counters, per);
        assert_eq!(
            chaos.crashes_fired(),
            1,
            "[after {after_events}] the scripted crash must fire"
        );
        assert!(
            rt.stats().recoveries.get() >= 1,
            "[after {after_events}] the crash must trigger a restore round"
        );
        for i in 0..counters {
            assert_eq!(
                rt.call(counter(i), "get", vec![]).unwrap(),
                Value::Int(3 * per as i64),
                "[after {after_events}] counter {i} diverged after crash recovery"
            );
            assert_eq!(
                rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                Value::Int(10 * per as i64),
                "[after {after_events}] counter {i} migration not exactly-once \
                 across the crash"
            );
        }
        rt.shutdown();
        let summary = check_history(&history.events(), rule)
            .unwrap_or_else(|e| panic!("[after {after_events}] history check: {e}"));
        assert!(
            summary.upgrades >= 1,
            "[after {after_events}] the upgrade must survive recovery"
        );
    }
}

/// The seeded torn-upgrade bug — flipping the active version while the
/// migration pass is still racing — must be caught by the history checker.
/// The bug needs traffic inside the (normally sealed) upgrade window to
/// manifest, so a writer thread streams incrs while the redeploy runs; a
/// few attempts bound scheduling luck. The identical harness with the lever
/// off must stay clean every time.
#[test]
fn injected_torn_upgrade_is_caught_by_checker() {
    fn attempt(inject: bool) -> Result<(), String> {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.inject_torn_upgrade = inject;
        // Slow control-plane hops stretch the migration round trip
        // (Migrate out, MigrateAck back) to ~10 ms, so the bug's illegally
        // resumed sealing has room to cut batches *inside* the upgrade
        // window — with test-speed hops the window is a few µs wide and the
        // race almost never materializes.
        cfg.net.f2f_hop = Duration::from_millis(5);
        cfg.batch_interval = Duration::from_millis(1);
        let history = History::new();
        cfg.history = Some(history.clone());
        let rule = cfg.commit_rule;
        let graph = stateful_entities::compile(&se_lang::programs::counter_program()).unwrap();
        let rt = std::sync::Arc::new(StateflowRuntime::deploy(graph, cfg));
        for i in 0..3 {
            rt.create("Counter", &se_workloads::key_name(i), vec![])
                .unwrap();
        }
        // Stream traffic so records queue up behind the Redeploy record —
        // under the bug they seal inside the open upgrade window.
        let writer = {
            let rt = std::sync::Arc::clone(&rt);
            std::thread::spawn(move || {
                let waiters: Vec<_> = (0..40)
                    .map(|i| {
                        std::thread::sleep(Duration::from_micros(300));
                        rt.call_async(counter(i % 3), "incr", vec![Value::Int(1)])
                    })
                    .collect();
                for w in waiters {
                    w.wait_timeout(WAIT).expect("completes").expect("no error");
                }
            })
        };
        std::thread::sleep(Duration::from_millis(2));
        rt.redeploy(&se_lang::programs::counter_v2_program())
            .expect("redeploy completes even under the bug");
        writer.join().unwrap();
        rt.shutdown();
        check_history(&history.events(), rule)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
    for round in 0..2 {
        match attempt(false) {
            Ok(()) => {}
            Err(e) => panic!("control round {round} must stay clean, got: {e}"),
        }
    }
    let caught = (0..5).any(|_| match attempt(true) {
        Err(e) => {
            assert!(
                e.contains("torn upgrade"),
                "the violation must be attributed to the torn upgrade, got: {e}"
            );
            true
        }
        Ok(()) => false,
    });
    assert!(
        caught,
        "five attempts with the torn-upgrade lever never produced a checker \
         violation — the seeded bug is not observable"
    );
}

/// Drives one upgraded run of an arbitrary caller/callee program pair and
/// returns every response plus the committed upgrade count.
fn arb_upgrade_responses(
    v1: &Program,
    v2: &Program,
    backend: ExecBackend,
) -> (Vec<Result<Value, String>>, usize) {
    let caller = EntityRef::new("ArbCaller", "a1");
    let callee = EntityRef::new("ArbCallee", "b1");
    let mut cfg = StateflowConfig::fast_test(2);
    cfg.backend = backend;
    cfg.net.time_scale = 0.0;
    let history = History::new();
    cfg.history = Some(history.clone());
    let rule = cfg.commit_rule;
    let graph = stateful_entities::compile(v1).unwrap();
    let rt = StateflowRuntime::deploy(graph, cfg);
    rt.create("ArbCaller", "a1", vec![]).unwrap();
    rt.create("ArbCallee", "b1", vec![]).unwrap();
    let mut out = Vec::new();
    let mut drive = |rt: &StateflowRuntime, n: i64| {
        for args in [
            vec![Value::Int(n), Value::Ref(callee)],
            vec![Value::Int(n + 1), Value::Ref(callee)],
        ] {
            out.push(rt.call(caller, "go", args).map_err(|e| e.to_string()));
        }
        out.push(
            rt.call(callee, "poke", vec![Value::Int(n)])
                .map_err(|e| e.to_string()),
        );
    };
    drive(&rt, 3);
    rt.redeploy(v2).expect("generated v2 must redeploy");
    drive(&rt, 7);
    rt.shutdown();
    let summary = check_history(&history.events(), rule).expect("serializable");
    (out, summary.upgrades)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, max_shrink_iters: 0 })]

    /// Interp-vs-VM lockstep across the switchover: for arbitrary (v1, v2)
    /// program pairs — v2 changes `poke`, keeps `bump`/`go` byte-identical
    /// (incremental-recompile reuse) and adds a `__migrate__` body — the
    /// full response stream of an upgraded run must be identical under both
    /// execution backends, and both must commit exactly one upgrade.
    #[test]
    fn upgrade_lockstep_interp_vs_vm((v1, v2, _, _) in arb::arb_upgrade_pair()) {
        let (interp, upgrades_i) = arb_upgrade_responses(&v1, &v2, ExecBackend::Interp);
        let (vm, upgrades_v) = arb_upgrade_responses(&v1, &v2, ExecBackend::Vm);
        prop_assert_eq!(interp, vm, "backends diverged across the upgrade");
        prop_assert_eq!(upgrades_i, 1);
        prop_assert_eq!(upgrades_v, 1);
    }
}

/// StateFun half of the tentpole: the same counter upgrade on the
/// remote-function engine. Each partition applies the switch at its aligned
/// drain boundary, migrates its slice of the store, and stamps later roots
/// with v2 — same deterministic arithmetic as the StateFlow run, plus the
/// per-task `SfUpgrade` events passing the statefun checker.
#[test]
fn statefun_redeploy_routes_and_migrates_exactly_once() {
    use se_chaos::check_statefun_history;
    use stateful_entities::{StatefunConfig, StatefunRuntime};
    for backend in [ExecBackend::Interp, ExecBackend::Vm] {
        let mut cfg = StatefunConfig::fast_test(3);
        cfg.backend = backend;
        let history = History::new();
        cfg.history = Some(history.clone());
        let partitions = cfg.partitions;
        let graph = stateful_entities::compile(&se_lang::programs::counter_program()).unwrap();
        let rt = StatefunRuntime::deploy(graph, cfg);
        assert_eq!(rt.active_version(), 1);
        let (counters, per) = (3usize, 8usize);
        for i in 0..counters {
            rt.create("Counter", &se_workloads::key_name(i), vec![])
                .unwrap();
        }
        let phase = |rt: &StatefunRuntime| {
            let waiters: Vec<_> = (0..counters * per)
                .map(|i| rt.call_async(counter(i % counters), "incr", vec![Value::Int(1)]))
                .collect();
            for w in waiters {
                w.wait_timeout(WAIT).expect("completes").expect("no error");
            }
        };
        phase(&rt);
        let v2 = rt
            .redeploy(&se_lang::programs::counter_v2_program())
            .expect("v2 redeploys on statefun");
        assert_eq!(v2, 2);
        assert_eq!(rt.active_version(), 2);
        phase(&rt);
        for i in 0..counters {
            assert_eq!(
                rt.call(counter(i), "get", vec![]).unwrap(),
                Value::Int(3 * per as i64),
                "[{backend:?}] counter {i}: k v1 incrs + k doubled v2 incrs"
            );
            assert_eq!(
                rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                Value::Int(10 * per as i64),
                "[{backend:?}] counter {i}: migration must run exactly once"
            );
        }
        rt.shutdown();
        let events = history.events();
        check_statefun_history(&events).expect("upgraded statefun run passes the checker");
        let upgrades = events
            .iter()
            .filter(|e| matches!(e, se_chaos::HistoryEvent::SfUpgrade { .. }))
            .count();
        assert_eq!(
            upgrades, partitions,
            "[{backend:?}] every partition records exactly one switch"
        );
    }
}

/// Crash-mid-upgrade on StateFun: a scripted task crash with transactional
/// checkpoints on. Recovery restores the latest aligned snapshot and
/// replays the ingress log — re-delivering the `Upgrade` marker when the
/// snapshot predates it — so the switch still lands exactly once per
/// incarnation and the arithmetic still holds.
#[test]
fn statefun_crash_near_upgrade_recovers_and_commits() {
    use se_chaos::check_statefun_history;
    use stateful_entities::{CheckpointMode, StatefunConfig, StatefunRuntime};
    for after_events in [4u64, 10] {
        let mut cfg = StatefunConfig::fast_test(3);
        cfg.checkpoint = CheckpointMode::Transactional {
            interval: Duration::from_millis(10),
        };
        cfg.chaos = ChaosPlan::single_crash("task1", after_events);
        let chaos = cfg.chaos.clone();
        let history = History::new();
        cfg.history = Some(history.clone());
        let graph = stateful_entities::compile(&se_lang::programs::counter_program()).unwrap();
        let rt = StatefunRuntime::deploy(graph, cfg);
        let (counters, per) = (3usize, 8usize);
        for i in 0..counters {
            rt.create("Counter", &se_workloads::key_name(i), vec![])
                .unwrap();
        }
        let phase = |rt: &StatefunRuntime| {
            let waiters: Vec<_> = (0..counters * per)
                .map(|i| rt.call_async(counter(i % counters), "incr", vec![Value::Int(1)]))
                .collect();
            for w in waiters {
                w.wait_timeout(WAIT).expect("completes").expect("no error");
            }
        };
        phase(&rt);
        let v2 = rt
            .redeploy(&se_lang::programs::counter_v2_program())
            .expect("upgrade survives the crash");
        assert_eq!(v2, 2);
        phase(&rt);
        assert_eq!(
            chaos.crashes_fired(),
            1,
            "[after {after_events}] the scripted crash must fire"
        );
        assert!(
            rt.recoveries() >= 1,
            "[after {after_events}] the crash must trigger a restore"
        );
        for i in 0..counters {
            assert_eq!(
                rt.call(counter(i), "get", vec![]).unwrap(),
                Value::Int(3 * per as i64),
                "[after {after_events}] counter {i} diverged after recovery"
            );
            assert_eq!(
                rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                Value::Int(10 * per as i64),
                "[after {after_events}] counter {i} migration not exactly-once"
            );
        }
        rt.shutdown();
        check_statefun_history(&history.events())
            .unwrap_or_else(|e| panic!("[after {after_events}] statefun checker: {e}"));
    }
}

/// The VM backend's quickened attribute caches across the switchover: heavy
/// pre-upgrade traffic warms the inline caches for `count`, the upgrade's
/// `__migrate__` pass then rewrites every entity's state (inserting `shadow`
/// changes each state map's layout), and carried-over bytecode keeps its
/// pre-upgrade hints. No post-migration read may serve a stale cached
/// entry: repeated reads interleaved across entities — the access pattern
/// that most reshuffles a shared cache cell's hint — must return the exact
/// migrated values on both engines.
#[test]
fn vm_attr_caches_serve_no_stale_entries_after_migration() {
    let (counters, per) = (4usize, 12usize);
    // StateFlow engine.
    {
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.backend = ExecBackend::Vm;
        let rt = upgraded_counter_run(cfg, counters, per);
        for round in 0..3 {
            for i in 0..counters {
                assert_eq!(
                    rt.call(counter(i), "get", vec![]).unwrap(),
                    Value::Int(3 * per as i64),
                    "[stateflow round {round}] counter {i}: `get` served a stale \
                     cached `count` entry"
                );
                assert_eq!(
                    rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                    Value::Int(10 * per as i64),
                    "[stateflow round {round}] counter {i}: `get_shadow` served a \
                     stale cached entry"
                );
            }
        }
        rt.shutdown();
    }
    // StateFun engine.
    {
        use stateful_entities::{StatefunConfig, StatefunRuntime};
        let mut cfg = StatefunConfig::fast_test(3);
        cfg.backend = ExecBackend::Vm;
        let graph = stateful_entities::compile(&se_lang::programs::counter_program()).unwrap();
        let rt = StatefunRuntime::deploy(graph, cfg);
        for i in 0..counters {
            rt.create("Counter", &se_workloads::key_name(i), vec![])
                .unwrap();
        }
        let phase = |rt: &StatefunRuntime| {
            let waiters: Vec<_> = (0..counters * per)
                .map(|i| rt.call_async(counter(i % counters), "incr", vec![Value::Int(1)]))
                .collect();
            for w in waiters {
                w.wait_timeout(WAIT).expect("completes").expect("no error");
            }
        };
        phase(&rt);
        rt.redeploy(&se_lang::programs::counter_v2_program())
            .expect("v2 redeploys on statefun");
        phase(&rt);
        for round in 0..3 {
            for i in 0..counters {
                assert_eq!(
                    rt.call(counter(i), "get", vec![]).unwrap(),
                    Value::Int(3 * per as i64),
                    "[statefun round {round}] counter {i}: `get` served a stale \
                     cached `count` entry"
                );
                assert_eq!(
                    rt.call(counter(i), "get_shadow", vec![]).unwrap(),
                    Value::Int(10 * per as i64),
                    "[statefun round {round}] counter {i}: `get_shadow` served a \
                     stale cached entry"
                );
            }
        }
        rt.shutdown();
    }
}

/// Incremental redeploy cost model: compiling v2 against a live v1 graph
/// recompiles only the changed/new methods and reuses the rest verbatim
/// (the paper's "deploy costs O(changed methods)" claim in miniature).
#[test]
fn incremental_recompile_reuses_unchanged_methods() {
    let v1 = se_compiler::compile(&se_lang::programs::counter_program()).unwrap();
    let (v2, stats) = se_compiler::compile_upgrade(
        &v1,
        &se_lang::programs::counter_v2_program(),
        &se_compiler::CompileOptions::default(),
    )
    .unwrap();
    assert_eq!(v2.version, v1.version + 1);
    assert!(
        stats.methods_reused >= 1,
        "`get` is byte-identical in v2 and must be reused, got {stats:?}"
    );
    assert!(
        stats.methods_recompiled >= 2,
        "`incr` changed and `get_shadow`/`__migrate__` are new, got {stats:?}"
    );
    assert_eq!(
        stats.methods_total,
        stats.methods_reused + stats.methods_recompiled
    );
}
