//! Banking under fire: concurrent skewed transfers (YCSB+T) on StateFlow,
//! with a mid-run worker crash — demonstrating serializable transactions
//! *and* exactly-once recovery, the two properties the paper argues must
//! come from the execution engine rather than application code.
//!
//! ```sh
//! cargo run --release --example banking
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use se_dataflow::ChaosPlan;
use se_workloads::{KeyChooser, Zipfian};
use stateful_entities::prelude::*;
use stateful_entities::StateflowConfig;

fn main() {
    let n_accounts = 50usize;
    let initial = 1_000i64;
    let transfers = 600usize;

    let program = se_workloads::ycsb_program();
    let cfg = StateflowConfig {
        snapshot_every_batches: 4,
        // Crash worker 2 after it has executed 150 invocation steps.
        chaos: ChaosPlan::single_crash("worker2", 150),
        ..StateflowConfig::default()
    };
    let failure = cfg.chaos.clone();

    let graph = stateful_entities::compile(&program).expect("compiles");
    let rt = stateful_entities::StateflowRuntime::deploy(graph, cfg);

    println!("creating {n_accounts} accounts with {initial} each…");
    se_workloads::load_accounts(&rt, n_accounts, 64, initial);

    println!("issuing {transfers} zipfian-skewed concurrent transfers…");
    let mut rng = StdRng::seed_from_u64(42);
    let mut zipf = Zipfian::new(n_accounts);
    let waiters: Vec<_> = (0..transfers)
        .map(|_| {
            let from = zipf.next_key(&mut rng);
            let mut to = zipf.next_key(&mut rng);
            if to == from {
                to = (to + 1) % n_accounts;
            }
            rt.call_async(
                EntityRef::new("Account", se_workloads::key_name(from)),
                "transfer",
                vec![
                    Value::Ref(EntityRef::new("Account", se_workloads::key_name(to))),
                    Value::Int(5),
                ],
            )
        })
        .collect();

    let mut succeeded = 0;
    let mut rejected = 0;
    for w in waiters {
        match w
            .wait()
            .expect("transfer completes (even across the crash)")
        {
            Value::Bool(true) => succeeded += 1,
            _ => rejected += 1,
        }
    }

    let total: i64 = (0..n_accounts)
        .map(|i| {
            rt.call(
                EntityRef::new("Account", se_workloads::key_name(i)),
                "balance",
                vec![],
            )
            .expect("balance")
            .as_int()
            .expect("int")
        })
        .sum();

    let stats = rt.stats();
    println!("\nresults:");
    println!("  transfers succeeded: {succeeded}, rejected (insufficient funds): {rejected}");
    println!(
        "  batches: {}, commits: {}, aborts (retried): {}, snapshots: {}, recoveries: {}",
        stats.batches.get(),
        stats.commits.get(),
        stats.aborts.get(),
        stats.snapshots.get(),
        stats.recoveries.get(),
    );
    println!("  worker crash fired: {}", failure.crashes_fired() > 0);
    println!(
        "  total money: {total} (expected {})",
        initial * n_accounts as i64
    );
    assert_eq!(
        total,
        initial * n_accounts as i64,
        "conservation must hold exactly"
    );
    println!("\nmoney conserved across contention, aborts, a crash and replay — exactly-once.");
    rt.shutdown();
}
