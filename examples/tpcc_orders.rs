//! Order processing: the "partly TPC-C" workload the paper mentions (§3) —
//! Payment and simplified NewOrder transactions over Warehouse, District,
//! Customer and Stock entities, running on StateFlow.
//!
//! NewOrder iterates a *list of stock entities* with a remote call inside
//! the loop body — the hardest case for the paper's function-splitting
//! rules (control flow + remote calls, §2.4), executing here as a
//! multi-hop, multi-partition ACID transaction.
//!
//! ```sh
//! cargo run --release --example tpcc_orders
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use se_workloads::tpcc::{self, keys, TpccScale};
use stateful_entities::prelude::*;
use stateful_entities::StateflowConfig;

fn main() {
    let scale = TpccScale {
        warehouses: 2,
        districts_per_warehouse: 4,
        customers_per_district: 10,
        stock_per_warehouse: 40,
    };
    let program = tpcc::tpcc_program();
    let graph = stateful_entities::compile(&program).expect("compiles");

    // Show what the compiler did with the loop-over-stocks transaction.
    let new_order = graph
        .program
        .method_or_err("Customer", "new_order")
        .unwrap();
    println!(
        "Customer.new_order compiled to {} blocks with {} suspension points;",
        new_order.blocks.len(),
        new_order.suspension_points()
    );
    println!("its execution state machine:\n");
    println!(
        "{}",
        graph
            .program
            .class("Customer")
            .unwrap()
            .machine("new_order")
            .unwrap()
            .to_dot()
    );

    let rt = stateful_entities::StateflowRuntime::deploy(graph, StateflowConfig::default());
    println!("loading {} warehouses…", scale.warehouses);
    tpcc::load(&rt, scale);

    let mut rng = StdRng::seed_from_u64(7);
    let mut payments = 0u32;
    let mut orders = 0u32;
    let mut order_ids = Vec::new();
    let waiters: Vec<_> = (0..200)
        .map(|_| {
            let w = rng.gen_range(0..scale.warehouses);
            let d = rng.gen_range(0..scale.districts_per_warehouse);
            let c = rng.gen_range(0..scale.customers_per_district);
            let cust = EntityRef::new("Customer", keys::customer(w, d, c));
            if rng.gen_bool(0.5) {
                payments += 1;
                rt.call_async(
                    cust,
                    "payment",
                    vec![
                        Value::Ref(EntityRef::new("Warehouse", keys::warehouse(w))),
                        Value::Ref(EntityRef::new("District", keys::district(w, d))),
                        Value::Int(rng.gen_range(1..100)),
                    ],
                )
            } else {
                orders += 1;
                // 10% of orders hit a *remote* warehouse's stock (TPC-C's
                // cross-warehouse rule) — a cross-partition transaction.
                let stock_w = if rng.gen_bool(0.1) {
                    (w + 1) % scale.warehouses
                } else {
                    w
                };
                let stocks: Vec<Value> = (0..rng.gen_range(1..=5))
                    .map(|_| {
                        Value::Ref(EntityRef::new(
                            "Stock",
                            keys::stock(stock_w, rng.gen_range(0..scale.stock_per_warehouse)),
                        ))
                    })
                    .collect();
                rt.call_async(
                    cust,
                    "new_order",
                    vec![
                        Value::Ref(EntityRef::new("District", keys::district(w, d))),
                        Value::List(stocks),
                        Value::Int(rng.gen_range(1..5)),
                    ],
                )
            }
        })
        .collect();

    for w in waiters {
        let v = w.wait().expect("transaction completes");
        if let Value::Int(oid) = v {
            if oid >= 3000 {
                order_ids.push(oid);
            }
        }
    }

    println!("executed {payments} Payment and {orders} NewOrder transactions");

    // Audit: district order-id sequencing must have no gaps or duplicates
    // per district — only serializable execution guarantees that.
    let mut total_next: i64 = 0;
    for w in 0..scale.warehouses {
        for d in 0..scale.districts_per_warehouse {
            let next = rt
                .call(
                    EntityRef::new("District", keys::district(w, d)),
                    "next_order_id",
                    vec![],
                )
                .expect("district read")
                .as_int()
                .unwrap();
            total_next += next - 3001; // minus the audit increment itself
        }
    }
    assert_eq!(
        total_next, orders as i64,
        "order ids issued must equal NewOrder transactions exactly"
    );
    println!("✓ district order-id audit passed: {total_next} ids for {orders} orders");
    rt.shutdown();
}
