//! Quickstart: the paper's Figure 1 — a `User` buying an `Item` — authored
//! in the entity DSL, compiled to a stateful dataflow, and executed on all
//! three runtimes without changing a line of application code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stateful_entities::prelude::*;
use stateful_entities::{StateflowConfig, StatefunConfig};

fn main() {
    // 1. Author the program (see se_lang::programs::figure1_program for the
    //    full builder code; it mirrors the paper's Python classes).
    let program = stateful_entities::programs::figure1_program();

    // 2. Compile: static analysis → normalization → call graph → function
    //    splitting → state machines → dataflow graph.
    let graph = stateful_entities::compile(&program).expect("type-checks and compiles");
    let stats = stateful_entities::stats(&graph);
    println!(
        "compiled {} classes, {} methods, {} blocks, {} suspension points",
        stats.classes, stats.methods, stats.blocks, stats.suspension_points
    );

    let buy = graph.program.method_or_err("User", "buy_item").unwrap();
    println!(
        "buy_item was split into {} blocks at its {} remote calls (price, update_stock ×2)\n",
        buy.blocks.len(),
        buy.suspension_points()
    );

    // 3. Run the same scenario on every engine.
    for choice in [
        RuntimeChoice::Local,
        RuntimeChoice::Statefun(StatefunConfig::default()),
        RuntimeChoice::Stateflow(StateflowConfig::default()),
    ] {
        let rt = deploy(&program, choice).expect("deploys");
        println!("=== engine: {} ===", rt.name());

        let alice = rt
            .create("User", "alice", vec![("balance".into(), Value::Int(100))])
            .expect("create user");
        let laptop = rt
            .create(
                "Item",
                "laptop",
                vec![
                    ("price".into(), Value::Int(30)),
                    ("stock".into(), Value::Int(5)),
                ],
            )
            .expect("create item");

        // buy_item(2, laptop): 2 × 30 = 60 ≤ 100 → success.
        let ok = rt
            .call(alice, "buy_item", vec![Value::Int(2), Value::Ref(laptop)])
            .expect("invoke");
        let balance = rt.call(alice, "balance", vec![]).expect("balance");
        println!("  buy_item(2, laptop) → {ok}   balance → {balance}");

        // A second purchase of 2 × 30 = 60 > 40 → rejected, state unchanged.
        let ok = rt
            .call(alice, "buy_item", vec![Value::Int(2), Value::Ref(laptop)])
            .expect("invoke");
        let balance = rt.call(alice, "balance", vec![]).expect("balance");
        println!("  buy_item(2, laptop) → {ok}  balance → {balance}");

        rt.shutdown();
    }

    println!("\nsame program, same results, three engines — the paper's portability claim.");
}
