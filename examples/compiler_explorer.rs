//! Compiler explorer: prints what each stage of the pipeline (§2) does to
//! the Figure-1 program — the normalized statements, the split-function
//! blocks with their live-in parameters, the execution state machine as
//! Graphviz, and the logical dataflow graph (the paper's Figure 2).
//!
//! ```sh
//! cargo run --release --example compiler_explorer
//! # pipe the dot output into graphviz to render the figures:
//! cargo run --release --example compiler_explorer | awk '/^digraph/,/^}/' | dot -Tpng > graph.png
//! ```

use se_compiler::{normalize_program, CallGraph};
use se_ir::Terminator;

fn main() {
    let program = stateful_entities::programs::figure1_program();

    println!("━━━ stage 0: the source program (paper Figure 1) ━━━");
    println!("{}", se_lang::pretty::program_to_source(&program));

    println!("━━━ stage 1: static analysis (type check) ━━━");
    match se_lang::typecheck::check_program(&program) {
        Ok(()) => println!("  ok: all type hints present and consistent\n"),
        Err(errs) => {
            for e in errs {
                println!("  error: {e}");
            }
            return;
        }
    }

    println!("━━━ stage 2: remote-call normalization ━━━");
    let normalized = normalize_program(&program);
    let buy = normalized
        .class("User")
        .unwrap()
        .method("buy_item")
        .unwrap();
    println!("  buy_item body after hoisting calls to statement level:");
    print!("{}", se_lang::pretty::method_to_source(buy, 1));

    println!("\n━━━ stage 3: call graph ━━━");
    let cg = CallGraph::build(&normalized).expect("resolves");
    for (caller, callees) in &cg.edges {
        for callee in callees {
            println!("  {}.{} → {}.{}", caller.0, caller.1, callee.0, callee.1);
        }
    }
    println!(
        "  recursion check: {:?}",
        cg.check_no_recursion().map(|_| "acyclic")
    );
    println!("  max call depth: {}", cg.max_depth());

    println!("\n━━━ stage 4: function splitting ━━━");
    let graph = stateful_entities::compile(&program).expect("compiles");
    let compiled = graph.program.method_or_err("User", "buy_item").unwrap();
    for block in &compiled.blocks {
        println!("  block {} (params = {:?}):", block.id, block.params);
        for stmt in &block.stmts {
            println!("      {stmt:?}");
        }
        match &block.terminator {
            Terminator::Return(e) => println!("      ⇒ return {e:?}"),
            Terminator::Jump(b) => println!("      ⇒ jump {b}"),
            Terminator::Branch { cond, then_blk, else_blk } => {
                println!("      ⇒ if {cond:?} then {then_blk} else {else_blk}")
            }
            Terminator::RemoteCall { target, method, args, result_var, resume } => println!(
                "      ⇒ SUSPEND: call {target:?}.{method}({args:?}) → {result_var:?}, resume at {resume}"
            ),
        }
    }

    println!("\n━━━ stage 4b: bytecode lowering (the se-vm execution backend) ━━━");
    let vm = se_vm::VmProgram::compile(&graph.program);
    let user_vm = vm
        .classes()
        .iter()
        .find(|c| c.class == "User")
        .expect("User class compiled");
    let buy_vm = user_vm
        .methods
        .iter()
        .find(|m| m.name == "buy_item")
        .expect("buy_item lowered");
    print!("{}", se_vm::disasm_method(user_vm, buy_vm));
    println!(
        "  ({} methods lowered, {} instructions total; engines select this backend via the `backend` config knob or SE_EXEC_BACKEND=vm)",
        vm.compiled_methods(),
        vm.total_ops()
    );

    println!("\n━━━ stage 5: execution state machine (paper §2.5) ━━━");
    let machine = graph
        .program
        .class("User")
        .unwrap()
        .machine("buy_item")
        .unwrap();
    println!("{}", machine.to_dot());

    println!("━━━ stage 6: logical dataflow graph (paper Figure 2) ━━━");
    println!("{}", graph.to_dot());

    let stats = stateful_entities::stats(&graph);
    println!("━━━ summary ━━━");
    println!(
        "  {} operators, {} methods, {} blocks total, {} suspension points, {} simple methods",
        stats.classes, stats.methods, stats.blocks, stats.suspension_points, stats.simple_methods
    );
}
