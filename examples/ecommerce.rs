//! E-commerce flash sale: many users racing to buy limited stock.
//!
//! Runs the same contention scenario on StateFun (no transactions — the
//! write-skew the paper warns about in §3 can oversell and overspend) and on
//! StateFlow (serializable — invariants hold), making the paper's central
//! argument concrete: "unless an execution engine can offer exactly-once
//! processing guarantees … we will never remove the burden of distributed
//! systems aspects from programmers."
//!
//! ```sh
//! cargo run --release --example ecommerce
//! ```

use stateful_entities::prelude::*;
use stateful_entities::{StateflowConfig, StatefunConfig};

struct Outcome {
    successes: i64,
    stock_went_negative: bool,
    negative_balances: usize,
}

fn flash_sale(rt: &dyn EntityRuntime, users: usize, stock: i64) -> Outcome {
    let item = rt
        .create(
            "Item",
            "gpu",
            vec![
                ("price".into(), Value::Int(30)),
                ("stock".into(), Value::Int(stock)),
            ],
        )
        .expect("create item");
    // Every user has exactly enough money for ONE purchase of 2 units.
    let user_refs: Vec<EntityRef> = (0..users)
        .map(|i| {
            rt.create(
                "User",
                &format!("u{i}"),
                vec![("balance".into(), Value::Int(60))],
            )
            .expect("create user")
        })
        .collect();

    // Everyone clicks "buy 2" twice, concurrently.
    let waiters: Vec<_> = user_refs
        .iter()
        .flat_map(|u| {
            (0..2).map(|_| rt.call_async(*u, "buy_item", vec![Value::Int(2), Value::Ref(item)]))
        })
        .collect();
    let successes = waiters
        .into_iter()
        .map(|w| w.wait().expect("completes"))
        .filter(|v| *v == Value::Bool(true))
        .count() as i64;

    // `update_stock(0)` leaves stock unchanged and returns `stock >= 0` —
    // a direct probe for overselling.
    let stock_non_negative = rt
        .call(item, "update_stock", vec![Value::Int(0)])
        .expect("probe stock")
        .as_bool()
        .expect("bool");

    let mut negative_balances = 0;
    for u in &user_refs {
        let b = rt
            .call(*u, "balance", vec![])
            .expect("balance")
            .as_int()
            .unwrap();
        if b < 0 {
            negative_balances += 1;
        }
    }
    Outcome {
        successes,
        stock_went_negative: !stock_non_negative,
        negative_balances,
    }
}

fn main() {
    let program = stateful_entities::programs::figure1_program();
    let users = 30;
    let stock = 1_000; // ample stock: the contended invariant is each user's balance

    for (label, rt) in [
        (
            "statefun (no transactions)",
            deploy(&program, RuntimeChoice::Statefun(StatefunConfig::default())).unwrap(),
        ),
        (
            "stateflow (serializable)",
            deploy(
                &program,
                RuntimeChoice::Stateflow(StateflowConfig::default()),
            )
            .unwrap(),
        ),
    ] {
        println!("=== {label} ===");
        let o = flash_sale(rt.as_ref(), users, stock);
        // Every user affords exactly one 2-unit purchase: more than `users`
        // successes means somebody double-spent.
        let max_possible = users as i64;
        println!(
            "  successful purchases : {} (budgets only cover {max_possible})",
            o.successes
        );
        println!("  stock went negative  : {}", o.stock_went_negative);
        println!("  users with negative balance: {}", o.negative_balances);
        if o.stock_went_negative || o.negative_balances > 0 || o.successes > max_possible {
            println!("  ⚠ anomaly: interleaved split-function chains broke invariants");
            println!("    (the race the paper acknowledges for engines without transactions)");
        } else {
            println!("  ✓ invariants hold: stock ≥ 0 and no negative balances");
        }
        rt.shutdown();
        println!();
    }
}
