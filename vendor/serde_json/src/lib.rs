//! Offline API-compatible subset of `serde_json`.
//!
//! Serialization only — [`Value`], [`json!`], [`to_value`],
//! [`to_string`]/[`to_string_pretty`] — rendering the shim `serde::Json`
//! tree. Parsing belongs here the day a workspace consumer needs it.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Json as Value;
use serde::Serialize;

/// Serialization error. The shim's rendering is infallible, so this type
/// exists purely so call sites can keep the real crate's `Result` shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a JSON [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Renders compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_compact())
}

/// Renders human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_pretty())
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports the subset the workspace writes: object literals with string-
/// literal keys, array literals, `null`, and arbitrary serializable
/// expressions in value position (including nested `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_macro() {
        let v = json!({
            "name": "fig3",
            "depth": 2usize,
            "mean_ms": 1.5f64,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"name\":\"fig3\",\"depth\":2,\"mean_ms\":1.5}"
        );
    }

    #[test]
    fn json_nested_and_array() {
        let inner = json!({ "a": 1u8 });
        let v = json!({ "rows": inner, "tags": json!(["x", "y"]) });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"rows\":{\"a\":1},\"tags\":[\"x\",\"y\"]}"
        );
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let rows = vec![json!({ "k": 1u8 })];
        assert_eq!(
            to_string_pretty(&rows).unwrap(),
            "[\n  {\n    \"k\": 1\n  }\n]"
        );
    }
}
