//! Offline API-compatible subset of `serde_json`.
//!
//! Serialization — [`Value`], [`json!`], [`to_value`],
//! [`to_string`]/[`to_string_pretty`] — rendering the shim `serde::Json`
//! tree, plus [`from_str`] parsing back into a [`Value`] (grown for the
//! `perf_gate` bench-diff tool).

#![warn(missing_docs)]

use std::fmt;

pub use serde::Json as Value;
use serde::Serialize;

/// Serialization error. The shim's rendering is infallible, so this type
/// exists purely so call sites can keep the real crate's `Result` shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a JSON [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Renders compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_compact())
}

/// Renders human-readable JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_pretty())
}

/// Parses JSON text into a [`Value`] tree.
///
/// Accepts the grammar this workspace emits (and standard JSON generally):
/// objects, arrays, strings with escapes, numbers, booleans, `null`.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the shim;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports the subset the workspace writes: object literals with string-
/// literal keys, array literals, `null`, and arbitrary serializable
/// expressions in value position (including nested `json!`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_macro() {
        let v = json!({
            "name": "fig3",
            "depth": 2usize,
            "mean_ms": 1.5f64,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"name\":\"fig3\",\"depth\":2,\"mean_ms\":1.5}"
        );
    }

    #[test]
    fn json_nested_and_array() {
        let inner = json!({ "a": 1u8 });
        let v = json!({ "rows": inner, "tags": json!(["x", "y"]) });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"rows\":{\"a\":1},\"tags\":[\"x\",\"y\"]}"
        );
    }

    #[test]
    fn parses_round_trip() {
        let v = json!({
            "bench": "pipeline_sweep",
            "tput_rps": 1234.5f64,
            "count": 300usize,
            "params": json!({ "depth": 2u32, "dist": "zipfian" }),
            "tags": json!([1u8, 2u8]),
            "none": Value::Null,
            "ok": true,
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        // Tree equality is too strict (unsigned ints round-trip as `Int`);
        // re-rendering must reproduce the text exactly.
        assert_eq!(to_string(&back).unwrap(), text);
        assert_eq!(back.get("tput_rps").and_then(Value::as_f64), Some(1234.5));
        assert_eq!(back.get("count").and_then(Value::as_i64), Some(300));
        assert_eq!(
            back.get("params")
                .and_then(|p| p.get("dist"))
                .and_then(Value::as_str),
            Some("zipfian")
        );
    }

    #[test]
    fn parses_escapes_whitespace_and_negatives() {
        let v = from_str(" { \"a\\n\\\"b\" : [ -3 , 2.5e2 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n\"b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_i64(), Some(-3));
        assert_eq!(arr[1].as_f64(), Some(250.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let rows = vec![json!({ "k": 1u8 })];
        assert_eq!(
            to_string_pretty(&rows).unwrap(),
            "[\n  {\n    \"k\": 1\n  }\n]"
        );
    }
}
