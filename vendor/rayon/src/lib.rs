//! Offline API-compatible subset of `rayon`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! slice the workspace uses: [`ThreadPoolBuilder`] and [`ThreadPool::spawn`]
//! backed by a real work-stealing scheduler — a shared injector queue plus
//! per-worker deques (LIFO local pop for cache locality, FIFO steal from
//! victims, matching the real crate's discipline). Parallel iterators belong
//! here the day a workspace consumer needs them.
//!
//! Divergences from the real crate, chosen for a simulation-test codebase:
//! a panicking job is caught and counted (the pool stays alive) instead of
//! aborting the process, and dropping the pool drains already-queued jobs
//! before joining so callers never lose submitted work.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Builder for a [`ThreadPool`], mirroring the real crate's fluent API.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` (the default) means one per
    /// available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Names worker threads; the closure receives the worker index.
    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(f));
        self
    }

    /// Builds the pool, spawning its worker threads.
    pub fn build(mut self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        };
        let shared = Arc::new(Shared {
            sync: Mutex::new(Queues {
                injector: VecDeque::new(),
                locals: (0..n).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            panics: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(n);
        for index in 0..n {
            let shared = Arc::clone(&shared);
            let mut builder = std::thread::Builder::new();
            if let Some(name_fn) = self.thread_name.as_mut() {
                builder = builder.name(name_fn(index));
            }
            let handle = builder
                .spawn(move || worker_loop(index, &shared))
                .map_err(|e| ThreadPoolBuildError(format!("spawn worker {index}: {e}")))?;
            workers.push(handle);
        }
        Ok(ThreadPool {
            shared,
            workers,
            num_threads: n,
        })
    }
}

impl fmt::Debug for ThreadPoolBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolBuilder")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

/// Error building a [`ThreadPool`] (thread spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rayon shim: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

struct Queues {
    /// Jobs submitted from outside the pool, taken FIFO.
    injector: VecDeque<Job>,
    /// Per-worker deques: owner pops LIFO, thieves steal FIFO.
    locals: Vec<VecDeque<Job>>,
    shutdown: bool,
}

impl Queues {
    fn take_job(&mut self, index: usize) -> Option<Job> {
        if let Some(job) = self.locals[index].pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injector.pop_front() {
            return Some(job);
        }
        // Steal round: scan victims starting after self so thieves spread out.
        let n = self.locals.len();
        for off in 1..n {
            if let Some(job) = self.locals[(index + off) % n].pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn is_empty(&self) -> bool {
        self.injector.is_empty() && self.locals.iter().all(VecDeque::is_empty)
    }
}

struct Shared {
    sync: Mutex<Queues>,
    work_available: Condvar,
    panics: AtomicUsize,
}

std::thread_local! {
    /// Worker index when the current thread belongs to a pool, used to route
    /// jobs spawned *from* a worker onto its own deque (the work-stealing
    /// fast path) instead of the shared injector.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn worker_loop(index: usize, shared: &Shared) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        let job = {
            let mut q = shared.sync.lock().unwrap();
            loop {
                if let Some(job) = q.take_job(index) {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_available.wait(q).unwrap();
            }
        };
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Enqueues `job` for execution on some pool thread. From a pool worker
    /// the job lands on that worker's own deque; from any other thread it
    /// goes to the shared injector.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let slot = WORKER_INDEX
            .with(|w| w.get())
            .filter(|i| *i < self.num_threads);
        let mut q = self.shared.sync.lock().unwrap();
        match slot {
            Some(i) => q.locals[i].push_back(Box::new(job)),
            None => q.injector.push_back(Box::new(job)),
        }
        drop(q);
        self.shared.work_available.notify_one();
    }

    /// Number of worker threads in the pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Jobs that panicked (caught; the real crate aborts instead).
    pub fn panicked_jobs(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

impl Drop for ThreadPool {
    /// Drains already-queued jobs, then joins the workers. Divergence from
    /// the real crate (which leaks queued jobs on drop) so that submitted
    /// work — e.g. in-flight transaction segments — is never silently lost.
    fn drop(&mut self) {
        {
            let mut q = self.shared.sync.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        debug_assert!(self.shared.sync.lock().unwrap().is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .thread_name(|i| format!("test-pool{i}"))
            .build()
            .unwrap()
    }

    #[test]
    fn runs_all_jobs_across_threads() {
        let p = pool(4);
        assert_eq!(p.current_num_threads(), 4);
        let sum = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..1000u64 {
            let sum = Arc::clone(&sum);
            let tx = tx.clone();
            p.spawn(move || {
                sum.fetch_add(i, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..1000 {
            rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn jobs_spawned_from_workers_are_stolen() {
        // One worker seeds jobs onto its own deque; with 4 workers the other
        // three can only make progress by stealing.
        let p = Arc::new(pool(4));
        let (tx, rx) = mpsc::channel::<std::thread::ThreadId>();
        let p2 = Arc::clone(&p);
        p.spawn(move || {
            for _ in 0..64 {
                let tx = tx.clone();
                p2.spawn(move || {
                    // Hold the job long enough that one worker alone can't
                    // finish the batch before thieves wake up.
                    std::thread::sleep(Duration::from_millis(2));
                    tx.send(std::thread::current().id()).unwrap();
                });
            }
        });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        assert!(seen.len() > 1, "expected stealing across workers: {seen:?}");
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let done = Arc::new(AtomicU64::new(0));
        {
            let p = pool(2);
            for _ in 0..200 {
                let done = Arc::clone(&done);
                p.spawn(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // Drop joins after draining.
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let p = pool(1);
        p.spawn(|| panic!("boom"));
        let (tx, rx) = mpsc::channel();
        p.spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
        assert_eq!(p.panicked_jobs(), 1);
    }

    #[test]
    fn zero_threads_defaults_to_available_parallelism() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
    }
}
