//! Offline API-compatible subset of `proptest`.
//!
//! Covers the surface the workspace's property tests use: the [`strategy`]
//! combinators (`prop_map`, `prop_flat_map`, `prop_recursive`, `boxed`,
//! unions), regex-subset string strategies, [`collection`] and [`sample`]
//! generators, and the `proptest!` / `prop_oneof!` / `prop_assert*` macros.
//!
//! Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking** — a failing case panics with the generated inputs via
//!   the assert message instead of minimizing them first.
//! * **Deterministic seeding** — each test derives its RNG seed from its own
//!   function name, so CI runs are reproducible by construction.

#![warn(missing_docs)]

pub mod config {
    //! Run configuration (`cases` count etc.).

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::sync::Arc;

    /// The generator RNG used by the shim (deterministically seeded).
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a bounded-depth recursive strategy: `self` generates the
        /// leaves, `f` wraps an inner strategy into a branch. `_desired_size`
        /// and `_expected_branch` are accepted for source compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                // Mix the leaf strategy back in at every level so sampled
                // trees stay small and always terminate.
                cur = Union::new(vec![base.clone(), f(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn new_value_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (what `prop_oneof!`
    /// builds).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Copy,
        std::ops::Range<T>: Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_range_inclusive {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Samples one value from the type's full (or unit, for floats)
        /// domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag: f64 = rng.gen();
            let exp = rng.gen_range(-60i32..60);
            mag * 2f64.powi(exp) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
        }
    }

    impl ArbitraryValue for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps failure messages readable.
            rng.gen_range(0x20u32..0x7f) as u8 as char
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_map`).

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps whose size falls in `size` (collisions permitting).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut map = BTreeMap::new();
            // Bounded attempts: key collisions may leave the map smaller
            // than `target`, which proptest proper also permits.
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.new_value(rng), self.value.new_value(rng));
            }
            map
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding uniformly chosen clones of `options`.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniform choice from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `&str` strategies.
    //!
    //! Supports what the workspace's patterns use: concatenations of
    //! literal characters and character classes (`[a-z0-9]`), each with an
    //! optional `{m}`, `{m,n}`, `?`, `*` or `+` quantifier.

    use super::strategy::TestRng;
    use rand::Rng;

    struct Atom {
        choices: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    /// Generates one string matching `pattern`. Panics on syntax the subset
    /// does not cover, so unsupported patterns fail loudly at test time.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                let (lo, hi) = pick_weighted(&atom.choices, rng);
                out.push(rng.gen_range(lo as u32..=hi as u32) as u8 as char);
            }
        }
        out
    }

    fn pick_weighted(choices: &[(char, char)], rng: &mut TestRng) -> (char, char) {
        let total: u32 = choices
            .iter()
            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
            .sum();
        let mut roll = rng.gen_range(0..total);
        for &(lo, hi) in choices {
            let span = hi as u32 - lo as u32 + 1;
            if roll < span {
                return (lo, hi);
            }
            roll -= span;
        }
        unreachable!("weights cover the roll")
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                        + i;
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    parse_class(body, pattern)
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("trailing \\ in pattern {pattern:?}"));
                    i += 2;
                    match c {
                        'd' => vec![('0', '9')],
                        'w' => vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                        c => vec![(c, c)],
                    }
                }
                c if "(){}*+?|.^$".contains(c) => {
                    panic!("pattern {pattern:?}: unsupported regex syntax {c:?}")
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
        assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
        let mut choices = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
                choices.push((body[i], body[i + 2]));
                i += 3;
            } else {
                // Lone trailing '-' counts as a literal, like real regex.
                choices.push((body[i], body[i]));
                i += 1;
            }
        }
        choices
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let m = body.trim().parse().expect("quantifier count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod test_runner {
    //! Seed derivation for the deterministic per-test RNG.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Builds the RNG for a named property test: deterministic per name, so
    /// failures reproduce, while distinct tests explore distinct sequences.
    pub fn rng_for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::new_value(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a property over generated inputs (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality over generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality over generated inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::rng_for_test("string_pattern_shapes");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[A-Z][a-z0-9]{1,8}", &mut rng);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_uppercase());
            let rest: Vec<char> = chars.collect();
            assert!((1..=8).contains(&rest.len()), "bad len in {s:?}");
            assert!(rest
                .iter()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload only exercised via Debug formatting
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::rng_for_test("recursive_strategy_terminates");
        for _ in 0..500 {
            assert!(depth(&strat.new_value(&mut rng)) <= 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns(a in 0usize..10, (b, c) in (0u8..4, any::<bool>())) {
            prop_assert!(a < 10);
            prop_assert!(b < 4);
            prop_assert_eq!(c, c);
        }

        #[test]
        fn oneof_and_select(v in prop_oneof![Just(1i64), 5i64..10], w in crate::sample::select(vec!["x", "y"])) {
            prop_assert!(v == 1 || (5..10).contains(&v));
            prop_assert_ne!(w, "z");
        }
    }
}
