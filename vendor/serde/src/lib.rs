//! Offline API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this shim provides the
//! slice the workspace uses: `#[derive(Serialize, Deserialize)]` plus a
//! [`Serialize`] trait rendering into the in-crate [`Json`] tree (consumed by
//! the vendored `serde_json`). [`Deserialize`] is a marker — nothing in the
//! workspace deserializes yet; when something does, grow this shim.

#![warn(missing_docs)]

// Lets derive-generated `serde::...` paths resolve inside this crate's own
// tests as well as in downstream crates.
extern crate self as serde;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document tree; `serde_json::Value` in the real ecosystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer number.
    Int(i64),
    /// Unsigned integer number (for values above `i64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (`Int`, `UInt`, or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed integer payload, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The array items, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                render_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].render(out, indent, lvl)
                })
            }
            Json::Obj(entries) => render_seq(
                out,
                indent,
                level,
                '{',
                '}',
                entries.len(),
                |out, i, lvl| {
                    let (k, v) = &entries[i];
                    render_str(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, lvl)
                },
            ),
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

/// Types renderable into a [`Json`] tree.
///
/// Matches the real trait in spirit (data-format-agnostic serialization is
/// collapsed to "produce JSON", the only format this workspace emits).
pub trait Serialize {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Marker for types that opt into deserialization via derive.
///
/// No workspace code path deserializes yet; parsing support belongs in the
/// shim the day a consumer appears.
pub trait Deserialize {}

// ---------------------------------------------------------------------------
// Serialize impls for std types used by deriving structs.
// ---------------------------------------------------------------------------

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}
macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

/// JSON object keys must be strings; keys whose JSON form is a string use it
/// directly, anything else falls back to its compact JSON rendering (real
/// serde_json errors at runtime here — the shim chooses to stay total).
fn key_string(key: &impl Serialize) -> String {
    match key.to_json() {
        Json::Str(s) => s,
        other => other.render_compact(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_json()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_json()))
                .collect(),
        )
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    /// Externally tagged, like a derived two-variant enum.
    fn to_json(&self) -> Json {
        match self {
            Ok(v) => Json::Obj(vec![("Ok".to_string(), v.to_json())]),
            Err(e) => Json::Obj(vec![("Err".to_string(), e.to_json())]),
        }
    }
}

impl Serialize for std::time::Duration {
    /// `{ "secs": …, "nanos": … }`, matching real serde's encoding.
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("secs".to_string(), Json::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Json::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(3i64.to_json().render_compact(), "3");
        assert_eq!(true.to_json().render_compact(), "true");
        assert_eq!("a\"b".to_json().render_compact(), "\"a\\\"b\"");
        assert_eq!(f64::NAN.to_json().render_compact(), "null");
    }

    #[test]
    fn renders_collections() {
        let v = vec![1u8, 2, 3];
        assert_eq!(v.to_json().render_compact(), "[1,2,3]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1i64);
        assert_eq!(m.to_json().render_compact(), "{\"k\":1}");
    }

    #[test]
    fn pretty_indents() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct P {
            x: i64,
            label: String,
        }
        let p = P {
            x: 4,
            label: "hi".into(),
        };
        assert_eq!(p.to_json().render_compact(), "{\"x\":4,\"label\":\"hi\"}");
    }

    #[test]
    fn derive_enum_variants() {
        #[derive(Debug, Serialize)]
        #[allow(dead_code)]
        enum E {
            Unit,
            Tup(i64, bool),
            Struct { a: u8 },
        }
        assert_eq!(E::Unit.to_json().render_compact(), "\"Unit\"");
        assert_eq!(
            E::Tup(1, true).to_json().render_compact(),
            "{\"Tup\":[1,true]}"
        );
        assert_eq!(
            E::Struct { a: 2 }.to_json().render_compact(),
            "{\"Struct\":{\"a\":2}}"
        );
    }

    #[test]
    fn derive_tuple_struct_and_deserialize_marker() {
        #[derive(Serialize, Deserialize)]
        struct Wrap(u64);
        fn assert_marker<T: Deserialize>() {}
        assert_marker::<Wrap>();
        // Newtype structs serialize transparently, like real serde.
        assert_eq!(Wrap(7).to_json().render_compact(), "7");
    }
}
