//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The offline build cannot pull `syn`/`quote`, so this crate parses the
//! derive input token stream directly. It supports the shapes the workspace
//! actually derives on — non-generic named-field structs, tuple structs, unit
//! structs, and enums with unit/tuple/struct variants — and intentionally
//! panics (a compile error at the derive site) on anything fancier, so new
//! uses fail loudly instead of serializing wrong.

#![warn(missing_docs)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` by rendering into the shim's `serde::Json`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!("serde::Json::Obj(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("serde::Json::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(variant_arm).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl serde::Serialize for {} {{ \
            fn to_json(&self) -> serde::Json {{ {} }} \
        }}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "#[automatically_derived] impl serde::Deserialize for {} {{}}",
        item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn variant_arm(v: &Variant) -> String {
    let name = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("Self::{name} => serde::Json::Str(\"{name}\".to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "Self::{name}(__f0) => serde::Json::Obj(vec![(\"{name}\".to_string(), \
                 serde::Serialize::to_json(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("serde::Serialize::to_json({b})"))
                .collect();
            format!(
                "Self::{name}({}) => serde::Json::Obj(vec![(\"{name}\".to_string(), \
                     serde::Json::Arr(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_json({f}))"))
                .collect();
            format!(
                "Self::{name} {{ {} }} => serde::Json::Obj(vec![(\"{name}\".to_string(), \
                     serde::Json::Obj(vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal derive-input parser.
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` unsupported; extend vendor/serde_derive");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(field_names(g)),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::TupleStruct(split_top_level(g).len()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                shape: Shape::UnitStruct,
            },
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = split_top_level(g)
                    .iter()
                    .map(|part| parse_variant(part))
                    .collect();
                Item {
                    name,
                    shape: Shape::Enum(variants),
                }
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn parse_variant(part: &[TokenTree]) -> Variant {
    let mut i = 0;
    skip_attrs_and_vis(part, &mut i);
    let name = match part.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected variant name, got {other:?}"),
    };
    i += 1;
    let shape = match part.get(i) {
        None => VariantShape::Unit,
        // Explicit discriminant (`Variant = 3`): payload-free, so unit-like.
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantShape::Tuple(split_top_level(g).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantShape::Struct(field_names(g))
        }
        other => panic!("serde shim derive: unsupported variant body {other:?}"),
    };
    Variant { name, shape }
}

fn field_names(g: &Group) -> Vec<String> {
    split_top_level(g)
        .iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(part, &mut i);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Splits a group's stream on commas that sit outside `<...>` generic
/// argument lists (angle brackets are plain puncts, not token groups).
fn split_top_level(g: &Group) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i64;
    let mut prev_dash = false;
    for t in g.stream() {
        if let TokenTree::Punct(p) = &t {
            let c = p.as_char();
            match c {
                '<' => angle_depth += 1,
                // `->` in an fn-pointer type is not a closing bracket.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut cur));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => break,
        }
    }
}
