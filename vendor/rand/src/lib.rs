//! Offline API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the narrow slice of `rand` 0.8 it actually uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! The statistical quality is more than adequate for workload generation and
//! benchmarks; this is **not** a cryptographic generator.

#![warn(missing_docs)]

/// A low-level source of random 32/64-bit words, object-safe.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias is
                // irrelevant at workload-generator scale.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(r as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                if hi == <$t>::MAX {
                    if lo == <$t>::MIN {
                        // Full domain: draw raw bits (a half-open sample
                        // could never return MAX).
                        return rng.next_u64() as $t;
                    }
                    return <$t>::sample_range(rng, lo - 1, hi) + 1;
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait SampleStandard {
    /// Samples one value from the full/unit domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// Samples a value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the shim's stand-in for
    /// `rand::rngs::StdRng`. Same-seed runs reproduce exactly.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1i64..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10u8);
        assert!(v < 10);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
