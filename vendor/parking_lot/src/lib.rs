//! Offline API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Two behavioural properties of the real crate matter to this workspace and
//! are preserved here:
//!
//! 1. **No lock poisoning** — a panicking worker thread (the runtimes inject
//!    failures on purpose) must not poison shared state for everyone else, so
//!    every acquisition recovers the guard from a poisoned `std` lock.
//! 2. **Guard-by-reference condvar waits** — `Condvar::wait*` take
//!    `&mut MutexGuard` rather than consuming the guard.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out while
    // blocking; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, recovers
    /// (rather than panicking) if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside of condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside of condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose waits take the guard by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
