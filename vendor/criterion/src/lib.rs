//! Offline API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the workspace's microbenchmarks use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated-loop timer instead of
//! the real crate's statistical machinery. Results print as
//! `group/name  time: <mean> ns/iter (n = <iters>)` lines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Warm-up time before measurement.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// The benchmark harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }
}

/// A named set of measurements.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), &mut f);
        self
    }

    /// Measures `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, f: &mut F) {
    let mut bencher = Bencher { measured: None };
    // Warm up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_TARGET {
        bencher.measured = None;
        f(&mut bencher);
        bencher
            .measured
            .expect("bench closure must call Bencher::iter");
    }
    // Measure.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < MEASURE_TARGET {
        bencher.measured = None;
        f(&mut bencher);
        let (elapsed, n) = bencher
            .measured
            .expect("bench closure must call Bencher::iter");
        total += elapsed;
        iters += n;
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("  {group}/{id}  time: {mean_ns:.1} ns/iter (n = {iters})");
}

/// Timer handle given to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Run a small probe batch to size the timed batch.
        let probe_start = Instant::now();
        std::hint::black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        // The probe call is untimed, so it must not count toward n either.
        self.measured = Some((start.elapsed(), batch));
    }
}

/// Names one parameterized measurement.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("push", |b| {
            b.iter(|| {
                let mut v = Vec::with_capacity(16);
                for i in 0..16u32 {
                    v.push(i);
                }
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
