//! Offline API-compatible subset of `crossbeam`, providing MPMC channels.
//!
//! Only the [`channel`] module is vendored — `unbounded`, `bounded`, and the
//! `Result`-returning `send`/`recv`/`try_recv`/`recv_timeout` surface the
//! runtimes use. Built on a `VecDeque` guarded by the vendored
//! poison-free `parking_lot` mutex, so a panicking producer thread cannot
//! wedge consumers.

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Signalled when an item is pushed or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when an item is popped or all receivers disconnect.
        send_ready: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is full.
        Full(T),
        /// All receivers have disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock: a receiver that just observed
            // `senders == 1` while holding the lock must see this notify
            // after it starts waiting, or it sleeps forever (lost wakeup).
            let guard = self.chan.queue.lock();
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.recv_ready.notify_all();
            }
            drop(guard);
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Same lost-wakeup protection as Sender::drop, for blocked
            // senders on a full bounded channel.
            let guard = self.chan.queue.lock();
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.send_ready.notify_all();
            }
            drop(guard);
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full. Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.chan.queue.lock();
            loop {
                if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if queue.len() >= cap => {
                        self.chan.send_ready.wait(&mut queue);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails if the channel is full or has no
        /// receivers.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.chan.queue.lock();
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.chan.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                self.chan.recv_ready.wait(&mut queue);
            }
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.chan.queue.lock();
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.chan.send_ready.notify_one();
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.chan.queue.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                if self
                    .chan
                    .recv_ready
                    .wait_until(&mut queue, deadline)
                    .timed_out()
                {
                    return match queue.pop_front() {
                        Some(v) => Ok(v),
                        None => Err(RecvTimeoutError::Timeout),
                    };
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert!(rx.recv().is_err());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_errors_after_receiver_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
