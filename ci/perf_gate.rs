//! CI perf gate: diff two bench-JSON files and fail on throughput
//! regressions.
//!
//! ```text
//! perf_gate <baseline.json> <current.json> [--tolerance 0.15] [--only SUBSTR]
//! ```
//!
//! Both files hold the workspace's uniform bench row schema (see
//! `se_bench::Row`): an array of objects with at least `bench`, `label`,
//! `system`, `tput_rps` and `p99_ms`. Rows are matched by
//! `(bench, label, system)`; for every baseline row the gate requires
//!
//! ```text
//! current.tput_rps >= baseline.tput_rps * (1 - tolerance)
//! ```
//!
//! and prints a markdown table of the comparison (p99 is reported for
//! context but not gated — latency at a fixed offered load is far noisier
//! than saturation throughput under `SE_TIME_SCALE` smoke settings).
//! A baseline row missing from the current run also fails the gate:
//! silently dropping a cell is how regressions hide.
//!
//! `--only SUBSTR` restricts the gate (and the missing-row check) to rows
//! whose `bench/label/system` key contains SUBSTR. CI gates the scaling
//! sweep on its derived `speedup` rows: a throughput *ratio* between two
//! cells of the same run cancels run-wide noise, so the tolerance can be
//! tight without flaking on loaded runners. Non-matching rows still ride
//! along in the artifact for inspection.
//!
//! Exit codes: 0 all rows within tolerance, 1 regression or missing row,
//! 2 usage/parse error. CI treats the checked-in files under
//! `bench_results/baseline/` as the contract; see BENCH.md for the update
//! procedure.

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Json;

/// The metrics the gate extracts from one row.
#[derive(Debug, Clone)]
struct Metrics {
    tput_rps: f64,
    p99_ms: f64,
}

/// Formats a throughput value: plain for real rps, two decimals for small
/// values (the derived speedup-ratio rows, where "2" vs "1" hides the story).
fn fmt_tput(v: f64) -> String {
    if v < 100.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.0}")
    }
}

fn die(msg: &str) -> ExitCode {
    eprintln!("perf_gate: {msg}");
    eprintln!("usage: perf_gate <baseline.json> <current.json> [--tolerance 0.15] [--only SUBSTR]");
    ExitCode::from(2)
}

/// Loads a bench-JSON file into `(bench/label/system) -> metrics`.
fn load(path: &str) -> Result<BTreeMap<String, Metrics>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let rows = value
        .as_array()
        .ok_or_else(|| format!("{path}: top level is not an array of rows"))?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |name: &str| -> Result<&Json, String> {
            row.get(name)
                .ok_or_else(|| format!("{path}: row {i} missing field {name:?}"))
        };
        let string = |name: &str| -> Result<String, String> {
            Ok(field(name)?
                .as_str()
                .ok_or_else(|| format!("{path}: row {i} field {name:?} is not a string"))?
                .to_string())
        };
        let number = |name: &str| -> Result<f64, String> {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("{path}: row {i} field {name:?} is not a number"))
        };
        let key = format!(
            "{}/{}/{}",
            string("bench")?,
            string("label")?,
            string("system")?
        );
        let metrics = Metrics {
            tput_rps: number("tput_rps")?,
            p99_ms: number("p99_ms")?,
        };
        if out.insert(key.clone(), metrics).is_some() {
            return Err(format!("{path}: duplicate row key {key:?}"));
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.15f64;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let Some(v) = it.next() else {
                    return die("--tolerance needs a value");
                };
                match v.parse::<f64>() {
                    Ok(t) if (0.0..1.0).contains(&t) => tolerance = t,
                    _ => return die("--tolerance must be a number in [0, 1)"),
                }
            }
            "--only" => {
                let Some(v) = it.next() else {
                    return die("--only needs a substring");
                };
                only = Some(v.to_string());
            }
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => return die(&format!("unknown flag {other:?}")),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return die("expected exactly two files");
    };
    let mut baseline = match load(baseline_path) {
        Ok(b) => b,
        Err(e) => return die(&e),
    };
    let current = match load(current_path) {
        Ok(c) => c,
        Err(e) => return die(&e),
    };
    if let Some(pat) = &only {
        baseline.retain(|k, _| k.contains(pat.as_str()));
        if baseline.is_empty() {
            return die(&format!(
                "{baseline_path}: no rows match --only {pat:?} — nothing to gate"
            ));
        }
    }
    if baseline.is_empty() {
        return die(&format!("{baseline_path}: no rows — nothing to gate"));
    }

    match &only {
        Some(pat) => println!(
            "## Perf gate: `{current_path}` vs `{baseline_path}` (tolerance {:.0}%, only {pat:?})\n",
            tolerance * 100.0
        ),
        None => println!(
            "## Perf gate: `{current_path}` vs `{baseline_path}` (tolerance {:.0}%)\n",
            tolerance * 100.0
        ),
    }
    println!("| row | base tput rps | cur tput rps | Δ tput | base p99 ms | cur p99 ms | status |");
    println!("|---|---|---|---|---|---|---|");
    let mut failures = 0usize;
    for (key, base) in &baseline {
        match current.get(key) {
            None => {
                failures += 1;
                println!(
                    "| {key} | {} | — | — | {:.2} | — | **MISSING** |",
                    fmt_tput(base.tput_rps),
                    base.p99_ms
                );
            }
            Some(cur) => {
                let delta = if base.tput_rps > 0.0 {
                    (cur.tput_rps - base.tput_rps) / base.tput_rps
                } else {
                    0.0
                };
                let ok = cur.tput_rps >= base.tput_rps * (1.0 - tolerance);
                if !ok {
                    failures += 1;
                }
                println!(
                    "| {key} | {} | {} | {:+.1}% | {:.2} | {:.2} | {} |",
                    fmt_tput(base.tput_rps),
                    fmt_tput(cur.tput_rps),
                    delta * 100.0,
                    base.p99_ms,
                    cur.p99_ms,
                    if ok { "ok" } else { "**REGRESSION**" },
                );
            }
        }
    }
    let extra: Vec<&String> = current
        .keys()
        .filter(|k| !baseline.contains_key(*k))
        .filter(|k| only.as_ref().is_none_or(|pat| k.contains(pat.as_str())))
        .collect();
    if !extra.is_empty() {
        // New cells don't fail the gate (they have no contract yet) but are
        // surfaced so baselines get extended rather than silently lag.
        println!();
        for key in extra {
            println!("new row (not in baseline, not gated): {key}");
        }
    }
    println!();
    if failures > 0 {
        println!(
            "perf gate FAILED: {failures} row(s) regressed beyond {:.0}% or went missing",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "perf gate passed: {} row(s) within tolerance",
            baseline.len()
        );
        ExitCode::SUCCESS
    }
}
