//! **CI overhead gate** — proves `SE_OBS=metrics` is (nearly) free.
//!
//! Deploys the same invoke-chain workload twice per round — once with obs
//! off, once in metrics mode — on a fast-test StateFlow cluster, and
//! compares the median end-to-end invoke latency. Rounds interleave the two
//! modes so host-load drift hits both sides equally; samples are pooled
//! across rounds before taking the median.
//!
//! The assertion is `metrics_median ≤ off_median × (1 + pct) + floor`: a
//! relative bound (default 5%, the ISSUE budget) plus an absolute floor
//! (default 750 µs) because 5% of a ~3 ms simulated-network median is
//! smaller than OS scheduling noise on a shared CI host.
//!
//! Env knobs:
//!   SE_OVERHEAD_DEPTH   chain depth                (default 4)
//!   SE_OVERHEAD_REPS    timed calls per mode/round (default 200)
//!   SE_OVERHEAD_ROUNDS  interleaved A/B rounds     (default 3)
//!   SE_OVERHEAD_PCT     relative budget            (default 0.05)
//!   SE_OVERHEAD_FLOOR_US absolute noise floor, µs  (default 750)
//!
//! Exit codes: 0 within budget, 1 over budget.

use std::process::ExitCode;
use std::time::Instant;

use se_core::{deploy, RuntimeChoice, StateflowConfig};
use se_lang::{EntityRef, Value};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Runs one deployment in `mode` and returns per-call latencies in ns.
fn run_once(
    mode: se_obs::ObsMode,
    depth: usize,
    reps: usize,
    dump_dir: &std::path::Path,
) -> Vec<f64> {
    let program = se_lang::programs::chain_program(depth);
    let mut cfg = StateflowConfig::fast_test(2);
    cfg.obs = se_obs::ObsConfig {
        mode,
        dir: dump_dir.to_path_buf(),
        label: "overhead".into(),
        ..Default::default()
    };
    let rt = deploy(&program, RuntimeChoice::Stateflow(cfg)).expect("deploy");
    for i in (0..=depth).rev() {
        let init = if i < depth {
            vec![(
                "next".to_string(),
                Value::Ref(EntityRef::new(format!("C{}", i + 1), "n")),
            )]
        } else {
            vec![]
        };
        rt.create(&format!("C{i}"), "n", init).expect("create");
    }
    let target = EntityRef::new("C0", "n");
    // Warmup: JIT nothing, but fill batches/queues to steady state.
    for _ in 0..(reps / 10).max(10) {
        rt.call(target, "relay", vec![Value::Int(1)])
            .expect("warmup call");
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        rt.call(target, "relay", vec![Value::Int(1)])
            .expect("timed call");
        samples.push(t.elapsed().as_nanos() as f64);
    }
    rt.shutdown();
    samples
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    let depth = env_usize("SE_OVERHEAD_DEPTH", 4);
    let reps = env_usize("SE_OVERHEAD_REPS", 200).max(10);
    let rounds = env_usize("SE_OVERHEAD_ROUNDS", 3).max(1);
    let pct = env_f64("SE_OVERHEAD_PCT", 0.05);
    let floor_ns = env_f64("SE_OVERHEAD_FLOOR_US", 750.0) * 1e3;

    let dump_dir = std::env::temp_dir().join(format!("se-obs-overhead-{}", std::process::id()));
    println!(
        "obs_overhead: chain depth {depth}, {reps} calls x {rounds} rounds per mode, \
         budget {:.1}% + {:.0} us floor",
        pct * 100.0,
        floor_ns / 1e3
    );

    let mut off = Vec::new();
    let mut metrics = Vec::new();
    for round in 0..rounds {
        // Interleave modes so slow-host drift cancels instead of biasing.
        off.extend(run_once(se_obs::ObsMode::Off, depth, reps, &dump_dir));
        metrics.extend(run_once(se_obs::ObsMode::Metrics, depth, reps, &dump_dir));
        eprintln!("  round {} done", round + 1);
    }
    let _ = std::fs::remove_dir_all(&dump_dir);

    let off_med = median(&mut off);
    let metrics_med = median(&mut metrics);
    let delta_pct = (metrics_med - off_med) / off_med * 100.0;
    let budget = off_med * (1.0 + pct) + floor_ns;
    println!(
        "  SE_OBS=off     median {:9.3} ms\n  SE_OBS=metrics median {:9.3} ms  ({:+.2}%)\n  budget {:9.3} ms",
        off_med / 1e6,
        metrics_med / 1e6,
        delta_pct,
        budget / 1e6
    );
    if metrics_med <= budget {
        println!("obs_overhead: OK — metrics mode within budget");
        ExitCode::SUCCESS
    } else {
        println!("obs_overhead: FAIL — metrics mode exceeds budget");
        ExitCode::FAILURE
    }
}
