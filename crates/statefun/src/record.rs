//! Records flowing through the broker topics and the remote-function
//! channels of the StateFun-style runtime.

use se_dataflow::Epoch;
use se_ir::{Invocation, RequestId, Response, StepEffect};
use se_lang::{EntityRef, EntityState, Value};

/// Topic names used by the deployment.
pub mod topics {
    /// Client requests + loopback continuations (partitioned by entity key).
    pub const INGRESS: &str = "sf-ingress";
    /// Responses back to clients (single partition).
    pub const EGRESS: &str = "sf-egress";
}

/// A record on either broker topic.
#[derive(Debug, Clone)]
pub enum SfRecord {
    /// (Ingress) Create an entity owned by this partition.
    Create {
        /// Request to acknowledge on the egress.
        request: RequestId,
        /// Class name.
        class: String,
        /// Entity key.
        key: String,
        /// Attribute overrides.
        init: Vec<(String, Value)>,
    },
    /// (Ingress) Invoke — or, via the Kafka loopback, resume — a method.
    Invoke(Invocation),
    /// (Ingress) Aligned checkpoint barrier (Transactional mode only).
    Barrier {
        /// Epoch being snapshotted.
        epoch: Epoch,
    },
    /// (Ingress) Live-upgrade marker: the partition drains its in-flight
    /// dispatches (the same aligned sync point a checkpoint barrier uses),
    /// runs the per-entity `__migrate__` pass, and stamps all later roots
    /// with `version`. Replay past a pre-upgrade snapshot re-delivers this
    /// record, so recovery re-applies the switch deterministically.
    Upgrade {
        /// The version to switch to.
        version: u64,
    },
    /// (Egress) A root request's outcome.
    Response(Response),
}

/// A request from a partition task to the remote function runtime: the
/// event plus the target entity's current state, shipped both ways — the
/// paper's observation that "all functions need to go to an external Python
/// runtime, [so] the cost of reads and writes are the same due to the
/// network costs" (§4).
#[derive(Debug, Clone)]
pub struct RemoteRequest {
    /// Fencing generation of the issuing task.
    pub gen: u64,
    /// Issuing partition (the response returns there).
    pub task: usize,
    /// Per-task dispatch sequence number, echoed in the response: the task
    /// accepts a response only if it matches the entity's *current*
    /// outstanding dispatch, so duplicated or quarantined responses (and
    /// requests, whose duplicate executions produce extra responses) cannot
    /// install stale state or break per-key serialization.
    pub seq: u64,
    /// The invocation to run.
    pub inv: Invocation,
    /// The target entity's state at dispatch time.
    pub state: EntityState,
}

/// The remote runtime's reply: mutated state plus the routing effect.
#[derive(Debug, Clone)]
pub struct RemoteResponse {
    /// Echoed fencing generation.
    pub gen: u64,
    /// Echoed dispatch sequence number (see [`RemoteRequest::seq`]).
    pub seq: u64,
    /// Entity whose state was shipped.
    pub entity: EntityRef,
    /// The (possibly mutated) state to install in managed operator state.
    pub new_state: EntityState,
    /// What to do next: loop a continuation back or answer the client.
    pub effect: StepEffect,
}
