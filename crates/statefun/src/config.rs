//! StateFun-style runtime configuration.

use std::time::Duration;

use se_chaos::{ChaosPlan, History};
use se_dataflow::NetConfig;
use se_ir::ExecBackend;

/// How the runtime checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointMode {
    /// No checkpoints: at-most/at-least-once, minimal latency. This is the
    /// low-latency configuration the paper's latency figures imply.
    None,
    /// Aligned checkpoint barriers every `interval`, with *transactional
    /// produces*: loopback and egress records are staged per epoch and
    /// flushed only after the epoch's snapshot is durable — Flink's
    /// exactly-once sink mode. Continuations therefore wait for epoch
    /// boundaries, the latency tension the paper discusses in §5
    /// ("the outputs of a dataflow only become visible after an epoch
    /// terminates successfully").
    Transactional {
        /// Barrier injection period.
        interval: Duration,
    },
}

/// Tunables of the StateFun-style deployment.
///
/// Defaults mirror the paper's setup (§4): "For Statefun, we gave half of
/// the resources to the Flink cluster and the other to the remote
/// functions" — with 6 system cores that is 3 partition tasks + 3 remote
/// function workers.
#[derive(Debug, Clone)]
pub struct StatefunConfig {
    /// Number of dataflow partition tasks (Flink task slots).
    pub partitions: usize,
    /// Number of remote function runtime workers.
    pub remote_workers: usize,
    /// Network latency model.
    pub net: NetConfig,
    /// Per-invocation service time in the remote function runtime (function
    /// dispatch + (de)serialization in the authors' Python runtime).
    pub service_time: Duration,
    /// Checkpointing mode.
    pub checkpoint: CheckpointMode,
    /// Complete snapshot epochs retained before older ones are pruned
    /// (0 = keep every epoch forever). Recovery always restores the latest
    /// complete epoch, which is always retained.
    pub snapshot_retention: usize,
    /// Fault injection: scripted task crashes, message faults on the
    /// remote-function request/response seams, and broker outage windows.
    /// Crash scripts require [`CheckpointMode::Transactional`] (nothing to
    /// recover from otherwise). The legacy `FailurePlan` converts into a
    /// one-crash plan via `Into`.
    pub chaos: ChaosPlan,
    /// Optional execution-history recording (per-key dispatch/install
    /// events for the per-key serialization check). `None` (the default)
    /// records nothing and costs one branch per step.
    pub history: Option<History>,
    /// Which execution backend runs split method bodies: tree-walking
    /// interpretation, or bytecode compiled once at deploy time and run on
    /// the `se-vm` register VM. Semantically identical; the VM trades a
    /// deploy-time lowering pass for cheaper per-invocation dispatch. The
    /// `SE_EXEC_BACKEND` env var (`interp` | `vm`) overrides the default.
    pub backend: ExecBackend,
    /// Observability: `SE_OBS=off|metrics|trace` (default off), dump
    /// directory via `SE_OBS_DIR`. See `se_obs::ObsConfig`.
    pub obs: se_obs::ObsConfig,
}

impl Default for StatefunConfig {
    fn default() -> Self {
        Self {
            partitions: 3,
            remote_workers: 3,
            net: NetConfig::default(),
            service_time: Duration::from_micros(700),
            checkpoint: CheckpointMode::None,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            chaos: ChaosPlan::none(),
            history: None,
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
            obs: se_obs::ObsConfig::from_env("statefun"),
        }
    }
}

impl StatefunConfig {
    /// A configuration with tiny delays for fast unit tests.
    pub fn fast_test(partitions: usize) -> Self {
        Self {
            partitions,
            remote_workers: partitions,
            net: NetConfig::fast_test(),
            service_time: Duration::from_micros(10),
            checkpoint: CheckpointMode::None,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            chaos: ChaosPlan::none(),
            history: None,
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
            obs: se_obs::ObsConfig::from_env("statefun-test"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_split_resources_in_half() {
        let c = StatefunConfig::default();
        assert_eq!(
            c.partitions, c.remote_workers,
            "paper: half Flink, half remote functions"
        );
        assert_eq!(c.checkpoint, CheckpointMode::None);
    }
}
