//! A partition task: the Flink-side stateful operator of the StateFun-style
//! deployment.
//!
//! Each task owns one partition of the managed operator state for *every*
//! entity class, consumes its ingress partition, ships `(event, state)` to
//! the remote function runtime, installs returned state, and routes effects:
//! continuations loop back through the broker ("we use Kafka to re-insert an
//! event to the streaming dataflow, thereby avoiding cyclic dataflows", §3),
//! responses go to the egress topic.
//!
//! Statefun serializes invocations **per key** (an entity processes one
//! event at a time) but provides no cross-entity coordination: interleaved
//! split-function chains can observe each other's partial effects — the
//! race the paper explicitly acknowledges (§3). `tests` in this crate and
//! the `statefun_anomaly` integration test demonstrate it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use se_broker::Broker;
use se_chaos::{CrashPoint, HistoryEvent, Seam};
use se_dataflow::{
    send_with_chaos, ComponentTimers, DelayReceiver, DelaySender, Epoch, SnapshotStore, StateStore,
};
use se_ir::{
    process_invocation_with, Invocation, InvocationKind, RequestId, Response, StepEffect,
    VersionRegistry, INITIAL_VERSION,
};
use se_lang::{EntityRef, LangError};

use crate::config::{CheckpointMode, StatefunConfig};
use crate::record::{topics, RemoteRequest, RemoteResponse, SfRecord};

/// Shared recovery signal: the controller bumps `gen` and sets the epoch to
/// restore; tasks observe the bump and reset themselves.
#[derive(Debug, Default)]
pub struct RecoveryCtl {
    /// Current fencing generation.
    pub gen: AtomicU64,
    /// Epoch to restore (`None` = initial empty state).
    pub restore_epoch: Mutex<Option<Epoch>>,
}

/// Controller notifications.
#[derive(Debug)]
pub enum CtlMsg {
    /// A task crashed (failure injection fired).
    TaskFailed(usize),
}

/// Rendezvous between [`crate::StatefunRuntime::redeploy`] and the
/// partition tasks: each task bumps the count for a version after applying
/// its local switch; the redeploy call blocks until every partition has
/// counted in. Counts only grow — a task that crashes mid-upgrade re-applies
/// the switch on replay and counts in again, which is harmless.
#[derive(Debug, Default)]
pub struct UpgradeGate {
    applied: Mutex<HashMap<u64, usize>>,
    cv: parking_lot::Condvar,
}

impl UpgradeGate {
    /// Counts one partition in for `version`.
    pub fn notify(&self, version: u64) {
        *self.applied.lock().entry(version).or_insert(0) += 1;
        self.cv.notify_all();
    }

    /// Blocks until `tasks` partitions applied `version`; false on timeout.
    pub fn wait(&self, version: u64, tasks: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut applied = self.applied.lock();
        while applied.get(&version).copied().unwrap_or(0) < tasks {
            if self.cv.wait_until(&mut applied, deadline).timed_out() {
                return false;
            }
        }
        true
    }
}

/// One partition task (run on its own thread).
pub struct PartitionTask {
    id: usize,
    cfg: StatefunConfig,
    broker: Broker<SfRecord>,
    /// All live program versions: roots are stamped with this task's
    /// [`PartitionTask::active_version`]; in-flight and queued work resolves
    /// through the registry at whatever version its root was stamped with.
    registry: Arc<VersionRegistry>,
    /// The version this partition stamps on newly arriving roots. Bumped by
    /// [`SfRecord::Upgrade`] after the aligned drain + migration pass;
    /// rewound on restore to match the replayed prefix.
    active_version: u64,
    /// Applied upgrades as `(ingress offset after the record, version)`,
    /// ascending. Survives crashes (it mirrors what the replayed log will
    /// redo): restore keeps entries at or below the restored offset and
    /// replay re-applies the rest.
    upgrades: Vec<(u64, u64)>,
    gate: Arc<UpgradeGate>,
    store: StateStore,
    offset: u64,
    /// Outstanding dispatch per entity: the sequence number a response must
    /// echo to be accepted (duplicates and stale responses fail the match).
    inflight: HashMap<EntityRef, u64>,
    /// Monotonic dispatch counter feeding `inflight` sequence numbers.
    next_seq: u64,
    waiting: HashMap<EntityRef, VecDeque<Invocation>>,
    /// Staged produces (Transactional mode) as `(topic, key, record,
    /// bytes)`: flushed at epoch boundaries.
    staged: Vec<(&'static str, String, SfRecord, usize)>,
    pool_tx: DelaySender<RemoteRequest>,
    resp_rx: DelayReceiver<RemoteResponse>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    recovery: Arc<RecoveryCtl>,
    ctl_tx: crossbeam::channel::Sender<CtlMsg>,
    shutdown: Arc<AtomicBool>,
    obs: se_obs::Obs,
    gen: u64,
    dead: bool,
    last_epoch: Epoch,
}

impl PartitionTask {
    /// Creates a partition task.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cfg: StatefunConfig,
        broker: Broker<SfRecord>,
        registry: Arc<VersionRegistry>,
        gate: Arc<UpgradeGate>,
        pool_tx: DelaySender<RemoteRequest>,
        resp_rx: DelayReceiver<RemoteResponse>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        timers: Arc<ComponentTimers>,
        recovery: Arc<RecoveryCtl>,
        ctl_tx: crossbeam::channel::Sender<CtlMsg>,
        shutdown: Arc<AtomicBool>,
        obs: se_obs::Obs,
    ) -> Self {
        Self {
            id,
            cfg,
            broker,
            registry,
            active_version: INITIAL_VERSION,
            upgrades: Vec::new(),
            gate,
            store: StateStore::new(),
            offset: 0,
            inflight: HashMap::new(),
            next_seq: 0,
            waiting: HashMap::new(),
            staged: Vec::new(),
            pool_tx,
            resp_rx,
            snapshots,
            timers,
            recovery,
            ctl_tx,
            shutdown,
            obs,
            gen: 0,
            dead: false,
            last_epoch: 0,
        }
    }

    fn node_name(&self) -> String {
        format!("task{}", self.id)
    }

    fn transactional(&self) -> bool {
        matches!(self.cfg.checkpoint, CheckpointMode::Transactional { .. })
    }

    /// The task loop.
    pub fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Recovery signal?
            let g = self.recovery.gen.load(Ordering::SeqCst);
            if g > self.gen {
                self.restore(g);
            }
            if self.dead {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }

            // Apply due remote responses first (they unblock waiting keys).
            while let Some(resp) = self.resp_rx.try_recv() {
                if resp.gen == self.gen {
                    self.on_response(resp);
                }
            }

            let records = match self.broker.fetch(topics::INGRESS, self.id, self.offset, 32) {
                Ok(r) => r,
                Err(_) => return,
            };
            if records.is_empty() {
                // Idle: block briefly on the response channel.
                if let Some(resp) = self.resp_rx.recv_timeout(Duration::from_micros(500)) {
                    if resp.gen == self.gen {
                        self.on_response(resp);
                    }
                }
                continue;
            }
            for rec in records {
                self.offset = rec.offset + 1;
                self.handle_record(rec.value);
                if self.dead || self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }

    fn handle_record(&mut self, rec: SfRecord) {
        match rec {
            SfRecord::Create {
                request,
                class,
                key,
                init,
            } => {
                self.timers.time("routing", || {});
                let entry = self.registry.resolve(self.active_version);
                let result = match entry.graph.program.class_or_err(&class) {
                    Ok(c) => {
                        let r = EntityRef::new(&class, &key);
                        self.store.insert(r, c.class.initial_state(r.key, init));
                        Ok(se_lang::Value::Unit)
                    }
                    Err(e) => Err(e),
                };
                self.emit_egress(Response { request, result });
            }
            SfRecord::Invoke(inv) => {
                if self
                    .cfg
                    .chaos
                    .should_crash(&self.node_name(), CrashPoint::Exec)
                {
                    self.crash();
                    return;
                }
                self.timers.time("routing", || {});
                self.dispatch_or_queue(inv);
            }
            SfRecord::Barrier { epoch } => {
                // A crash while a checkpoint barrier drains — mid-epoch,
                // staged produces unflushed — is the window exactly-once
                // recovery must cover.
                if self
                    .cfg
                    .chaos
                    .should_crash(&self.node_name(), CrashPoint::Commit)
                {
                    self.crash();
                    return;
                }
                self.on_barrier(epoch);
            }
            SfRecord::Upgrade { version } => {
                // Crash-mid-upgrade window: the marker consumed but the
                // switch not yet applied (or applied in memory only, ahead
                // of the next durable barrier).
                if self
                    .cfg
                    .chaos
                    .should_crash(&self.node_name(), CrashPoint::Commit)
                {
                    self.crash();
                    return;
                }
                self.on_upgrade(version);
            }
            SfRecord::Response(_) => { /* egress records never reach ingress */ }
        }
    }

    /// Per-key serialization: one in-flight invocation per entity.
    fn dispatch_or_queue(&mut self, mut inv: Invocation) {
        // Version stamping happens at arrival, for roots only: requests
        // ordered before the `Upgrade` marker in this partition's log run
        // the old version even if per-key queueing delays their dispatch
        // past the switch; continuations keep the version their root was
        // stamped with (the pinning that lets in-flight chains drain).
        if inv.stack.is_empty() && matches!(inv.kind, InvocationKind::Start { .. }) {
            inv.version = self.active_version;
        }
        let target = inv.target;
        if self.inflight.contains_key(&target) {
            self.waiting.entry(target).or_default().push_back(inv);
        } else {
            self.dispatch(inv);
        }
    }

    fn dispatch(&mut self, inv: Invocation) {
        let target = inv.target;
        let Some(state) = self.store.get(&target) else {
            self.emit_egress(Response {
                request: inv.request,
                result: Err(LangError::runtime(format!("unknown entity {target}"))),
            });
            return;
        };
        // Serialize the state for shipping to the remote runtime. This is a
        // *materialized* copy on purpose: entity state is copy-on-write, so
        // a plain clone would be a refcount bump and the experiment's
        // state-serialization component would measure nothing.
        let shipped = self
            .timers
            .time("state_serialization", || state.deep_clone());
        let bytes = shipped.approx_size() + inv.approx_size();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.insert(target, seq);
        if let Some(h) = &self.cfg.history {
            h.record(HistoryEvent::SfDispatch {
                task: self.id,
                seq,
                entity: target,
                method: inv.method.to_string(),
            });
        }
        send_with_chaos(
            &self.cfg.chaos,
            Seam::RemoteRequest,
            &self.cfg.net,
            &self.pool_tx,
            RemoteRequest {
                gen: self.gen,
                task: self.id,
                seq,
                inv,
                state: shipped,
            },
            self.cfg.net.remote_fn_latency(bytes),
        );
    }

    fn on_response(&mut self, resp: RemoteResponse) {
        // Accept only the response to the entity's *current* outstanding
        // dispatch: a duplicated request produces two responses, and a
        // quarantined response can arrive after a newer dispatch — either
        // would install stale state or double-release the per-key queue.
        if self.inflight.get(&resp.entity) != Some(&resp.seq) {
            return;
        }
        // Install the returned state into managed operator state.
        self.timers.time("state_storage", || {
            self.store.insert(resp.entity, resp.new_state);
        });
        self.inflight.remove(&resp.entity);
        if let Some(h) = &self.cfg.history {
            h.record(HistoryEvent::SfInstall {
                task: self.id,
                seq: resp.seq,
                entity: resp.entity,
            });
        }
        match resp.effect {
            StepEffect::Emit(next) => {
                // Continuation loops back through the broker — the Kafka
                // round trip the paper attributes StateFun's latency to.
                let bytes = next.approx_size();
                let key = next.target.key;
                self.emit(topics::INGRESS, key.as_str(), SfRecord::Invoke(next), bytes);
            }
            StepEffect::Respond(r) => self.emit_egress(r),
        }
        // A queued invocation for this key may now proceed.
        if let Some(q) = self.waiting.get_mut(&resp.entity) {
            if let Some(inv) = q.pop_front() {
                if q.is_empty() {
                    self.waiting.remove(&resp.entity);
                }
                self.dispatch(inv);
            } else {
                self.waiting.remove(&resp.entity);
            }
        }
    }

    fn emit_egress(&mut self, r: Response) {
        // The egress topic has a single partition, so the key is
        // informational; format the request id into a stack buffer instead
        // of paying a heap allocation per response record.
        let mut buf = [0u8; 20];
        let key = fmt_u64(r.request.0, &mut buf);
        self.emit(topics::EGRESS, key, SfRecord::Response(r), 64);
    }

    fn emit(&mut self, topic: &'static str, key: &str, rec: SfRecord, bytes: usize) {
        if self.transactional() {
            self.staged.push((topic, key.to_owned(), rec, bytes));
        } else {
            let _ = self.broker.produce(topic, key, rec, bytes);
        }
    }

    /// Aligned barrier: drain in-flight work, snapshot, then flush staged
    /// produces — flush-after-snapshot makes replay duplicate-free.
    fn on_barrier(&mut self, epoch: Epoch) {
        if !self.transactional() || epoch <= self.last_epoch {
            return;
        }
        // Drain: every dispatched invocation must complete so its effects
        // are in the snapshot.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !self.inflight.is_empty() {
            if std::time::Instant::now() > deadline {
                break; // avoid hanging the whole pipeline on a lost response
            }
            if let Some(resp) = self.resp_rx.recv_timeout(Duration::from_millis(5)) {
                if resp.gen == self.gen {
                    self.on_response(resp);
                }
            }
        }
        self.snapshots
            .put(epoch, &self.node_name(), self.store.clone());
        self.snapshots
            .put_source_offset(epoch, &self.node_name(), self.offset);
        self.last_epoch = epoch;
        // Flush the epoch's staged outputs.
        for (topic, key, rec, bytes) in std::mem::take(&mut self.staged) {
            let _ = self.broker.produce(topic, &key, rec, bytes);
        }
    }

    /// Applies a live upgrade: aligned drain (the same sync point a
    /// checkpoint barrier uses — the switch lands with zero dispatches in
    /// flight), per-entity backfill + `__migrate__` over this partition's
    /// slice of the store, then the root-stamping version bump. The gate
    /// notification lets the blocked `redeploy` call return once every
    /// partition has switched.
    fn on_upgrade(&mut self, version: u64) {
        // Replayed or duplicated marker for a version this incarnation
        // already runs (e.g. the restored snapshot post-dates the switch):
        // nothing to do, and it must not count into the gate again.
        if version <= self.active_version {
            return;
        }
        let t0 = self.obs.now_ns();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !self.inflight.is_empty() {
            if std::time::Instant::now() > deadline {
                break; // avoid wedging the partition on a lost response
            }
            if let Some(resp) = self.resp_rx.recv_timeout(Duration::from_millis(5)) {
                if resp.gen == self.gen {
                    self.on_response(resp);
                }
            }
        }
        let entry = self.registry.resolve(version);
        let program = &entry.graph.program;
        let targets: Vec<EntityRef> = self
            .store
            .iter()
            .filter(|(r, state)| {
                program.class(r.class).is_some_and(|c| {
                    c.class.migration_method().is_some()
                        || c.class.attrs.iter().any(|a| !state.contains_key(a.name))
                })
            })
            .map(|(r, _)| *r)
            .collect();
        let mut migrated = 0u64;
        for target in targets {
            // Migration executes method bodies: scripted exec-point crashes
            // land here too, leaving the pass half applied in memory — the
            // replayed `Upgrade` record redoes it from the restored state.
            if self
                .cfg
                .chaos
                .should_crash(&self.node_name(), CrashPoint::Exec)
            {
                self.crash();
                return;
            }
            let Some(committed) = self.store.get(&target) else {
                continue;
            };
            let class = match program.class(target.class) {
                Some(c) => &c.class,
                None => continue,
            };
            // Attributes new in this version materialize with their
            // declared defaults before anything runs (see the StateFlow
            // worker's migration pass for the rationale).
            let mut after = committed.clone();
            for attr in &class.attrs {
                if !after.contains_key(attr.name) {
                    after.insert(attr.name, attr.default.clone());
                }
            }
            if class.migration_method().is_some() {
                let backfilled = after.clone();
                let inv =
                    Invocation::root(RequestId(0), target, se_lang::MIGRATION_METHOD, Vec::new())
                        .at_version(version);
                match process_invocation_with(program, &*entry.runner, inv, &mut after) {
                    StepEffect::Respond(resp) if resp.result.is_ok() => migrated += 1,
                    StepEffect::Respond(resp) => {
                        let e = resp.result.unwrap_err();
                        eprintln!(
                            "warning: task{}: __migrate__ to v{version} failed for \
                             {target}: {e}; entity keeps its backfilled shape",
                            self.id
                        );
                        after = backfilled;
                    }
                    StepEffect::Emit(_) => {
                        eprintln!(
                            "warning: task{}: __migrate__ to v{version} suspended for \
                             {target} (remote call); entity keeps its backfilled shape",
                            self.id
                        );
                        after = backfilled;
                    }
                }
            }
            self.timers.time("state_storage", || {
                self.store.insert(target, after);
            });
        }
        self.active_version = version;
        self.upgrades.push((self.offset, version));
        self.obs.counter("upgrade.migrated_entities").add(migrated);
        self.obs.stage_span(
            se_obs::Stage::UpgradeMigrate,
            version,
            t0,
            self.obs.now_ns(),
        );
        if let Some(h) = &self.cfg.history {
            h.record(HistoryEvent::SfUpgrade {
                task: self.id,
                version,
            });
        }
        self.gate.notify(version);
    }

    fn crash(&mut self) {
        self.store = StateStore::new();
        self.inflight.clear();
        self.waiting.clear();
        self.staged.clear();
        self.dead = true;
        let _ = self.ctl_tx.send(CtlMsg::TaskFailed(self.id));
    }

    fn restore(&mut self, gen: u64) {
        let epoch = *self.recovery.restore_epoch.lock();
        let name = self.node_name();
        self.store = epoch
            .and_then(|e| self.snapshots.get(e, &name))
            .unwrap_or_default();
        self.offset = epoch
            .and_then(|e| self.snapshots.source_offset(e, &name))
            .unwrap_or(0);
        self.last_epoch = epoch.unwrap_or(0);
        self.inflight.clear();
        self.waiting.clear();
        self.staged.clear();
        // Rewind upgrades past the restored offset: the replayed log will
        // re-deliver their `Upgrade` records and redo the migration from
        // the restored (pre-upgrade) state. Upgrades at or below the offset
        // are inside the snapshot and stay committed.
        self.upgrades
            .retain(|(applied_at, _)| *applied_at <= self.offset);
        self.active_version = self
            .upgrades
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(INITIAL_VERSION);
        self.gen = gen;
        self.dead = false;
        // The next incarnation begins: re-arm per-node chaos counters so a
        // multi-crash script can kill this task again.
        self.cfg.chaos.notify_restart(&self.node_name());
        if let Some(h) = &self.cfg.history {
            h.record(HistoryEvent::SfRecovery { task: self.id, gen });
        }
    }
}

/// Formats `n` in decimal into `buf`, returning the textual slice — a
/// heap-allocation-free `u64::to_string` for per-record routing keys.
fn fmt_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII")
}

#[cfg(test)]
mod tests {
    use super::fmt_u64;

    #[test]
    fn fmt_u64_matches_to_string() {
        for n in [0u64, 1, 9, 10, 42, 12345, u64::MAX] {
            let mut buf = [0u8; 20];
            assert_eq!(fmt_u64(n, &mut buf), n.to_string());
        }
    }
}
