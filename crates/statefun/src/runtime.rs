//! Deployment and client API of the StateFun-style runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use se_broker::Broker;
use se_dataflow::{
    delay_channel, ComponentTimers, EntityRuntime, ResponseCompleter, ResponseWaiter,
    SnapshotStore, StateStore,
};
use se_ir::{DataflowGraph, Invocation, InvocationKind, RequestId, VersionRegistry};
use se_lang::{EntityRef, LangError, Value};

use crate::config::{CheckpointMode, StatefunConfig};
use crate::record::{topics, SfRecord};
use crate::remote::run_remote_worker;
use crate::task::{CtlMsg, PartitionTask, RecoveryCtl, UpgradeGate};

/// The newest deployed version: the baseline the next
/// [`StatefunRuntime::redeploy`] compiles against (incremental
/// recompilation + VM bytecode reuse).
struct CurrentDeploy {
    graph: Arc<DataflowGraph>,
    vm: Option<Arc<se_vm::VmProgram>>,
}

/// A deployed StateFun-style application.
pub struct StatefunRuntime {
    cfg: StatefunConfig,
    broker: Broker<SfRecord>,
    /// All live program versions, shared with every partition task and
    /// remote worker (see [`VersionRegistry`]).
    registry: Arc<VersionRegistry>,
    /// Baseline for the next incremental redeploy; the lock serializes
    /// concurrent `redeploy` calls.
    current: Mutex<CurrentDeploy>,
    /// Partition-count rendezvous for in-flight upgrades.
    gate: Arc<UpgradeGate>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    next_request: AtomicU64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    recovery: Arc<RecoveryCtl>,
    obs: se_obs::Obs,
    obs_snapshots: Mutex<Option<se_obs::PeriodicSnapshots>>,
}

impl StatefunRuntime {
    /// Deploys a compiled dataflow graph on a fresh StateFun-style cluster.
    pub fn deploy(graph: DataflowGraph, cfg: StatefunConfig) -> Self {
        assert!(cfg.partitions > 0 && cfg.remote_workers > 0);
        // Crash injection without checkpoints cannot recover. (Pure message
        // weather — duplicates, delays, outages — is fine either way.)
        assert!(
            !cfg.chaos.has_crashes()
                || matches!(cfg.checkpoint, CheckpointMode::Transactional { .. }),
            "crash injection requires CheckpointMode::Transactional"
        );
        let graph = Arc::new(graph);
        let obs = se_obs::Obs::new(&cfg.obs);
        let obs_snapshots = Mutex::new(obs.spawn_periodic_snapshots());
        // Deploy-time backend selection: with the VM backend, method bodies
        // are lowered to bytecode once here and shared by all remote
        // function workers.
        let compile_start = obs.now_ns();
        let (runner, vm) = se_vm::runner_for_upgrade(cfg.backend, &graph.program, None);
        obs.stage_span(se_obs::Stage::VmCompile, 0, compile_start, obs.now_ns());
        obs.counter("vm.compile_runs").inc();
        if obs.enabled() {
            se_compiler::stats(&graph).publish(&obs);
        }
        let registry = VersionRegistry::new(Arc::clone(&graph), runner);
        obs.gauge("deploy.active_version").set(graph.version as i64);
        let gate = Arc::new(UpgradeGate::default());
        // Outage windows in the chaos script act on broker visibility.
        let broker = Broker::with_chaos(cfg.net.clone(), cfg.chaos.clone());
        broker.create_topic(topics::INGRESS, cfg.partitions);
        broker.create_topic(topics::EGRESS, 1);

        let snapshots = Arc::new(SnapshotStore::with_retention(cfg.snapshot_retention));
        let timers = Arc::new(ComponentTimers::new());
        let recovery = Arc::new(RecoveryCtl::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let (ctl_tx, ctl_rx) = crossbeam::channel::unbounded::<CtlMsg>();

        // Remote-function channels: one shared request queue, one response
        // channel per partition task.
        let (pool_tx, pool_rx) = delay_channel();
        let pool_rx = Arc::new(pool_rx);
        let mut resp_txs = Vec::with_capacity(cfg.partitions);
        let mut resp_rxs = Vec::with_capacity(cfg.partitions);
        for _ in 0..cfg.partitions {
            let (tx, rx) = delay_channel();
            resp_txs.push(tx);
            resp_rxs.push(rx);
        }

        let mut threads = Vec::new();
        for (id, resp_rx) in resp_rxs.into_iter().enumerate() {
            let task = PartitionTask::new(
                id,
                cfg.clone(),
                broker.clone(),
                Arc::clone(&registry),
                Arc::clone(&gate),
                pool_tx.clone(),
                resp_rx,
                Arc::clone(&snapshots),
                Arc::clone(&timers),
                Arc::clone(&recovery),
                ctl_tx.clone(),
                Arc::clone(&shutdown),
                obs.clone(),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("statefun-task{id}"))
                    .spawn(move || task.run())
                    .expect("spawn task"),
            );
        }
        for id in 0..cfg.remote_workers {
            let cfg2 = cfg.clone();
            let registry2 = Arc::clone(&registry);
            let rx = Arc::clone(&pool_rx);
            let responders = resp_txs.clone();
            let timers2 = Arc::clone(&timers);
            let sd = Arc::clone(&shutdown);
            let obs2 = obs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("statefun-remote{id}"))
                    .spawn(move || {
                        run_remote_worker(cfg2, registry2, rx, responders, timers2, obs2, sd)
                    })
                    .expect("spawn remote worker"),
            );
        }

        // Egress dispatcher: completes client waiters.
        {
            let broker2 = broker.clone();
            let waiters2 = Arc::clone(&waiters);
            let sd = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("statefun-egress".into())
                    .spawn(move || {
                        let mut offset = 0u64;
                        while !sd.load(Ordering::SeqCst) {
                            let records = match broker2.fetch_blocking(
                                topics::EGRESS,
                                0,
                                offset,
                                64,
                                Duration::from_millis(20),
                            ) {
                                Ok(r) => r,
                                Err(_) => return,
                            };
                            for rec in records {
                                offset = rec.offset + 1;
                                if let SfRecord::Response(resp) = rec.value {
                                    // First response wins; replayed
                                    // duplicates find no waiter and are
                                    // dropped.
                                    if let Some(c) = waiters2.lock().remove(&resp.request) {
                                        c.complete(resp.result);
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn egress dispatcher"),
            );
        }

        // Checkpoint + recovery controller.
        {
            let broker2 = broker.clone();
            let cfg2 = cfg.clone();
            let snapshots2 = Arc::clone(&snapshots);
            let recovery2 = Arc::clone(&recovery);
            let sd = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("statefun-controller".into())
                    .spawn(move || {
                        let mut epoch = 0u64;
                        let interval = match cfg2.checkpoint {
                            CheckpointMode::Transactional { interval } => Some(interval),
                            CheckpointMode::None => None,
                        };
                        let mut next_barrier = interval.map(|i| Instant::now() + i);
                        while !sd.load(Ordering::SeqCst) {
                            if let Ok(CtlMsg::TaskFailed(_)) =
                                ctl_rx.recv_timeout(Duration::from_millis(1))
                            {
                                *recovery2.restore_epoch.lock() = snapshots2.latest_complete();
                                recovery2.gen.fetch_add(1, Ordering::SeqCst);
                            }
                            if let (Some(nb), Some(i)) = (next_barrier, interval) {
                                if Instant::now() >= nb {
                                    epoch += 1;
                                    snapshots2.begin_epoch(epoch, cfg2.partitions);
                                    for p in 0..cfg2.partitions {
                                        let _ = broker2.produce_to(
                                            topics::INGRESS,
                                            p,
                                            "",
                                            SfRecord::Barrier { epoch },
                                            0,
                                        );
                                    }
                                    next_barrier = Some(Instant::now() + i);
                                }
                            }
                        }
                    })
                    .expect("spawn controller"),
            );
        }

        Self {
            cfg,
            broker,
            registry,
            current: Mutex::new(CurrentDeploy { graph, vm }),
            gate,
            waiters,
            next_request: AtomicU64::new(1),
            shutdown,
            threads: Mutex::new(threads),
            snapshots,
            timers,
            recovery,
            obs,
            obs_snapshots,
        }
    }

    fn fresh_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::SeqCst))
    }

    /// Per-component timing breakdown (overhead experiment).
    pub fn timers(&self) -> &ComponentTimers {
        &self.timers
    }

    /// The snapshot store (inspected by recovery tests).
    pub fn snapshots(&self) -> &SnapshotStore<StateStore> {
        &self.snapshots
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StatefunConfig {
        &self.cfg
    }

    /// Number of recoveries performed so far.
    pub fn recoveries(&self) -> u64 {
        self.recovery.gen.load(Ordering::SeqCst)
    }

    /// The observability handle (stage histograms, counters, run dir).
    pub fn obs(&self) -> &se_obs::Obs {
        &self.obs
    }

    /// The program version new roots are stamped with once every partition
    /// has applied the most recent upgrade.
    pub fn active_version(&self) -> u64 {
        self.registry.active()
    }

    /// Live code upgrade: compiles `program` incrementally against the
    /// current deploy, registers the new version, and appends an
    /// [`SfRecord::Upgrade`] marker to every ingress partition. Each
    /// partition task applies the switch at its aligned drain boundary
    /// (in-flight dispatches complete first), backfills + migrates its
    /// slice of entity state, and stamps later roots with the new version;
    /// this call blocks until all partitions have switched. In-flight
    /// chains keep the version their root was stamped with until drained.
    pub fn redeploy(&self, program: &se_lang::Program) -> Result<u64, Vec<LangError>> {
        let mut cur = self.current.lock();
        let prev_version = cur.graph.version;
        let compile_start = self.obs.now_ns();
        let (graph, recompile) = se_compiler::compile_upgrade(
            &cur.graph,
            program,
            &se_compiler::CompileOptions::default(),
        )?;
        let graph = Arc::new(graph);
        let (runner, vm) = se_vm::runner_for_upgrade(
            self.cfg.backend,
            &graph.program,
            cur.vm.as_deref().map(|v| (&cur.graph.program, v)),
        );
        let version = graph.version;
        self.obs.stage_span(
            se_obs::Stage::VmCompile,
            version,
            compile_start,
            self.obs.now_ns(),
        );
        self.obs.counter("vm.compile_runs").inc();
        if self.obs.enabled() {
            recompile.publish(&self.obs);
        }
        self.registry.insert(version, Arc::clone(&graph), runner);
        for p in 0..self.cfg.partitions {
            self.broker
                .produce_to(topics::INGRESS, p, "", SfRecord::Upgrade { version }, 0)
                .map_err(|e| vec![LangError::runtime(e.to_string())])?;
        }
        if !self
            .gate
            .wait(version, self.cfg.partitions, Duration::from_secs(60))
        {
            return Err(vec![LangError::runtime(format!(
                "upgrade to v{version} timed out waiting for partition switchover"
            ))]);
        }
        self.registry.set_active(version);
        self.obs.gauge("deploy.active_version").set(version as i64);
        *cur = CurrentDeploy { graph, vm };
        // Versions below the immediate predecessor have fully drained (the
        // predecessor itself stays resolvable for replay after recovery).
        self.registry.evict_below(prev_version);
        Ok(version)
    }
}

impl EntityRuntime for StatefunRuntime {
    fn name(&self) -> &str {
        "statefun"
    }

    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError> {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let rec = SfRecord::Create {
            request,
            class: class.to_owned(),
            key: key.to_owned(),
            init,
        };
        self.broker
            .produce(topics::INGRESS, key, rec, 128)
            .map_err(|e| LangError::runtime(e.to_string()))?;
        waiter.wait()?;
        Ok(EntityRef::new(class, key))
    }

    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let inv = Invocation {
            request,
            target,
            method: method.into(),
            kind: InvocationKind::Start { args },
            stack: Vec::new(),
            // Roots are stamped with the active version by the partition
            // task when dispatched; the switchover point is per-partition.
            version: se_ir::INITIAL_VERSION,
        };
        let bytes = inv.approx_size();
        if let Err(e) = self.broker.produce(
            topics::INGRESS,
            target.key.as_str(),
            SfRecord::Invoke(inv),
            bytes,
        ) {
            if let Some(c) = self.waiters.lock().remove(&request) {
                c.complete(Err(LangError::runtime(e.to_string())));
            }
        }
        waiter
    }

    /// StateFun offers no multi-entity transactions: "we did not run
    /// Statefun against transactional workloads since it offers no support
    /// for transactions" (§4).
    fn supports_transactions(&self) -> bool {
        false
    }

    fn shutdown(&self) {
        let first = !self.shutdown.swap(true, Ordering::SeqCst);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        self.waiters.lock().clear();
        if first {
            drop(self.obs_snapshots.lock().take());
            let _ = self.obs.dump();
        }
    }
}

impl Drop for StatefunRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
