//! Deployment and client API of the StateFun-style runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use se_broker::Broker;
use se_dataflow::{
    delay_channel, ComponentTimers, EntityRuntime, ResponseCompleter, ResponseWaiter,
    SnapshotStore, StateStore,
};
use se_ir::{DataflowGraph, Invocation, InvocationKind, RequestId};
use se_lang::{EntityRef, LangError, Value};

use crate::config::{CheckpointMode, StatefunConfig};
use crate::record::{topics, SfRecord};
use crate::remote::run_remote_worker;
use crate::task::{CtlMsg, PartitionTask, RecoveryCtl};

/// A deployed StateFun-style application.
pub struct StatefunRuntime {
    cfg: StatefunConfig,
    broker: Broker<SfRecord>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    next_request: AtomicU64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    recovery: Arc<RecoveryCtl>,
    obs: se_obs::Obs,
    obs_snapshots: Mutex<Option<se_obs::PeriodicSnapshots>>,
}

impl StatefunRuntime {
    /// Deploys a compiled dataflow graph on a fresh StateFun-style cluster.
    pub fn deploy(graph: DataflowGraph, cfg: StatefunConfig) -> Self {
        assert!(cfg.partitions > 0 && cfg.remote_workers > 0);
        // Crash injection without checkpoints cannot recover. (Pure message
        // weather — duplicates, delays, outages — is fine either way.)
        assert!(
            !cfg.chaos.has_crashes()
                || matches!(cfg.checkpoint, CheckpointMode::Transactional { .. }),
            "crash injection requires CheckpointMode::Transactional"
        );
        let graph = Arc::new(graph);
        let obs = se_obs::Obs::new(&cfg.obs);
        let obs_snapshots = Mutex::new(obs.spawn_periodic_snapshots());
        // Deploy-time backend selection: with the VM backend, method bodies
        // are lowered to bytecode once here and shared by all remote
        // function workers.
        let compile_start = obs.now_ns();
        let runner = se_vm::runner_for(cfg.backend, &graph.program);
        obs.stage_span(se_obs::Stage::VmCompile, 0, compile_start, obs.now_ns());
        obs.counter("vm.compile_runs").inc();
        if obs.enabled() {
            se_compiler::stats(&graph).publish(&obs);
        }
        // Outage windows in the chaos script act on broker visibility.
        let broker = Broker::with_chaos(cfg.net.clone(), cfg.chaos.clone());
        broker.create_topic(topics::INGRESS, cfg.partitions);
        broker.create_topic(topics::EGRESS, 1);

        let snapshots = Arc::new(SnapshotStore::with_retention(cfg.snapshot_retention));
        let timers = Arc::new(ComponentTimers::new());
        let recovery = Arc::new(RecoveryCtl::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let (ctl_tx, ctl_rx) = crossbeam::channel::unbounded::<CtlMsg>();

        // Remote-function channels: one shared request queue, one response
        // channel per partition task.
        let (pool_tx, pool_rx) = delay_channel();
        let pool_rx = Arc::new(pool_rx);
        let mut resp_txs = Vec::with_capacity(cfg.partitions);
        let mut resp_rxs = Vec::with_capacity(cfg.partitions);
        for _ in 0..cfg.partitions {
            let (tx, rx) = delay_channel();
            resp_txs.push(tx);
            resp_rxs.push(rx);
        }

        let mut threads = Vec::new();
        for (id, resp_rx) in resp_rxs.into_iter().enumerate() {
            let task = PartitionTask::new(
                id,
                cfg.clone(),
                broker.clone(),
                Arc::clone(&graph),
                pool_tx.clone(),
                resp_rx,
                Arc::clone(&snapshots),
                Arc::clone(&timers),
                Arc::clone(&recovery),
                ctl_tx.clone(),
                Arc::clone(&shutdown),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("statefun-task{id}"))
                    .spawn(move || task.run())
                    .expect("spawn task"),
            );
        }
        for id in 0..cfg.remote_workers {
            let cfg2 = cfg.clone();
            let graph2 = Arc::clone(&graph);
            let runner2 = Arc::clone(&runner);
            let rx = Arc::clone(&pool_rx);
            let responders = resp_txs.clone();
            let timers2 = Arc::clone(&timers);
            let sd = Arc::clone(&shutdown);
            let obs2 = obs.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("statefun-remote{id}"))
                    .spawn(move || {
                        run_remote_worker(cfg2, graph2, runner2, rx, responders, timers2, obs2, sd)
                    })
                    .expect("spawn remote worker"),
            );
        }

        // Egress dispatcher: completes client waiters.
        {
            let broker2 = broker.clone();
            let waiters2 = Arc::clone(&waiters);
            let sd = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("statefun-egress".into())
                    .spawn(move || {
                        let mut offset = 0u64;
                        while !sd.load(Ordering::SeqCst) {
                            let records = match broker2.fetch_blocking(
                                topics::EGRESS,
                                0,
                                offset,
                                64,
                                Duration::from_millis(20),
                            ) {
                                Ok(r) => r,
                                Err(_) => return,
                            };
                            for rec in records {
                                offset = rec.offset + 1;
                                if let SfRecord::Response(resp) = rec.value {
                                    // First response wins; replayed
                                    // duplicates find no waiter and are
                                    // dropped.
                                    if let Some(c) = waiters2.lock().remove(&resp.request) {
                                        c.complete(resp.result);
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn egress dispatcher"),
            );
        }

        // Checkpoint + recovery controller.
        {
            let broker2 = broker.clone();
            let cfg2 = cfg.clone();
            let snapshots2 = Arc::clone(&snapshots);
            let recovery2 = Arc::clone(&recovery);
            let sd = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("statefun-controller".into())
                    .spawn(move || {
                        let mut epoch = 0u64;
                        let interval = match cfg2.checkpoint {
                            CheckpointMode::Transactional { interval } => Some(interval),
                            CheckpointMode::None => None,
                        };
                        let mut next_barrier = interval.map(|i| Instant::now() + i);
                        while !sd.load(Ordering::SeqCst) {
                            if let Ok(CtlMsg::TaskFailed(_)) =
                                ctl_rx.recv_timeout(Duration::from_millis(1))
                            {
                                *recovery2.restore_epoch.lock() = snapshots2.latest_complete();
                                recovery2.gen.fetch_add(1, Ordering::SeqCst);
                            }
                            if let (Some(nb), Some(i)) = (next_barrier, interval) {
                                if Instant::now() >= nb {
                                    epoch += 1;
                                    snapshots2.begin_epoch(epoch, cfg2.partitions);
                                    for p in 0..cfg2.partitions {
                                        let _ = broker2.produce_to(
                                            topics::INGRESS,
                                            p,
                                            "",
                                            SfRecord::Barrier { epoch },
                                            0,
                                        );
                                    }
                                    next_barrier = Some(Instant::now() + i);
                                }
                            }
                        }
                    })
                    .expect("spawn controller"),
            );
        }

        Self {
            cfg,
            broker,
            waiters,
            next_request: AtomicU64::new(1),
            shutdown,
            threads: Mutex::new(threads),
            snapshots,
            timers,
            recovery,
            obs,
            obs_snapshots,
        }
    }

    fn fresh_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::SeqCst))
    }

    /// Per-component timing breakdown (overhead experiment).
    pub fn timers(&self) -> &ComponentTimers {
        &self.timers
    }

    /// The snapshot store (inspected by recovery tests).
    pub fn snapshots(&self) -> &SnapshotStore<StateStore> {
        &self.snapshots
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StatefunConfig {
        &self.cfg
    }

    /// Number of recoveries performed so far.
    pub fn recoveries(&self) -> u64 {
        self.recovery.gen.load(Ordering::SeqCst)
    }

    /// The observability handle (stage histograms, counters, run dir).
    pub fn obs(&self) -> &se_obs::Obs {
        &self.obs
    }
}

impl EntityRuntime for StatefunRuntime {
    fn name(&self) -> &str {
        "statefun"
    }

    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError> {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let rec = SfRecord::Create {
            request,
            class: class.to_owned(),
            key: key.to_owned(),
            init,
        };
        self.broker
            .produce(topics::INGRESS, key, rec, 128)
            .map_err(|e| LangError::runtime(e.to_string()))?;
        waiter.wait()?;
        Ok(EntityRef::new(class, key))
    }

    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let inv = Invocation {
            request,
            target,
            method: method.into(),
            kind: InvocationKind::Start { args },
            stack: Vec::new(),
        };
        let bytes = inv.approx_size();
        if let Err(e) = self.broker.produce(
            topics::INGRESS,
            target.key.as_str(),
            SfRecord::Invoke(inv),
            bytes,
        ) {
            if let Some(c) = self.waiters.lock().remove(&request) {
                c.complete(Err(LangError::runtime(e.to_string())));
            }
        }
        waiter
    }

    /// StateFun offers no multi-entity transactions: "we did not run
    /// Statefun against transactional workloads since it offers no support
    /// for transactions" (§4).
    fn supports_transactions(&self) -> bool {
        false
    }

    fn shutdown(&self) {
        let first = !self.shutdown.swap(true, Ordering::SeqCst);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        self.waiters.lock().clear();
        if first {
            drop(self.obs_snapshots.lock().take());
            let _ = self.obs.dump();
        }
    }
}

impl Drop for StatefunRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
