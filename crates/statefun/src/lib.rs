//! # se-statefun — a Flink-StateFun-style runtime
//!
//! The paper's baseline deployment (§3, §4): a keyBy ingress router feeding
//! partitioned stateful operator tasks, a *remote* stateless function
//! runtime that receives `(event, state)` and returns `(new state,
//! messages)`, Kafka for ingress/egress and for re-inserting split-function
//! continuation events (no cyclic dataflows), aligned checkpoint barriers
//! with transactional (staged) produces for exactly-once — and **no
//! transactions and no locking**, so interleaved multi-entity chains can
//! observe each other's partial effects, exactly as the paper warns.

#![warn(missing_docs)]

pub mod config;
pub mod record;
pub mod remote;
pub mod runtime;
pub mod task;

pub use config::{CheckpointMode, StatefunConfig};
pub use runtime::StatefunRuntime;
