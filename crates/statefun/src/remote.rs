//! The remote function runtime: stateless workers executing entity code.
//!
//! StateFun's remote deployment ships `(state, event)` to an external
//! runtime over the network and receives `(new state, outgoing messages)`
//! back. "The Statefun deployment uses half its CPUs for messaging and
//! state within the Apache Flink cluster and the other half for execution
//! in a remote stateless function runtime" (§4) — these workers are that
//! other half.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use se_chaos::Seam;
use se_dataflow::{send_with_chaos, ComponentTimers, DelayReceiver, DelaySender};
use se_ir::{process_invocation_with, InvocationKind, VersionRegistry};
use se_lang::Env;

use crate::config::StatefunConfig;
use crate::record::{RemoteRequest, RemoteResponse};

/// Runs one remote-function worker until shutdown. Multiple workers share
/// the request queue (`Arc<DelayReceiver>` pops are mutex-serialized).
///
/// Each request resolves its program through the version registry at the
/// version stamped on the invocation — the dispatch-side half of the live
/// upgrade: chains pinned to an old version keep executing old code while
/// freshly stamped roots already run the new deploy.
#[allow(clippy::too_many_arguments)]
pub fn run_remote_worker(
    cfg: StatefunConfig,
    registry: Arc<VersionRegistry>,
    requests: Arc<DelayReceiver<RemoteRequest>>,
    responders: Vec<DelaySender<RemoteResponse>>,
    timers: Arc<ComponentTimers>,
    obs: se_obs::Obs,
    shutdown: Arc<AtomicBool>,
) {
    let invocations = obs.counter("statefun.invocations");
    let body_runs = obs.counter("vm.body_runs");
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(req) = requests.recv_timeout(Duration::from_millis(20)) else {
            continue;
        };
        let invoke_start = obs.now_ns();

        // Service time: dispatch + runtime overhead of the external
        // function process, burned on this worker — remote workers are the
        // throughput bottleneck of the paper's StateFun deployment.
        se_dataflow::burn(cfg.net.scaled(cfg.service_time));

        // Deserialize the shipped state — modeled as a *materialized* deep
        // copy (a plain clone of copy-on-write state would be a refcount
        // bump and measure nothing).
        let state = timers.time("state_deserialization", || req.state.deep_clone());
        // Reconstruct the entity object from its state (§2.3: "the system
        // reconstructs the object using the operator's code and the
        // function's state").
        let mut state = timers.time("object_construction", || {
            let mut s = se_lang::EntityState::new();
            for (k, v) in state {
                s.insert(k, v);
            }
            s
        });
        // Program-transformation overhead probe: the cost of carrying the
        // split-function machinery (continuation frames + saved
        // environments) in events — what E3 shows to be < 1% of the total.
        timers.time("split_overhead", || {
            let _frames = req.inv.stack.clone();
            let _env = match &req.inv.kind {
                InvocationKind::Resume { env, .. } => env.clone(),
                InvocationKind::Start { .. } => Env::new(),
            };
        });

        let entity = req.inv.target;
        let request_id = req.inv.request.0;
        let entry = registry.resolve(req.inv.version);
        let effect = timers.time("function_execution", || {
            process_invocation_with(&entry.graph.program, &*entry.runner, req.inv, &mut state)
        });
        invocations.inc();
        body_runs.inc();
        obs.stage_span(
            se_obs::Stage::Invoke,
            request_id,
            invoke_start,
            obs.now_ns(),
        );
        // Serialize the mutated state for the trip back (materialized, as
        // above).
        let new_state = timers.time("state_serialization", || state.deep_clone());
        let bytes = new_state.approx_size();

        send_with_chaos(
            &cfg.chaos,
            Seam::RemoteResponse,
            &cfg.net,
            &responders[req.task],
            RemoteResponse {
                gen: req.gen,
                seq: req.seq,
                entity,
                new_state,
                effect,
            },
            cfg.net.remote_fn_latency(bytes),
        );
    }
}
