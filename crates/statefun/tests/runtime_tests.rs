//! End-to-end tests of the StateFun-style runtime: functional correctness,
//! per-key serialization, exactly-once under transactional checkpoints with
//! failure injection — and the multi-entity race the paper warns about.

use std::sync::Arc;
use std::time::Duration;

use se_chaos::ChaosPlan;
use se_compiler::compile;
use se_dataflow::EntityRuntime;
use se_lang::{EntityRef, Program, Value};
use se_statefun::{CheckpointMode, StatefunConfig, StatefunRuntime};

const WAIT: Duration = Duration::from_secs(30);

fn deploy(program: &Program, cfg: StatefunConfig) -> StatefunRuntime {
    let graph = compile(program).expect("program compiles");
    StatefunRuntime::deploy(graph, cfg)
}

#[test]
fn counter_single_entity() {
    let program = se_lang::programs::counter_program();
    let rt = deploy(&program, StatefunConfig::fast_test(3));
    let c = rt.create("Counter", "c1", vec![]).unwrap();
    for i in 1..=5 {
        assert_eq!(
            rt.call(c, "incr", vec![Value::Int(1)]).unwrap(),
            Value::Int(i)
        );
    }
    rt.shutdown();
}

#[test]
fn figure1_split_chain_through_loopback() {
    let program = se_lang::programs::figure1_program();
    let rt = deploy(&program, StatefunConfig::fast_test(3));
    let user = rt
        .create("User", "alice", vec![("balance".into(), Value::Int(100))])
        .unwrap();
    let item = rt
        .create(
            "Item",
            "laptop",
            vec![
                ("price".into(), Value::Int(30)),
                ("stock".into(), Value::Int(5)),
            ],
        )
        .unwrap();
    let ok = rt
        .call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
        .unwrap();
    assert_eq!(ok, Value::Bool(true));
    assert_eq!(rt.call(user, "balance", vec![]).unwrap(), Value::Int(40));
    assert_eq!(
        rt.call(item, "update_stock", vec![Value::Int(0)]).unwrap(),
        Value::Bool(true),
        "stock is 3, still non-negative"
    );
    rt.shutdown();
}

#[test]
fn chain_program_multi_hop() {
    let depth = 3;
    let program = se_lang::programs::chain_program(depth);
    let rt = deploy(&program, StatefunConfig::fast_test(2));
    // Wire the chain back-to-front.
    for i in (0..=depth).rev() {
        let init = if i < depth {
            vec![(
                "next".to_string(),
                Value::Ref(EntityRef::new(format!("C{}", i + 1), "n")),
            )]
        } else {
            vec![]
        };
        rt.create(&format!("C{i}"), "n", init).unwrap();
    }
    let out = rt
        .call(EntityRef::new("C0", "n"), "relay", vec![Value::Int(5)])
        .unwrap();
    assert_eq!(out, Value::Int(5 + depth as i64));
    rt.shutdown();
}

#[test]
fn per_key_serialization_no_lost_updates() {
    // Single-entity updates are serialized per key: concurrent increments
    // must all apply (Statefun's guarantee; the race only affects
    // *multi-entity* chains).
    let program = se_lang::programs::counter_program();
    let rt = Arc::new(deploy(&program, StatefunConfig::fast_test(2)));
    rt.create("Counter", "hot", vec![]).unwrap();
    let waiters: Vec<_> = (0..100)
        .map(|_| {
            rt.call_async(
                EntityRef::new("Counter", "hot"),
                "incr",
                vec![Value::Int(1)],
            )
        })
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT).expect("completes").expect("no error");
    }
    assert_eq!(
        rt.call(EntityRef::new("Counter", "hot"), "get", vec![])
            .unwrap(),
        Value::Int(100)
    );
    rt.shutdown();
}

#[test]
fn unknown_entity_and_method_error() {
    let program = se_lang::programs::counter_program();
    let rt = deploy(&program, StatefunConfig::fast_test(2));
    let err = rt
        .call(EntityRef::new("Counter", "ghost"), "get", vec![])
        .unwrap_err();
    assert!(err.to_string().contains("unknown entity"), "{err}");
    rt.create("Counter", "c", vec![]).unwrap();
    let err = rt
        .call(EntityRef::new("Counter", "c"), "nope", vec![])
        .unwrap_err();
    assert!(err.to_string().contains("no method"), "{err}");
    let err = rt.create("Nope", "x", vec![]).unwrap_err();
    assert!(err.to_string().contains("undefined class"), "{err}");
    rt.shutdown();
}

/// The race the paper acknowledges (§3): "when an event reenters a dataflow
/// to reach the next function block of a split function, race conditions …
/// could lead to state inconsistencies". Two interleaved `buy_item` chains
/// can both pass the balance check before either deducts — a write skew
/// that StateFlow's transactions prevent (see se-stateflow's tests).
#[test]
fn documented_race_multi_entity_chains_can_overspend() {
    let program = se_lang::programs::figure1_program();
    let mut cfg = StatefunConfig::fast_test(2);
    // Widen the suspension window so the interleaving is reliable.
    cfg.net.broker_hop = Duration::from_millis(3);
    let rt = Arc::new(deploy(&program, cfg));

    let mut anomalies = 0;
    for round in 0..10 {
        let user = rt
            .create(
                "User",
                &format!("u{round}"),
                vec![("balance".into(), Value::Int(60))],
            )
            .unwrap();
        let item = rt
            .create(
                "Item",
                &format!("i{round}"),
                vec![
                    ("price".into(), Value::Int(30)),
                    ("stock".into(), Value::Int(100)),
                ],
            )
            .unwrap();
        // Two concurrent purchases of 60 each against a balance of 60.
        let w1 = rt.call_async(user, "buy_item", vec![Value::Int(2), Value::Ref(item)]);
        let w2 = rt.call_async(user, "buy_item", vec![Value::Int(2), Value::Ref(item)]);
        let r1 = w1.wait_timeout(WAIT).unwrap().unwrap();
        let r2 = w2.wait_timeout(WAIT).unwrap().unwrap();
        let balance = rt.call(user, "balance", vec![]).unwrap().as_int().unwrap();
        let both_succeeded = r1 == Value::Bool(true) && r2 == Value::Bool(true);
        if both_succeeded || balance < 0 {
            anomalies += 1;
            assert!(
                balance < 0,
                "double success must have overspent, got {balance}"
            );
        }
    }
    assert!(
        anomalies > 0,
        "expected at least one write-skew anomaly across 10 rounds — \
         StateFun has no transactions, interleaved chains race"
    );
    rt.shutdown();
}

/// Exactly-once with transactional checkpoints: kill a partition task
/// mid-stream; replay from the last complete epoch must yield every deposit
/// exactly once.
#[test]
fn exactly_once_with_transactional_checkpoints_and_failure() {
    let program = se_lang::programs::counter_program();
    let mut cfg = StatefunConfig::fast_test(3);
    cfg.checkpoint = CheckpointMode::Transactional {
        interval: Duration::from_millis(25),
    };
    cfg.chaos = ChaosPlan::single_crash("task0", 15);
    let rt = Arc::new(deploy(&program, cfg.clone()));

    let n = 6usize;
    for i in 0..n {
        rt.create("Counter", &format!("c{i}"), vec![]).unwrap();
    }
    let mut expected = vec![0i64; n];
    let mut waiters = Vec::new();
    for i in 0..90 {
        let c = i % n;
        let amount = (i % 7 + 1) as i64;
        expected[c] += amount;
        waiters.push(rt.call_async(
            EntityRef::new("Counter", format!("c{c}")),
            "incr",
            vec![Value::Int(amount)],
        ));
        if i % 15 == 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("increment must complete after recovery")
            .expect("no error");
    }
    assert_eq!(cfg.chaos.crashes_fired(), 1, "failure must fire");
    assert!(rt.recoveries() >= 1, "recovery must run");

    for (i, want) in expected.iter().enumerate() {
        let got = rt
            .call(EntityRef::new("Counter", format!("c{i}")), "get", vec![])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(got, *want, "c{i}: exactly-once violated");
    }
    rt.shutdown();
}

#[test]
fn overhead_timers_cover_components() {
    let program = se_lang::programs::counter_program();
    let rt = deploy(&program, StatefunConfig::fast_test(2));
    rt.create("Counter", "c", vec![]).unwrap();
    for _ in 0..10 {
        rt.call(EntityRef::new("Counter", "c"), "incr", vec![Value::Int(1)])
            .unwrap();
    }
    let names: Vec<&str> = rt.timers().report().iter().map(|(n, _, _)| *n).collect();
    for expect in [
        "routing",
        "state_serialization",
        "state_deserialization",
        "object_construction",
        "function_execution",
        "split_overhead",
        "state_storage",
    ] {
        assert!(
            names.contains(&expect),
            "missing component {expect}: {names:?}"
        );
    }
    rt.shutdown();
}
