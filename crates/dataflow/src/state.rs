//! Managed operator state: the per-partition entity store.
//!
//! "Since operators can be partitioned across multiple cluster nodes, each
//! partition stores a set of stateful entities indexed by their unique key"
//! (§2.3). Every runtime task owns one `StateStore` per partition; snapshots
//! clone it wholesale (states are plain values, so a clone is a consistent
//! point-in-time image).

use std::collections::HashMap;

use se_lang::{EntityRef, EntityState, LangError, Value};

/// Entities owned by one operator partition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateStore {
    entities: HashMap<EntityRef, EntityState>,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) an entity's state.
    pub fn insert(&mut self, r: EntityRef, state: EntityState) {
        self.entities.insert(r, state);
    }

    /// Reads an entity's state.
    pub fn get(&self, r: &EntityRef) -> Option<&EntityState> {
        self.entities.get(r)
    }

    /// Reads an entity's state, erroring if absent.
    pub fn get_or_err(&self, r: &EntityRef) -> Result<&EntityState, LangError> {
        self.get(r)
            .ok_or_else(|| LangError::runtime(format!("unknown entity {r}")))
    }

    /// Clones an entity's state, erroring if absent.
    pub fn get_cloned(&self, r: &EntityRef) -> Result<EntityState, LangError> {
        self.get_or_err(r).cloned()
    }

    /// Mutable access to an entity's state.
    pub fn get_mut(&mut self, r: &EntityRef) -> Option<&mut EntityState> {
        self.entities.get_mut(r)
    }

    /// Whether the entity exists.
    pub fn contains(&self, r: &EntityRef) -> bool {
        self.entities.contains_key(r)
    }

    /// Removes an entity, returning its state.
    pub fn remove(&mut self, r: &EntityRef) -> Option<EntityState> {
        self.entities.remove(r)
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the store holds no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterates `(ref, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityRef, &EntityState)> {
        self.entities.iter()
    }

    /// Applies a single attribute write (used by transactional commit).
    pub fn apply_write(
        &mut self,
        r: &EntityRef,
        attr: &str,
        value: Value,
    ) -> Result<(), LangError> {
        let st = self
            .entities
            .get_mut(r)
            .ok_or_else(|| LangError::runtime(format!("unknown entity {r}")))?;
        st.insert(attr.to_owned(), value);
        Ok(())
    }

    /// Approximate serialized size of the whole store, in bytes; drives the
    /// state-(de)serialization component of the overhead experiment.
    pub fn approx_size(&self) -> usize {
        self.entities
            .iter()
            .map(|(r, s)| {
                16 + r.class.len()
                    + r.key.len()
                    + s.iter()
                        .map(|(k, v)| k.len() + v.approx_size())
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(key: &str, balance: i64) -> (EntityRef, EntityState) {
        let r = EntityRef::new("User", key);
        let mut s = EntityState::new();
        s.insert("balance".into(), Value::Int(balance));
        (r, s)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r.clone(), s);
        assert!(store.contains(&r));
        assert_eq!(store.get(&r).unwrap()["balance"], Value::Int(10));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_entity_errors() {
        let store = StateStore::new();
        let r = EntityRef::new("User", "ghost");
        assert!(store
            .get_or_err(&r)
            .unwrap_err()
            .to_string()
            .contains("unknown entity"));
    }

    #[test]
    fn apply_write_updates() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r.clone(), s);
        store.apply_write(&r, "balance", Value::Int(99)).unwrap();
        assert_eq!(store.get(&r).unwrap()["balance"], Value::Int(99));
        let ghost = EntityRef::new("User", "ghost");
        assert!(store.apply_write(&ghost, "balance", Value::Int(1)).is_err());
    }

    #[test]
    fn snapshot_clone_is_point_in_time() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r.clone(), s);
        let snap = store.clone();
        store.apply_write(&r, "balance", Value::Int(0)).unwrap();
        assert_eq!(
            snap.get(&r).unwrap()["balance"],
            Value::Int(10),
            "snapshot must not move"
        );
    }

    #[test]
    fn approx_size_reflects_payload() {
        let mut store = StateStore::new();
        let r = EntityRef::new("Blob", "b");
        let mut s = EntityState::new();
        s.insert("data".into(), Value::Bytes(vec![0; 50 * 1024]));
        store.insert(r, s);
        assert!(store.approx_size() >= 50 * 1024);
    }
}
