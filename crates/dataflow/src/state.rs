//! Managed operator state: the per-partition entity store.
//!
//! "Since operators can be partitioned across multiple cluster nodes, each
//! partition stores a set of stateful entities indexed by their unique key"
//! (§2.3). Every runtime task owns one `StateStore` per partition; snapshots
//! clone it wholesale. Entity states are copy-on-write
//! ([`se_lang::SymbolMap`]), so the wholesale clone is one refcount bump per
//! entity — independent of entity-state size — and a cloned snapshot stays a
//! consistent point-in-time image because later writes copy the mutated
//! entity's map before diverging.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use se_lang::{EntityRef, EntityState, LangError, Value};

/// Entities owned by one operator partition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateStore {
    entities: HashMap<EntityRef, EntityState>,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) an entity's state.
    pub fn insert(&mut self, r: EntityRef, state: EntityState) {
        self.entities.insert(r, state);
    }

    /// Reads an entity's state.
    pub fn get(&self, r: &EntityRef) -> Option<&EntityState> {
        self.entities.get(r)
    }

    /// Reads an entity's state, erroring if absent.
    pub fn get_or_err(&self, r: &EntityRef) -> Result<&EntityState, LangError> {
        self.get(r)
            .ok_or_else(|| LangError::runtime(format!("unknown entity {r}")))
    }

    /// Clones an entity's state, erroring if absent. O(1): entity state is
    /// copy-on-write, so this is a refcount bump, not a deep copy.
    pub fn get_cloned(&self, r: &EntityRef) -> Result<EntityState, LangError> {
        self.get_or_err(r).cloned()
    }

    /// Mutable access to an entity's state.
    pub fn get_mut(&mut self, r: &EntityRef) -> Option<&mut EntityState> {
        self.entities.get_mut(r)
    }

    /// Whether the entity exists.
    pub fn contains(&self, r: &EntityRef) -> bool {
        self.entities.contains_key(r)
    }

    /// Removes an entity, returning its state.
    pub fn remove(&mut self, r: &EntityRef) -> Option<EntityState> {
        self.entities.remove(r)
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the store holds no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterates `(ref, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&EntityRef, &EntityState)> {
        self.entities.iter()
    }

    /// Applies a single attribute write (used by transactional commit).
    pub fn apply_write(
        &mut self,
        r: &EntityRef,
        attr: impl Into<se_lang::Symbol>,
        value: Value,
    ) -> Result<(), LangError> {
        let st = self
            .entities
            .get_mut(r)
            .ok_or_else(|| LangError::runtime(format!("unknown entity {r}")))?;
        st.insert(attr.into(), value);
        Ok(())
    }

    /// Approximate serialized size of the whole store, in bytes; drives the
    /// state-(de)serialization component of the overhead experiment.
    pub fn approx_size(&self) -> usize {
        self.entities
            .iter()
            .map(|(r, s)| 16 + r.class.len() + r.key.len() + s.approx_size())
            .sum()
    }
}

/// A partition store shared between its owning protocol thread and an
/// intra-partition execution pool.
///
/// The protocol thread is the only writer (commit application, creates,
/// restores); pool threads are pure readers of the committed snapshot. Under
/// Aria's phase discipline reads and writes never semantically overlap — a
/// batch's writes are applied only after every one of its executions
/// finished — so the read/write lock here is contention-free in steady state
/// and exists to make the sharing sound, not to arbitrate races.
#[derive(Debug, Clone, Default)]
pub struct SharedStateStore {
    inner: Arc<RwLock<StateStore>>,
}

impl SharedStateStore {
    /// A handle to a fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access (any thread).
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, StateStore> {
        self.inner.read()
    }

    /// Write access (protocol thread only, by convention).
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, StateStore> {
        self.inner.write()
    }

    /// Swaps in a whole new store (crash wipe / snapshot restore).
    pub fn replace(&self, store: StateStore) {
        *self.inner.write() = store;
    }

    /// A point-in-time copy (O(entities) refcount bumps — entity state is
    /// copy-on-write).
    pub fn snapshot(&self) -> StateStore {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(key: &str, balance: i64) -> (EntityRef, EntityState) {
        let r = EntityRef::new("User", key);
        let s = EntityState::from([("balance", Value::Int(balance))]);
        (r, s)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r, s);
        assert!(store.contains(&r));
        assert_eq!(store.get(&r).unwrap()["balance"], Value::Int(10));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_entity_errors() {
        let store = StateStore::new();
        let r = EntityRef::new("User", "ghost");
        assert!(store
            .get_or_err(&r)
            .unwrap_err()
            .to_string()
            .contains("unknown entity"));
    }

    #[test]
    fn apply_write_updates() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r, s);
        store.apply_write(&r, "balance", Value::Int(99)).unwrap();
        assert_eq!(store.get(&r).unwrap()["balance"], Value::Int(99));
        let ghost = EntityRef::new("User", "ghost");
        assert!(store.apply_write(&ghost, "balance", Value::Int(1)).is_err());
    }

    #[test]
    fn snapshot_clone_is_point_in_time() {
        let mut store = StateStore::new();
        let (r, s) = user("alice", 10);
        store.insert(r, s);
        let snap = store.clone();
        store.apply_write(&r, "balance", Value::Int(0)).unwrap();
        assert_eq!(
            snap.get(&r).unwrap()["balance"],
            Value::Int(10),
            "snapshot must not move"
        );
    }

    /// Churn workload: snapshot epochs interleaved with writes. Each epoch's
    /// snapshot must keep showing exactly the state at its cut — writes after
    /// the cut must never leak into a restored epoch, even though
    /// copy-on-write state shares storage between the live store and its
    /// snapshots.
    #[test]
    fn cow_snapshot_restore_equivalence_under_churn() {
        use crate::snapshot::SnapshotStore;

        let n = 50;
        let mut store = StateStore::new();
        for i in 0..n {
            let r = EntityRef::new("Account", format!("a{i}"));
            let s = EntityState::from([
                ("balance".to_string(), Value::Int(0)),
                ("data".to_string(), Value::Bytes(vec![0u8; 256])),
            ]);
            store.insert(r, s);
        }

        let snapshots = SnapshotStore::<StateStore>::with_retention(0);
        let mut expected_at_epoch: Vec<Vec<i64>> = Vec::new();
        for epoch in 1..=4u64 {
            // Churn: bump a sliding window of entities, rewrite payloads.
            for i in 0..n {
                if (i + epoch as usize).is_multiple_of(3) {
                    let r = EntityRef::new("Account", format!("a{i}"));
                    store
                        .apply_write(&r, "balance", Value::Int(epoch as i64 * 100 + i as i64))
                        .unwrap();
                    store
                        .apply_write(&r, "data", Value::Bytes(vec![epoch as u8; 256]))
                        .unwrap();
                }
            }
            expected_at_epoch.push(
                (0..n)
                    .map(|i| {
                        store
                            .get(&EntityRef::new("Account", format!("a{i}")))
                            .unwrap()["balance"]
                            .as_int()
                            .unwrap()
                    })
                    .collect(),
            );
            snapshots.begin_epoch(epoch, 1);
            snapshots.put(epoch, "w0", store.clone());
        }

        // Restore every epoch and compare against what the store held at its
        // cut: mutate-after-snapshot must not have leaked backwards.
        for epoch in 1..=4u64 {
            let restored = snapshots.get(epoch, "w0").expect("epoch stored");
            let got: Vec<i64> = (0..n)
                .map(|i| {
                    restored
                        .get(&EntityRef::new("Account", format!("a{i}")))
                        .unwrap()["balance"]
                        .as_int()
                        .unwrap()
                })
                .collect();
            assert_eq!(
                got,
                expected_at_epoch[epoch as usize - 1],
                "epoch {epoch} diverged"
            );
        }
    }

    #[test]
    fn shared_store_readers_see_point_in_time_snapshots() {
        let shared = SharedStateStore::new();
        let (r, s) = user("alice", 10);
        shared.write().insert(r, s);
        // Concurrent readers hold the committed image while the writer
        // swaps in new state between their acquisitions.
        let snap = shared.snapshot();
        shared
            .write()
            .apply_write(&r, "balance", Value::Int(77))
            .unwrap();
        assert_eq!(snap.get(&r).unwrap()["balance"], Value::Int(10));
        assert_eq!(shared.read().get(&r).unwrap()["balance"], Value::Int(77));
        shared.replace(StateStore::new());
        assert!(shared.read().is_empty());
    }

    #[test]
    fn approx_size_reflects_payload() {
        let mut store = StateStore::new();
        let r = EntityRef::new("Blob", "b");
        let s = EntityState::from([("data", Value::Bytes(vec![0; 50 * 1024]))]);
        store.insert(r, s);
        assert!(store.approx_size() >= 50 * 1024);
    }
}
