//! # se-dataflow — the streaming-dataflow substrate
//!
//! Engine-level building blocks shared by both runtime implementations
//! (`se-statefun`, `se-stateflow`):
//!
//! * [`net`] — the simulated cluster network (per-hop latency, time scale);
//! * [`delay`] — delay queues imposing hop latency without blocking senders;
//! * [`state`] — per-partition entity state stores;
//! * [`snapshot`] — consistent-snapshot (epoch) storage for exactly-once;
//! * [`source`] — replayable, offset-addressed ingress logs;
//! * [`failure`] — scripted fault injection (re-exported from `se-chaos`)
//!   plus the seam-injection send helper;
//! * [`wal`] — the per-partition append-only write-ahead log (CRC-framed
//!   records, group-commit fsync policies, torn-tail-safe reader);
//! * [`durable`] — the durable layer over [`wal`]: incremental epoch
//!   persistence, base snapshots, checked recovery and log compaction;
//! * [`metrics`] — latency histograms and per-component overhead timers.

#![warn(missing_docs)]

pub mod api;
pub mod delay;
pub mod durable;
pub mod failure;
pub mod metrics;
pub mod net;
pub mod snapshot;
pub mod source;
pub mod state;
pub mod wal;

pub use api::{EntityRuntime, ResponseCompleter, ResponseWaiter};
pub use delay::{delay_channel, DelayReceiver, DelaySender};
pub use durable::{DurableOptions, DurableStore};
pub use failure::{send_with_chaos, ChaosPlan, CrashPoint, FailurePlan, MsgFaultAction, Seam};
pub use metrics::{ComponentTimers, LatencyRecorder, LatencySummary, Throughput};
pub use net::{burn, NetConfig};
pub use snapshot::{Epoch, SnapshotStore, DEFAULT_SNAPSHOT_RETENTION};
pub use source::{ReplayableSource, SourceReader};
pub use state::{SharedStateStore, StateStore};
pub use wal::{read_wal, FsyncPolicy, WalRecord, WalScan, WalWriter};
