//! # se-dataflow — the streaming-dataflow substrate
//!
//! Engine-level building blocks shared by both runtime implementations
//! (`se-statefun`, `se-stateflow`):
//!
//! * [`net`] — the simulated cluster network (per-hop latency, time scale);
//! * [`delay`] — delay queues imposing hop latency without blocking senders;
//! * [`state`] — per-partition entity state stores;
//! * [`snapshot`] — consistent-snapshot (epoch) storage for exactly-once;
//! * [`source`] — replayable, offset-addressed ingress logs;
//! * [`failure`] — scripted fault injection (re-exported from `se-chaos`)
//!   plus the seam-injection send helper;
//! * [`metrics`] — latency histograms and per-component overhead timers.

#![warn(missing_docs)]

pub mod api;
pub mod delay;
pub mod failure;
pub mod metrics;
pub mod net;
pub mod snapshot;
pub mod source;
pub mod state;

pub use api::{EntityRuntime, ResponseCompleter, ResponseWaiter};
pub use delay::{delay_channel, DelayReceiver, DelaySender};
pub use failure::{send_with_chaos, ChaosPlan, CrashPoint, FailurePlan, MsgFaultAction, Seam};
pub use metrics::{ComponentTimers, LatencyRecorder, LatencySummary, Throughput};
pub use net::{burn, NetConfig};
pub use snapshot::{Epoch, SnapshotStore, DEFAULT_SNAPSHOT_RETENTION};
pub use source::{ReplayableSource, SourceReader};
pub use state::{SharedStateStore, StateStore};
