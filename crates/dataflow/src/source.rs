//! A replayable source: the durable, offset-addressed ingress log.
//!
//! Exactly-once recovery requires the ingress to be *replayable*: after a
//! failure the system restores the latest complete snapshot and re-reads the
//! source from the offset recorded in that snapshot (§3). Appends are
//! retained (never destructively consumed), and any number of readers can
//! read from any offset.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Inner<T> {
    log: Mutex<Vec<T>>,
    appended: Condvar,
    closed: Mutex<bool>,
}

/// A shareable, replayable, append-only event log.
pub struct ReplayableSource<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for ReplayableSource<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for ReplayableSource<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> ReplayableSource<T> {
    /// An empty source.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                log: Mutex::new(Vec::new()),
                appended: Condvar::new(),
                closed: Mutex::new(false),
            }),
        }
    }

    /// Appends an event, returning its offset.
    pub fn append(&self, event: T) -> u64 {
        let mut log = self.inner.log.lock();
        log.push(event);
        let off = (log.len() - 1) as u64;
        drop(log);
        self.inner.appended.notify_all();
        off
    }

    /// Reads the event at `offset` if it exists.
    pub fn read(&self, offset: u64) -> Option<T> {
        self.inner.log.lock().get(offset as usize).cloned()
    }

    /// Blocks until an event at `offset` exists (or the source is closed),
    /// waiting at most `timeout`.
    pub fn read_blocking(&self, offset: u64, timeout: std::time::Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut log = self.inner.log.lock();
        loop {
            if let Some(e) = log.get(offset as usize) {
                return Some(e.clone());
            }
            if *self.inner.closed.lock() {
                return None;
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            self.inner.appended.wait_until(&mut log, deadline);
        }
    }

    /// Number of events appended so far (== next offset).
    pub fn len(&self) -> u64 {
        self.inner.log.lock().len() as u64
    }

    /// Whether no events were appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks the source closed: blocked readers wake and see the end.
    pub fn close(&self) {
        *self.inner.closed.lock() = true;
        self.inner.appended.notify_all();
    }

    /// Whether the source is closed.
    pub fn is_closed(&self) -> bool {
        *self.inner.closed.lock()
    }
}

/// A reader cursor over a [`ReplayableSource`] that remembers its offset and
/// can be rewound for replay.
pub struct SourceReader<T> {
    source: ReplayableSource<T>,
    offset: u64,
}

impl<T: Clone> SourceReader<T> {
    /// A reader starting at `offset`.
    pub fn at(source: &ReplayableSource<T>, offset: u64) -> Self {
        Self {
            source: source.clone(),
            offset,
        }
    }

    /// Current offset (the next event to read).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Rewinds to `offset` (replay after recovery).
    pub fn seek(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// Reads the next event if available, advancing the cursor.
    pub fn poll(&mut self) -> Option<T> {
        let e = self.source.read(self.offset)?;
        self.offset += 1;
        Some(e)
    }

    /// Blocking read of the next event, advancing the cursor.
    pub fn poll_blocking(&mut self, timeout: std::time::Duration) -> Option<T> {
        let e = self.source.read_blocking(self.offset, timeout)?;
        self.offset += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn append_read_roundtrip() {
        let src = ReplayableSource::new();
        assert_eq!(src.append("a"), 0);
        assert_eq!(src.append("b"), 1);
        assert_eq!(src.read(0), Some("a"));
        assert_eq!(src.read(2), None);
        assert_eq!(src.len(), 2);
    }

    #[test]
    fn reader_replays_after_seek() {
        let src = ReplayableSource::new();
        for i in 0..5 {
            src.append(i);
        }
        let mut rd = SourceReader::at(&src, 0);
        assert_eq!(rd.poll(), Some(0));
        assert_eq!(rd.poll(), Some(1));
        assert_eq!(rd.poll(), Some(2));
        // Crash! Snapshot said offset 1.
        rd.seek(1);
        assert_eq!(
            rd.poll(),
            Some(1),
            "replay must re-deliver from the snapshot offset"
        );
        assert_eq!(rd.offset(), 2);
    }

    #[test]
    fn blocking_read_wakes_on_append() {
        let src = ReplayableSource::new();
        let src2 = src.clone();
        let h = std::thread::spawn(move || src2.read_blocking(0, Duration::from_secs(2)));
        std::thread::sleep(Duration::from_millis(20));
        src.append(42);
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocking_read_sees_close() {
        let src = ReplayableSource::<u8>::new();
        let src2 = src.clone();
        let h = std::thread::spawn(move || src2.read_blocking(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        src.close();
        assert_eq!(h.join().unwrap(), None);
        assert!(src.is_closed());
    }

    #[test]
    fn multiple_independent_readers() {
        let src = ReplayableSource::new();
        for i in 0..10 {
            src.append(i);
        }
        let mut r1 = SourceReader::at(&src, 0);
        let mut r2 = SourceReader::at(&src, 5);
        assert_eq!(r1.poll(), Some(0));
        assert_eq!(r2.poll(), Some(5));
        assert_eq!(r1.offset(), 1);
        assert_eq!(r2.offset(), 6);
    }
}
