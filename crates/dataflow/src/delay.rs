//! A delay queue: the in-process stand-in for a network link.
//!
//! Senders enqueue messages with a delivery delay; the receiver sees a
//! message only once its delivery instant has passed. This is how simulated
//! hop latency (see [`crate::net::NetConfig`]) is imposed *without blocking
//! the sender* — an operator thread hands a message to the link and keeps
//! processing, exactly like a real NIC, so queueing delay under load emerges
//! naturally at the receiver.
//!
//! FIFO is preserved among messages with equal delivery instants via a
//! monotonically increasing sequence number.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

struct Entry<T> {
    due: Instant,
    seq: u64,
    msg: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct Shared<T> {
    heap: Mutex<(BinaryHeap<Reverse<Entry<T>>>, u64)>,
    available: Condvar,
    senders: AtomicUsize,
}

/// Sending half of a delay queue. Cloning adds a sender.
pub struct DelaySender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for DelaySender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for DelaySender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake the receiver so it can observe closure.
            self.shared.available.notify_all();
        }
    }
}

impl<T> DelaySender<T> {
    /// Enqueues `msg` for delivery after `delay`.
    pub fn send_after(&self, msg: T, delay: Duration) {
        let due = Instant::now() + delay;
        let mut guard = self.shared.heap.lock();
        let seq = guard.1;
        guard.1 += 1;
        guard.0.push(Reverse(Entry { due, seq, msg }));
        drop(guard);
        self.shared.available.notify_one();
    }

    /// Enqueues `msg` for immediate delivery.
    pub fn send(&self, msg: T) {
        self.send_after(msg, Duration::ZERO);
    }
}

/// Receiving half of a delay queue.
pub struct DelayReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> DelayReceiver<T> {
    /// Receives the next due message, waiting at most `timeout`.
    ///
    /// Returns `None` on timeout, or when all senders are dropped and the
    /// queue holds no due-or-future messages.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.shared.heap.lock();
        loop {
            let now = Instant::now();
            // Due message ready?
            if let Some(Reverse(head)) = guard.0.peek() {
                if head.due <= now {
                    let Reverse(e) = guard.0.pop().expect("peeked");
                    return Some(e.msg);
                }
                // Wait until the head is due or the deadline passes.
                let wait_until = head.due.min(deadline);
                if wait_until <= now {
                    return None;
                }
                self.shared.available.wait_until(&mut guard, wait_until);
            } else {
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return None;
                }
                if now >= deadline {
                    return None;
                }
                self.shared.available.wait_until(&mut guard, deadline);
            }
            if Instant::now() >= deadline
                && guard
                    .0
                    .peek()
                    .map(|Reverse(e)| e.due > deadline)
                    .unwrap_or(true)
            {
                return None;
            }
        }
    }

    /// Non-blocking receive of a due message.
    pub fn try_recv(&self) -> Option<T> {
        let mut guard = self.shared.heap.lock();
        if let Some(Reverse(head)) = guard.0.peek() {
            if head.due <= Instant::now() {
                let Reverse(e) = guard.0.pop().expect("peeked");
                return Some(e.msg);
            }
        }
        None
    }

    /// Number of queued (due or pending) messages.
    pub fn len(&self) -> usize {
        self.shared.heap.lock().0.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether all senders were dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.senders.load(Ordering::SeqCst) == 0
    }
}

/// Creates a connected delay-queue pair.
pub fn delay_channel<T>() -> (DelaySender<T>, DelayReceiver<T>) {
    let shared = Arc::new(Shared {
        heap: Mutex::new((BinaryHeap::new(), 0)),
        available: Condvar::new(),
        senders: AtomicUsize::new(1),
    });
    (
        DelaySender {
            shared: Arc::clone(&shared),
        },
        DelayReceiver { shared },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_delivery() {
        let (tx, rx) = delay_channel();
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(2));
    }

    #[test]
    fn delayed_delivery_orders_by_due_time() {
        let (tx, rx) = delay_channel();
        tx.send_after("late", Duration::from_millis(60));
        tx.send_after("early", Duration::from_millis(10));
        assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Some("early"));
        assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Some("late"));
    }

    #[test]
    fn fifo_among_equal_delays() {
        let (tx, rx) = delay_channel();
        for i in 0..100 {
            tx.send(i);
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(i));
        }
    }

    #[test]
    fn not_delivered_early() {
        let (tx, rx) = delay_channel();
        tx.send_after((), Duration::from_millis(80));
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), None, "too early");
        let got = rx.recv_timeout(Duration::from_millis(500));
        assert_eq!(got, Some(()));
        assert!(
            start.elapsed() >= Duration::from_millis(70),
            "delivered too early"
        );
    }

    #[test]
    fn timeout_when_empty() {
        let (tx, rx) = delay_channel::<u8>();
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
    }

    #[test]
    fn closed_and_empty_returns_none_quickly() {
        let (tx, rx) = delay_channel::<u8>();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), None);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = delay_channel();
        let handle = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send_after(i, Duration::from_micros(i % 7 * 10));
            }
        });
        let mut got = Vec::new();
        while got.len() < 1000 {
            if let Some(v) = rx.recv_timeout(Duration::from_secs(2)) {
                got.push(v);
            } else {
                panic!("timed out with {} received", got.len());
            }
        }
        handle.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_only_due() {
        let (tx, rx) = delay_channel();
        tx.send_after(1, Duration::from_secs(10));
        assert_eq!(rx.try_recv(), None);
        tx.send(2);
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }
}
