//! Failure injection for exactly-once testing.
//!
//! A [`FailurePlan`] arms a one-shot "crash" that fires when a named node
//! has processed a configured number of events. Runtimes consult
//! [`FailurePlan::should_fail`] in their processing loops and, when it
//! fires, simulate a crash by discarding the node's volatile state and
//! entering recovery. The exactly-once integration tests assert that
//! post-recovery results equal a failure-free oracle run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, one-shot failure trigger.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    node: String,
    countdown: AtomicU64,
    fired: AtomicBool,
}

impl FailurePlan {
    /// A plan that never fires.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// Fails node `node` after it has processed `after_events` events.
    pub fn fail_node_after(node: impl Into<String>, after_events: u64) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                node: node.into(),
                countdown: AtomicU64::new(after_events),
                fired: AtomicBool::new(false),
            })),
        }
    }

    /// Called by `node` once per processed event; returns `true` exactly
    /// once — at the moment the crash should happen.
    pub fn should_fail(&self, node: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.node != node || inner.fired.load(Ordering::SeqCst) {
            return false;
        }
        // Decrement the countdown; fire when it reaches zero.
        let prev = inner
            .countdown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
            .unwrap_or(0);
        if prev == 1 || prev == 0 {
            // Only the transition may fire, and only once.
            if !inner.fired.swap(true, Ordering::SeqCst) {
                return true;
            }
        }
        false
    }

    /// Whether the planned failure has already fired.
    pub fn has_fired(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.fired.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Whether a failure is planned at all (fired or not).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let p = FailurePlan::none();
        for _ in 0..100 {
            assert!(!p.should_fail("w0"));
        }
        assert!(!p.has_fired());
    }

    #[test]
    fn fires_once_at_threshold() {
        let p = FailurePlan::fail_node_after("w1", 3);
        assert!(!p.should_fail("w1")); // 1st event
        assert!(!p.should_fail("w1")); // 2nd
        assert!(p.should_fail("w1")); // 3rd: fire
        assert!(p.has_fired());
        assert!(!p.should_fail("w1")); // never again
    }

    #[test]
    fn other_nodes_unaffected() {
        let p = FailurePlan::fail_node_after("w1", 1);
        assert!(!p.should_fail("w0"));
        assert!(p.should_fail("w1"));
        assert!(!p.should_fail("w2"));
    }

    #[test]
    fn concurrent_counting_fires_exactly_once() {
        let p = FailurePlan::fail_node_after("w", 500);
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                let fired = std::sync::Arc::clone(&fired);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        if p.should_fail("w") {
                            fired.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
