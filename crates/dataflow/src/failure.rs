//! Fault injection, re-exported from `se-chaos`.
//!
//! The original one-shot [`FailurePlan`] grew into the scripted
//! [`ChaosPlan`] (sequences of per-incarnation crashes, message faults at
//! the channel seams, broker outages); both live in `se-chaos` and are
//! re-exported here so engine crates keep a single import path. This
//! module adds the one piece that needs the dataflow substrate:
//! [`send_with_chaos`], the seam-injection helper that interprets a
//! [`MsgFaultAction`] against a [`DelaySender`].

pub use se_chaos::{ChaosPlan, CrashPoint, FailurePlan, MsgFaultAction, Seam};

use std::time::Duration;

use crate::delay::DelaySender;
use crate::net::NetConfig;

/// Sends `msg` over `tx` with base `delay`, applying whatever fault the
/// plan scripts for the next message on `seam`. Fault delays are scaled by
/// `net`'s time scale so a script stays meaningful across `SE_TIME_SCALE`s.
///
/// Only *data-plane* messages go through here; control-plane traffic
/// (restore, snapshot markers, failure notifications) is sent directly —
/// the engines assume a reliable failure detector and alignment channel.
pub fn send_with_chaos<T: Clone>(
    plan: &ChaosPlan,
    seam: Seam,
    net: &NetConfig,
    tx: &DelaySender<T>,
    msg: T,
    delay: Duration,
) {
    match plan.on_message(seam) {
        MsgFaultAction::Deliver => tx.send_after(msg, delay),
        MsgFaultAction::Quarantine { extra_us } => {
            // A drop that preserves liveness: with a recovery in between
            // the late copy is generation-fenced (a true loss); without
            // one the run merely stalls.
            tx.send_after(msg, delay + net.scaled(Duration::from_micros(extra_us)));
        }
        MsgFaultAction::Delay { extra_us } => {
            tx.send_after(msg, delay + net.scaled(Duration::from_micros(extra_us)));
        }
        MsgFaultAction::Duplicate { gap_us } => {
            tx.send_after(msg.clone(), delay);
            tx.send_after(msg, delay + net.scaled(Duration::from_micros(gap_us)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::delay_channel;
    use se_chaos::{FaultScript, MessageFault, MsgFaultKind};

    fn plan_with(kind: MsgFaultKind, nth: u64) -> ChaosPlan {
        ChaosPlan::from_script(FaultScript {
            messages: vec![MessageFault {
                seam: Seam::WorkerToWorker,
                nth,
                kind,
            }],
            ..FaultScript::default()
        })
    }

    #[test]
    fn deliver_passes_through() {
        let (tx, rx) = delay_channel();
        let plan = ChaosPlan::none();
        send_with_chaos(
            &plan,
            Seam::WorkerToWorker,
            &NetConfig::fast_test(),
            &tx,
            7u8,
            Duration::ZERO,
        );
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(7));
    }

    #[test]
    fn duplicate_sends_two_copies() {
        let (tx, rx) = delay_channel();
        let plan = plan_with(MsgFaultKind::Duplicate { gap_us: 0 }, 0);
        send_with_chaos(
            &plan,
            Seam::WorkerToWorker,
            &NetConfig::fast_test(),
            &tx,
            7u8,
            Duration::ZERO,
        );
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(7));
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Some(7));
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn quarantine_holds_the_message_back() {
        let (tx, rx) = delay_channel();
        let plan = plan_with(
            MsgFaultKind::Drop {
                quarantine_us: 60_000,
            },
            0,
        );
        send_with_chaos(
            &plan,
            Seam::WorkerToWorker,
            &NetConfig::fast_test(),
            &tx,
            7u8,
            Duration::ZERO,
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            None,
            "still quarantined"
        );
        assert_eq!(rx.recv_timeout(Duration::from_millis(200)), Some(7));
    }

    #[test]
    fn quarantine_scales_with_time_scale() {
        let (tx, rx) = delay_channel();
        let plan = plan_with(
            MsgFaultKind::Drop {
                quarantine_us: 10_000_000,
            },
            0,
        );
        let net = NetConfig {
            time_scale: 0.0,
            ..NetConfig::fast_test()
        };
        send_with_chaos(&plan, Seam::WorkerToWorker, &net, &tx, 7u8, Duration::ZERO);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)),
            Some(7),
            "a 10s quarantine at scale 0 is immediate"
        );
    }
}
