//! Simulated cluster network parameters.
//!
//! The paper's evaluation runs on 14 CPUs across Kafka, the dataflow system
//! and the clients; this reproduction runs on one machine, so message hops
//! carry *simulated* latency. [`NetConfig`] holds the per-hop costs, chosen
//! to match the deployment the paper describes:
//!
//! * StateFun pays a **broker hop** for every ingress/egress/loopback (Kafka
//!   round trips, §3) and a **remote-function hop** both ways for every
//!   function execution (its functions run in an external runtime);
//! * StateFlow pays only a cheap internal **function-to-function hop**
//!   between workers, because "it allows for internal function-to-function
//!   communication and does not require the roundtrips to Kafka" (§4).
//!
//! All durations are multiplied by `time_scale`, letting tests and CI run
//! the same experiments in a fraction of wall-clock time; measured latencies
//! are divided by the scale before reporting, so results are comparable
//! across scales.

use std::time::{Duration, Instant};

/// Burns `d` of CPU time on the calling thread (spin wait by default; see
/// [`service_sleeps`] for the opt-in sleep mode used by the scaling bench).
///
/// Service times model *CPU occupancy* — the thread must be busy, not
/// parked. `thread::sleep` is wrong twice over: it yields the core, and on
/// coarse-timer kernels (e.g. 4.4 with ~1 ms granularity) it inflates
/// sub-millisecond service times by 3–10×, silently recalibrating the
/// simulated cluster.
pub fn burn(d: Duration) {
    if d.is_zero() {
        return;
    }
    if service_sleeps() {
        std::thread::sleep(d);
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Whether service time is simulated by sleeping instead of spinning
/// (`SE_SERVICE_SLEEP=1`, read once).
///
/// Spinning models CPU *occupancy*, sleeping models CPU *independence* —
/// and on a host with fewer cores than simulated service threads the two
/// are irreconcilable: a spinning thread monopolizes its timeslice, so
/// concurrent service burns serialize in wall-clock time and any intra-host
/// parallelism (worker threads, the exec pool) is invisible. Sleep mode
/// trades sub-millisecond timer precision for the scheduling behavior the
/// simulated cluster would have with one core per thread; the scaling
/// bench (`pipeline_sweep`) turns it on by default for exactly that
/// reason, while the latency-calibrated figure benches keep spinning.
pub fn service_sleeps() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("SE_SERVICE_SLEEP")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// Per-hop latency model of the simulated cluster.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One Kafka produce *or* consume hop.
    pub broker_hop: Duration,
    /// One way between a dataflow task and the remote function runtime.
    pub remote_fn_hop: Duration,
    /// One internal worker-to-worker message (StateFlow f2f channel).
    pub f2f_hop: Duration,
    /// Additional cost per KiB of payload ((de)serialization + transfer).
    pub per_kib: Duration,
    /// Scale factor applied to every simulated duration (< 1 speeds up).
    pub time_scale: f64,
}

impl Default for NetConfig {
    /// Values calibrated to reproduce the *shape* of Figures 3 and 4: a
    /// Kafka round trip costs a few milliseconds, a remote-function HTTP hop
    /// slightly less, and internal channels are an order of magnitude
    /// cheaper.
    fn default() -> Self {
        Self {
            broker_hop: Duration::from_micros(2_500),
            remote_fn_hop: Duration::from_micros(1_500),
            f2f_hop: Duration::from_micros(300),
            per_kib: Duration::from_micros(15),
            time_scale: 1.0,
        }
    }
}

impl NetConfig {
    /// A configuration with negligible delays for fast unit tests.
    pub fn fast_test() -> Self {
        Self {
            broker_hop: Duration::from_micros(50),
            remote_fn_hop: Duration::from_micros(30),
            f2f_hop: Duration::from_micros(10),
            per_kib: Duration::ZERO,
            time_scale: 1.0,
        }
    }

    /// Applies the time scale to a raw duration.
    pub fn scaled(&self, d: Duration) -> Duration {
        d.mul_f64(self.time_scale.max(0.0))
    }

    /// Latency of one broker hop for a message of `bytes` bytes.
    pub fn broker_latency(&self, bytes: usize) -> Duration {
        self.scaled(self.broker_hop + self.size_cost(bytes))
    }

    /// Latency of one remote-function hop for a message of `bytes` bytes.
    pub fn remote_fn_latency(&self, bytes: usize) -> Duration {
        self.scaled(self.remote_fn_hop + self.size_cost(bytes))
    }

    /// Latency of one internal f2f hop for a message of `bytes` bytes.
    pub fn f2f_latency(&self, bytes: usize) -> Duration {
        self.scaled(self.f2f_hop + self.size_cost(bytes))
    }

    /// Un-scales a measured duration so reports are scale-independent.
    pub fn unscale(&self, d: Duration) -> Duration {
        if self.time_scale > 0.0 {
            d.div_f64(self.time_scale)
        } else {
            d
        }
    }

    fn size_cost(&self, bytes: usize) -> Duration {
        self.per_kib.mul_f64(bytes as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_applies() {
        let cfg = NetConfig {
            time_scale: 0.5,
            ..NetConfig::default()
        };
        assert_eq!(
            cfg.scaled(Duration::from_millis(10)),
            Duration::from_millis(5)
        );
        let measured = Duration::from_millis(5);
        assert_eq!(cfg.unscale(measured), Duration::from_millis(10));
    }

    #[test]
    fn size_cost_grows_linearly() {
        let cfg = NetConfig::default();
        let small = cfg.broker_latency(0);
        let big = cfg.broker_latency(200 * 1024);
        assert!(big > small);
        assert_eq!(big - small, cfg.per_kib * 200);
    }

    #[test]
    fn relative_hop_order_matches_paper() {
        let cfg = NetConfig::default();
        assert!(
            cfg.f2f_hop < cfg.remote_fn_hop && cfg.remote_fn_hop < cfg.broker_hop,
            "internal channels must be cheapest, broker hops most expensive"
        );
    }

    #[test]
    fn zero_scale_does_not_divide_by_zero() {
        let cfg = NetConfig {
            time_scale: 0.0,
            ..NetConfig::default()
        };
        assert_eq!(cfg.scaled(Duration::from_millis(10)), Duration::ZERO);
        let _ = cfg.unscale(Duration::from_millis(1));
    }
}
