//! Per-partition durable state: WAL + incremental snapshots + recovery.
//!
//! A [`DurableStore`] owns one partition's directory:
//!
//! ```text
//! <dir>/wal.log            append-only changelog (see `crate::wal`)
//! <dir>/base-<epoch>.snap  full state at an epoch cut (tmp+rename, CRC'd)
//! ```
//!
//! **Incremental snapshots.** The WAL *is* the changelog: between two epoch
//! cuts it holds exactly the records the partition applied (entity creates
//! and committed writes — the dirty set), so persisting an epoch costs
//! O(dirty keys): append one `EpochCut` marker and fsync. A *full* base
//! snapshot (O(state)) is only written every `full_snapshot_every` cuts to
//! bound replay length; `full_snapshot_every = 1` degenerates to
//! full-snapshot-per-epoch, the comparison arm of `recovery_bench`.
//!
//! **Recovery** ([`DurableStore::recover`]): pick the newest valid base at
//! or below the target epoch, replay the WAL from that base's cut to the
//! target's cut, stop early at the first checksum/length mismatch (torn
//! tail), then truncate the log at the reached cut so re-executed batches
//! append to a clean lineage. The partition reports the epoch it actually
//! reached; the coordinator falls back to the cluster-wide minimum when
//! some partition could not make the target (see the multi-round restore in
//! `se-stateflow`).
//!
//! **Compaction** ([`DurableStore::compact_below`]): once the *cluster*
//! durable floor (the minimum epoch every partition has made durable) has
//! passed a base, the log prefix up to that base is dead weight; the log is
//! rewritten to start at the base's cut and older bases are deleted. Gating
//! on the cluster floor — not the local one — is what keeps a lagging
//! partition's fallback target recoverable everywhere.
//!
//! **Crash simulation** ([`DurableStore::simulate_crash`]): a plain process
//! crash keeps every written byte (the page cache survives the process);
//! only scripted power-loss faults (`se-chaos`'s `DiskFaultKind`) damage
//! the unsynced tail — torn/lost tail, a frame-aware bit flip, a vanished
//! base snapshot.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use se_chaos::{ChaosPlan, DiskFaultKind};
use se_lang::{EntityRef, EntityState, Symbol, Value};

use crate::state::StateStore;
use crate::wal::{read_wal, FsyncPolicy, WalRecord, WalWriter};

/// Durable-layer knobs (a value type so configs stay `Clone + Debug`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableOptions {
    /// Group-commit fsync policy for the WAL.
    pub policy: FsyncPolicy,
    /// Full base snapshots every this many epoch cuts (≥ 1). `1` writes a
    /// full base at every cut (the "full" snapshot mode); larger values
    /// amortize base cost across incremental epochs.
    pub full_snapshot_every: u64,
    /// **Injected bug** (`SE_CHAOS_INJECT_BUG=wal-no-crc`): skip checksum
    /// verification on replay. Exists so the chaos self-test can prove the
    /// checker catches silently-applied corruption; never set otherwise.
    pub skip_crc: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            policy: FsyncPolicy::OnEpoch,
            full_snapshot_every: 4,
            skip_crc: false,
        }
    }
}

/// One partition's durable storage: WAL writer + base snapshots + the
/// bookkeeping recovery and compaction need.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    node: String,
    plan: ChaosPlan,
    opts: DurableOptions,
    writer: Option<WalWriter>,
    /// Epoch the current `wal.log` starts after (its `BaseRef`).
    wal_base: u64,
    /// `(epoch, end offset)` of every cut in the current log, ascending.
    cuts: Vec<(u64, u64)>,
    /// Epochs with a base snapshot on disk, ascending.
    bases: Vec<u64>,
    /// Cuts since the last base snapshot (drives `full_snapshot_every`).
    cuts_since_base: u64,
    /// Newest `VersionCut` applied by the last [`DurableStore::recover`]
    /// call: the program version the recovered state was migrated to
    /// (`None` = no upgrade committed in the replayed prefix).
    recovered_version: Option<u64>,
    /// Observability handle (noop unless attached via
    /// [`DurableStore::set_obs`]): epoch-cut spans here, WAL append/fsync
    /// spans forwarded to the writer.
    obs: se_obs::Obs,
}

impl DurableStore {
    /// Opens (creating if needed) the partition directory. An existing WAL
    /// is scanned so the cut index and synced prefix are rebuilt; a fresh
    /// directory gets an empty log based at epoch 0.
    pub fn open(
        dir: impl Into<PathBuf>,
        node: impl Into<String>,
        plan: ChaosPlan,
        opts: DurableOptions,
    ) -> io::Result<DurableStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = DurableStore {
            dir,
            node: node.into(),
            plan,
            opts,
            writer: None,
            wal_base: 0,
            cuts: Vec::new(),
            bases: Vec::new(),
            cuts_since_base: 0,
            recovered_version: None,
            obs: se_obs::Obs::noop(),
        };
        store.bases = store.list_bases()?;
        let wal = store.wal_path();
        if wal.exists() {
            let scan = read_wal(&wal, store.opts.skip_crc)?;
            store.index_scan(&scan.records);
            store.writer = Some(WalWriter::reopen(&wal, scan.valid_len, store.opts.policy)?);
        } else {
            store.writer = Some(WalWriter::create(&wal, 0, store.opts.policy)?);
        }
        Ok(store)
    }

    /// Attaches an observability handle to the store and its WAL writer.
    /// Survives crash/recover cycles: reopened writers re-inherit it.
    pub fn set_obs(&mut self, obs: se_obs::Obs) {
        if let Some(w) = self.writer.as_mut() {
            w.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn base_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("base-{epoch:020}.snap"))
    }

    /// Base snapshot epochs present on disk, ascending.
    fn list_bases(&self) -> io::Result<Vec<u64>> {
        let mut bases = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(epoch) = name
                .strip_prefix("base-")
                .and_then(|s| s.strip_suffix(".snap"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                bases.push(epoch);
            }
        }
        bases.sort_unstable();
        Ok(bases)
    }

    /// Rebuilds `wal_base`/`cuts` from a scan of the current log.
    fn index_scan(&mut self, records: &[(u64, WalRecord)]) {
        self.wal_base = match records.first() {
            Some((_, WalRecord::BaseRef { epoch })) => *epoch,
            _ => 0,
        };
        self.cuts = records
            .iter()
            .filter_map(|(end, r)| match r {
                WalRecord::EpochCut { epoch } => Some((*epoch, *end)),
                _ => None,
            })
            .collect();
        self.cuts_since_base = match self.bases.last() {
            Some(base) => self.cuts.iter().filter(|(e, _)| e > base).count() as u64,
            None => self.cuts.len() as u64,
        };
    }

    fn writer(&mut self) -> io::Result<&mut WalWriter> {
        // After `simulate_crash` the writer is closed; the partition is
        // dead and must not log anything until `recover` reopens it.
        self.writer
            .as_mut()
            .ok_or_else(|| io::Error::other("durable store closed (crashed partition)"))
    }

    /// Logs an entity create (the control-plane path).
    pub fn log_create(&mut self, entity: EntityRef, state: &EntityState) -> io::Result<()> {
        let record = WalRecord::Create {
            entity,
            state: state.clone(),
        };
        self.append(&record)
    }

    /// Logs one committed transaction's writes, stamped with its batch.
    pub fn log_commit(
        &mut self,
        batch: u64,
        writes: &BTreeMap<EntityRef, BTreeMap<Symbol, Value>>,
    ) -> io::Result<()> {
        let record = WalRecord::Commit {
            batch,
            writes: writes
                .iter()
                .map(|(entity, attrs)| {
                    (
                        *entity,
                        attrs.iter().map(|(a, v)| (*a, v.clone())).collect(),
                    )
                })
                .collect(),
        };
        self.append(&record)
    }

    fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let plan = self.plan.clone();
        let node = self.node.clone();
        self.writer()?.append(record, || plan.fsync_fault(&node))
    }

    /// Logs a committed live upgrade to `version`: every record after this
    /// marker (including it, on replay) executed under the new program. The
    /// caller appends it *after* the migration pass's commit records, so a
    /// replay that reaches the marker has the migrated state.
    pub fn log_version_cut(&mut self, version: u64) -> io::Result<()> {
        self.append(&WalRecord::VersionCut { version })
    }

    /// The newest program version the last [`DurableStore::recover`] call
    /// replayed a `VersionCut` for, if any. Advisory: the coordinator's
    /// epoch→version map is authoritative across compaction (which may drop
    /// old cut records with the prefix they sit in).
    pub fn recovered_version(&self) -> Option<u64> {
        self.recovered_version
    }

    /// Marks epoch `epoch`'s cut: appends the marker (fsynced per policy —
    /// the epoch is durable exactly when this record is) and writes a full
    /// base snapshot every `full_snapshot_every` cuts.
    pub fn cut_epoch(&mut self, epoch: u64, state: &StateStore) -> io::Result<()> {
        let t0 = self.obs.now_ns();
        self.append(&WalRecord::EpochCut { epoch })?;
        let end = self.writer()?.written_len();
        self.cuts.push((epoch, end));
        self.cuts_since_base += 1;
        if self.cuts_since_base >= self.opts.full_snapshot_every {
            self.write_base(epoch, state)?;
            self.cuts_since_base = 0;
        }
        self.obs
            .stage_span(se_obs::Stage::EpochCut, epoch, t0, self.obs.now_ns());
        Ok(())
    }

    /// Writes a full base snapshot at `epoch` (tmp + rename, every frame
    /// CRC'd, fsynced before the rename so a crash never leaves a torn
    /// base under the final name).
    fn write_base(&mut self, epoch: u64, state: &StateStore) -> io::Result<()> {
        let tmp = self.dir.join(format!("base-{epoch:020}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&WalRecord::BaseRef { epoch }.encode_frame())?;
            // Deterministic file bytes: entities in key order.
            let mut entities: Vec<(&EntityRef, &EntityState)> = state.iter().collect();
            entities.sort_by_key(|(r, _)| **r);
            for (entity, st) in entities {
                let record = WalRecord::Create {
                    entity: *entity,
                    state: st.clone(),
                };
                f.write_all(&record.encode_frame())?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, self.base_path(epoch))?;
        self.bases.push(epoch);
        self.bases.sort_unstable();
        Ok(())
    }

    /// Loads a base snapshot, validating every frame. Returns `None` when
    /// the file is missing, torn, or not a well-formed base for `epoch`.
    fn load_base(&self, epoch: u64) -> io::Result<Option<StateStore>> {
        let path = self.base_path(epoch);
        if !path.exists() {
            return Ok(None);
        }
        let scan = read_wal(&path, self.opts.skip_crc)?;
        if scan.truncated {
            return Ok(None);
        }
        let mut records = scan.records.into_iter();
        match records.next() {
            Some((_, WalRecord::BaseRef { epoch: e })) if e == epoch => {}
            _ => return Ok(None),
        }
        let mut store = StateStore::new();
        for (_, record) in records {
            match record {
                WalRecord::Create { entity, state } => store.insert(entity, state),
                _ => return Ok(None),
            }
        }
        Ok(Some(store))
    }

    /// The newest epoch this partition can serve a recovery for from disk
    /// alone, under power-loss semantics: the newest cut inside the synced
    /// WAL prefix, or the newest base snapshot, whichever is later.
    pub fn last_durable_epoch(&self) -> Option<u64> {
        let synced = self.writer.as_ref().map(|w| w.synced_len()).unwrap_or(0);
        let synced_cut = self
            .cuts
            .iter()
            .rev()
            .find(|(_, end)| *end <= synced)
            .map(|(e, _)| *e)
            .or(if self.wal_base > 0 {
                Some(self.wal_base)
            } else {
                None
            });
        match (synced_cut, self.bases.last().copied()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Recovers this partition's state from disk.
    ///
    /// With `target = Some(t)`: loads the newest valid base ≤ `t`, replays
    /// the WAL to `t`'s cut (stopping early at corruption), truncates the
    /// log at the cut actually reached and deletes bases beyond it (they
    /// belong to the abandoned lineage). Returns the reconstructed state
    /// and the epoch reached — `None` meaning "initial empty state", which
    /// happens when nothing recoverable precedes `t`.
    ///
    /// With `target = None`: the protocol is restarting from the beginning
    /// of the source; all durable state is reset.
    pub fn recover(&mut self, target: Option<u64>) -> io::Result<(StateStore, Option<u64>)> {
        self.writer = None;
        self.recovered_version = None;
        let Some(target) = target else {
            self.reset_all()?;
            return Ok((StateStore::new(), None));
        };
        let wal = self.wal_path();
        let scan = if wal.exists() {
            read_wal(&wal, self.opts.skip_crc)?
        } else {
            crate::wal::WalScan {
                records: Vec::new(),
                valid_len: 0,
                truncated: false,
            }
        };
        self.bases = self.list_bases()?;
        self.index_scan(&scan.records);

        // Base frame end (records at or before it precede the log's first
        // epoch) and the cut offsets of the valid prefix.
        let base_frame_end = match scan.records.first() {
            Some((end, WalRecord::BaseRef { .. })) => *end,
            _ => 0,
        };
        // Choose the newest base snapshot the log can replay forward from:
        // at or below the target, and positioned in this log (== wal_base,
        // or owning a cut record in the valid prefix).
        let mut chosen: Option<(u64, StateStore, u64)> = None; // (epoch, state, start offset)
        for &epoch in self.bases.iter().rev() {
            if epoch > target {
                continue;
            }
            let start = if epoch == self.wal_base {
                Some(base_frame_end)
            } else {
                self.cuts.iter().find(|(e, _)| *e == epoch).map(|(_, o)| *o)
            };
            let Some(start) = start else { continue };
            if let Some(state) = self.load_base(epoch)? {
                chosen = Some((epoch, state, start));
                break;
            }
        }
        let (mut reached, mut store, start) = match chosen {
            Some((epoch, state, start)) => (epoch, state, start),
            None if self.wal_base == 0 => (0, StateStore::new(), base_frame_end),
            None => {
                // The log was compacted past every surviving base: nothing
                // on disk reaches back to the beginning, so the partition
                // can only rejoin from the initial state.
                self.reset_all()?;
                return Ok((StateStore::new(), None));
            }
        };
        // Pass 1: find the cut to recover to — the newest cut at or below
        // the target past the base's position. Records beyond it belong to
        // an epoch that never cut (or lies past the target); re-executed
        // batches will re-log them, so that tail must not be applied.
        let mut valid_end = start;
        for (end, record) in &scan.records {
            if *end <= start {
                continue;
            }
            if let WalRecord::EpochCut { epoch } = record {
                if *epoch > target {
                    break;
                }
                reached = *epoch;
                valid_end = *end;
                if *epoch == target {
                    break;
                }
            }
        }
        // Pass 2: apply exactly the records up to that cut.
        self.recovered_version = None;
        for (end, record) in &scan.records {
            if *end <= start || *end > valid_end {
                continue;
            }
            match record {
                WalRecord::Create { entity, state } => store.insert(*entity, state.clone()),
                WalRecord::Commit { writes, .. } => {
                    for (entity, attrs) in writes {
                        for (attr, value) in attrs {
                            store
                                .apply_write(entity, *attr, value.clone())
                                .map_err(|e| io::Error::other(format!("WAL replay: {e}")))?;
                        }
                    }
                }
                WalRecord::VersionCut { version } => {
                    // The migration's writes precede the marker, so reaching
                    // it means the recovered state is already migrated.
                    self.recovered_version = Some(*version);
                }
                WalRecord::EpochCut { .. } | WalRecord::BaseRef { .. } => {}
            }
        }
        self.rebuild_at(reached, valid_end, target)?;
        Ok((store, if reached == 0 { None } else { Some(reached) }))
    }

    /// Truncates the log at `valid_end`, drops bases beyond `reached`, and
    /// reopens the writer on the surviving prefix.
    fn rebuild_at(&mut self, reached: u64, valid_end: u64, _target: u64) -> io::Result<()> {
        for &epoch in self.bases.iter().filter(|&&e| e > reached) {
            fs::remove_file(self.base_path(epoch)).ok();
        }
        self.bases.retain(|&e| e <= reached);
        self.cuts
            .retain(|(e, end)| *e <= reached && *end <= valid_end);
        self.cuts_since_base = match self.bases.last() {
            Some(base) => self.cuts.iter().filter(|(e, _)| e > base).count() as u64,
            None => self.cuts.len() as u64,
        };
        let wal = self.wal_path();
        if wal.exists() {
            self.writer = Some(WalWriter::reopen(&wal, valid_end, self.opts.policy)?);
        } else {
            self.writer = Some(WalWriter::create(&wal, 0, self.opts.policy)?);
            self.wal_base = 0;
        }
        self.set_obs(self.obs.clone());
        Ok(())
    }

    /// Deletes every base and restarts the log at epoch 0.
    fn reset_all(&mut self) -> io::Result<()> {
        for &epoch in &self.bases {
            fs::remove_file(self.base_path(epoch)).ok();
        }
        self.bases.clear();
        self.cuts.clear();
        self.cuts_since_base = 0;
        self.wal_base = 0;
        self.writer = Some(WalWriter::create(&self.wal_path(), 0, self.opts.policy)?);
        self.set_obs(self.obs.clone());
        Ok(())
    }

    /// Compacts the log below the **cluster** durable floor: rewrites
    /// `wal.log` to start at the newest base ≤ `floor` and deletes older
    /// bases. A no-op until such a base exists past the current log base.
    ///
    /// The rewrite fsyncs what it copies (a deliberate maintenance write),
    /// so compaction also promotes the copied tail to durable.
    pub fn compact_below(&mut self, floor: u64) -> io::Result<()> {
        let Some(&keep) = self.bases.iter().rev().find(|&&e| e <= floor) else {
            return Ok(());
        };
        if keep <= self.wal_base {
            return Ok(());
        }
        let Some((_, cut_end)) = self.cuts.iter().find(|(e, _)| *e == keep).copied() else {
            return Ok(());
        };
        let wal = self.wal_path();
        let bytes = fs::read(&wal)?;
        if cut_end as usize > bytes.len() {
            return Ok(());
        }
        let tmp = self.dir.join("wal.log.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&WalRecord::BaseRef { epoch: keep }.encode_frame())?;
            f.write_all(&bytes[cut_end as usize..])?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &wal)?;
        let shift = |off: u64| -> u64 {
            let new_base_end = WalRecord::BaseRef { epoch: keep }.encode_frame().len() as u64;
            off - cut_end + new_base_end
        };
        self.cuts = self
            .cuts
            .iter()
            .filter(|(e, _)| *e > keep)
            .map(|(e, off)| (*e, shift(*off)))
            .collect();
        self.wal_base = keep;
        for &epoch in self.bases.iter().filter(|&&e| e < keep) {
            fs::remove_file(self.base_path(epoch)).ok();
        }
        self.bases.retain(|&e| e >= keep);
        let len = fs::metadata(&wal)?.len();
        self.writer = Some(WalWriter::reopen(&wal, len, self.opts.policy)?);
        self.set_obs(self.obs.clone());
        Ok(())
    }

    /// Simulates this partition crashing: closes the writer and applies the
    /// chaos plan's next crash-time disk fault (if any). Without a fault,
    /// every written byte survives — the page cache outlives the process.
    pub fn simulate_crash(&mut self) -> io::Result<()> {
        let (written, synced) = match &self.writer {
            Some(w) => (w.written_len(), w.synced_len()),
            None => {
                let len = fs::metadata(self.wal_path()).map(|m| m.len()).unwrap_or(0);
                (len, len)
            }
        };
        self.writer = None;
        let Some(fault) = self.plan.crash_disk_fault(&self.node) else {
            return Ok(());
        };
        let wal = self.wal_path();
        match fault {
            DiskFaultKind::LostTail => {
                // Power loss: everything past the last fsync is gone.
                if wal.exists() {
                    let f = fs::OpenOptions::new().write(true).open(&wal)?;
                    f.set_len(synced)?;
                }
            }
            DiskFaultKind::TornTail { bytes } => {
                // The tail is cut mid-record, but never into synced data.
                if wal.exists() {
                    let keep = written.saturating_sub(bytes).max(synced);
                    let f = fs::OpenOptions::new().write(true).open(&wal)?;
                    f.set_len(keep)?;
                }
            }
            DiskFaultKind::BitFlip => {
                if wal.exists() {
                    let mut bytes = fs::read(&wal)?;
                    if let Some(at) = last_data_payload_end(&bytes, synced) {
                        bytes[at] ^= 1;
                        fs::write(&wal, &bytes)?;
                    }
                }
            }
            DiskFaultKind::MissingSnapshot => {
                if let Some(&newest) = self.bases.last() {
                    fs::remove_file(self.base_path(newest)).ok();
                    self.bases.pop();
                }
            }
            // Fsync faults fire at the fsync hook, not at crash time.
            DiskFaultKind::SlowFsync { .. } | DiskFaultKind::FailedFsync { .. } => {}
        }
        Ok(())
    }

    /// Whether the writer is open (the partition is live).
    pub fn is_open(&self) -> bool {
        self.writer.is_some()
    }

    /// The partition directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes currently in the log (written, not necessarily synced).
    pub fn wal_len(&self) -> u64 {
        self.writer.as_ref().map(|w| w.written_len()).unwrap_or(0)
    }
}

/// Finds the index of the last payload byte of the last complete `Create`/
/// `Commit` frame that starts inside the unsynced region `[synced, ..)` —
/// the frame-aware bit-flip target. Flipping a *data* byte keeps the frame
/// well-formed (only the CRC can notice), which is exactly the silent
/// corruption the `wal-no-crc` self-test needs to slip past a checksum-skip
/// bug; flipping framing bytes would degrade into an honest torn tail.
fn last_data_payload_end(buf: &[u8], synced: u64) -> Option<usize> {
    let mut pos = 0usize;
    let mut target = None;
    while buf.len() - pos >= crate::wal::FRAME_HEADER {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let payload_start = pos + crate::wal::FRAME_HEADER;
        if len > crate::wal::MAX_RECORD_LEN as usize || buf.len() - payload_start < len {
            break;
        }
        // Record tag 1 = Create, 2 = Commit (see `WalRecord::encode`).
        let tag = buf.get(payload_start).copied().unwrap_or(255);
        if pos as u64 >= synced && (tag == 1 || tag == 2) && len >= 2 {
            target = Some(payload_start + len - 1);
        }
        pos = payload_start + len;
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(policy: FsyncPolicy, full_every: u64) -> DurableOptions {
        DurableOptions {
            policy,
            full_snapshot_every: full_every,
            skip_crc: false,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "se-durable-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn acct(k: &str) -> EntityRef {
        EntityRef::new("Account", k)
    }

    fn commit_writes(k: &str, balance: i64) -> BTreeMap<EntityRef, BTreeMap<Symbol, Value>> {
        let mut attrs = BTreeMap::new();
        attrs.insert(Symbol::from("balance"), Value::Int(balance));
        let mut writes = BTreeMap::new();
        writes.insert(acct(k), attrs);
        writes
    }

    /// Drives `n` epochs of single-write batches into a fresh store.
    fn populate(store: &mut DurableStore, state: &mut StateStore, epochs: u64) {
        for epoch in 1..=epochs {
            let key = format!("k{epoch}");
            let entity = acct(&key);
            let init = EntityState::from([("balance", Value::Int(0))]);
            state.insert(entity, init.clone());
            store.log_create(entity, &init).unwrap();
            state
                .apply_write(&entity, "balance", Value::Int(epoch as i64))
                .unwrap();
            store
                .log_commit(epoch, &commit_writes(&key, epoch as i64))
                .unwrap();
            store.cut_epoch(epoch, state).unwrap();
        }
    }

    #[test]
    fn recovery_replays_base_plus_wal_tail() {
        let dir = tempdir("base-plus-tail");
        let plan = ChaosPlan::none();
        let mut store =
            DurableStore::open(&dir, "w0", plan.clone(), opts(FsyncPolicy::OnEpoch, 2)).unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 5);
        // Bases at epochs 2 and 4; epoch 5 lives only in the WAL tail.
        let (recovered, reached) = store.recover(Some(5)).unwrap();
        assert_eq!(reached, Some(5));
        assert_eq!(recovered.len(), 5);
        for e in 1..=5i64 {
            let got = recovered.get(&acct(&format!("k{e}"))).unwrap();
            assert_eq!(got.get("balance"), Some(&Value::Int(e)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_to_earlier_target_truncates_the_future() {
        let dir = tempdir("earlier-target");
        let mut store =
            DurableStore::open(&dir, "w0", ChaosPlan::none(), opts(FsyncPolicy::OnEpoch, 2))
                .unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 6);
        let (mut recovered, reached) = store.recover(Some(3)).unwrap();
        assert_eq!(reached, Some(3));
        assert_eq!(
            recovered.len(),
            3,
            "entities created after epoch 3 are gone"
        );
        // Bases beyond the recovery point belong to the dead lineage.
        assert!(
            store.bases.iter().all(|&e| e <= 3),
            "bases: {:?}",
            store.bases
        );
        // The lineage continues cleanly: epoch 4 can be re-cut.
        store.log_commit(7, &commit_writes("k1", 99)).unwrap();
        recovered
            .apply_write(&acct("k1"), "balance", Value::Int(99))
            .unwrap();
        store.cut_epoch(4, &recovered).unwrap();
        let (again, reached2) = store.recover(Some(4)).unwrap();
        assert_eq!(reached2, Some(4));
        assert_eq!(
            again.get(&acct("k1")).unwrap().get("balance"),
            Some(&Value::Int(99))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovers_to_last_durable_prefix() {
        let dir = tempdir("torn");
        let script = se_chaos::FaultScript {
            disk: vec![se_chaos::DiskFault {
                node: "w0".into(),
                kind: DiskFaultKind::LostTail,
            }],
            ..Default::default()
        };
        let plan = ChaosPlan::from_script(script);
        let mut store =
            DurableStore::open(&dir, "w0", plan, opts(FsyncPolicy::OnEpoch, 100)).unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 3);
        // Epoch 3 cut is synced (OnEpoch); writes after it are not.
        store.log_commit(99, &commit_writes("k1", 1234)).unwrap();
        assert_eq!(store.last_durable_epoch(), Some(3));
        store.simulate_crash().unwrap();
        let (recovered, reached) = store.recover(Some(3)).unwrap();
        assert_eq!(reached, Some(3));
        assert_eq!(
            recovered.get(&acct("k1")).unwrap().get("balance"),
            Some(&Value::Int(1)),
            "the unsynced write must not survive the lost tail"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_falls_back_to_full_replay() {
        let dir = tempdir("missing-snap");
        let script = se_chaos::FaultScript {
            disk: vec![se_chaos::DiskFault {
                node: "w0".into(),
                kind: DiskFaultKind::MissingSnapshot,
            }],
            ..Default::default()
        };
        let plan = ChaosPlan::from_script(script);
        let mut store =
            DurableStore::open(&dir, "w0", plan, opts(FsyncPolicy::OnEpoch, 3)).unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 4);
        store.simulate_crash().unwrap(); // deletes base-3
        let (recovered, reached) = store.recover(Some(4)).unwrap();
        assert_eq!(reached, Some(4), "full log replay still reaches the target");
        assert_eq!(recovered.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_truncates_with_crc_and_slips_through_without() {
        for (skip_crc, expect_balance) in [(false, 3), (true, 3 + (1i64 << 56))] {
            let dir = tempdir(if skip_crc { "flip-buggy" } else { "flip" });
            let script = se_chaos::FaultScript {
                disk: vec![se_chaos::DiskFault {
                    node: "w0".into(),
                    kind: DiskFaultKind::BitFlip,
                }],
                ..Default::default()
            };
            let plan = ChaosPlan::from_script(script);
            let mut o = opts(FsyncPolicy::Never, 100);
            o.skip_crc = skip_crc;
            let mut store = DurableStore::open(&dir, "w0", plan, o).unwrap();
            let mut state = StateStore::new();
            populate(&mut store, &mut state, 3);
            store.simulate_crash().unwrap();
            let (recovered, _) = store.recover(Some(3)).unwrap();
            // The flip hits the last commit's balance Int (epoch 3, value
            // 3). With CRC the honest reader truncates *before* the flip —
            // losing the whole tail back past the corrupt record — so k3
            // either vanishes or keeps an unflipped value; without CRC the
            // corrupted value is silently applied.
            let balance = recovered
                .get(&acct("k3"))
                .and_then(|s| s.get("balance").cloned());
            if skip_crc {
                assert_eq!(
                    balance,
                    Some(Value::Int(expect_balance)),
                    "bug applies the flip"
                );
            } else {
                assert_ne!(
                    balance,
                    Some(Value::Int(3 + (1i64 << 56))),
                    "honest CRC must never apply a flipped record"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn compaction_preserves_recovery_at_and_after_the_floor() {
        let dir = tempdir("compact");
        let mut store =
            DurableStore::open(&dir, "w0", ChaosPlan::none(), opts(FsyncPolicy::OnEpoch, 2))
                .unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 6);
        let before = store.wal_len();
        store.compact_below(4).unwrap();
        assert!(store.wal_len() < before, "compaction must shrink the log");
        assert_eq!(store.wal_base, 4);
        assert!(store.bases.iter().all(|&e| e >= 4));
        // Descending order: recovering to an earlier target truncates the
        // later epochs by design, so each step's target must still exist.
        for target in (4..=6).rev() {
            let (recovered, reached) = store.recover(Some(target)).unwrap();
            assert_eq!(reached, Some(target));
            assert_eq!(recovered.len() as u64, target);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_to_none_resets_everything() {
        let dir = tempdir("reset");
        let mut store =
            DurableStore::open(&dir, "w0", ChaosPlan::none(), opts(FsyncPolicy::OnEpoch, 2))
                .unwrap();
        let mut state = StateStore::new();
        populate(&mut store, &mut state, 4);
        let (recovered, reached) = store.recover(None).unwrap();
        assert_eq!(reached, None);
        assert!(recovered.is_empty());
        assert_eq!(store.bases.len(), 0);
        // And the store is writable again from scratch.
        store
            .log_create(acct("fresh"), &EntityState::new())
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
