//! Consistent-snapshot storage (Chandy–Lamport / Flink-style epochs).
//!
//! "For fault-tolerance StateFlow implements the consistent snapshots
//! protocol alongside a replayable source as an ingress, allowing StateFlow
//! to rollback messages and restore the snapshot upon failure" (§3).
//!
//! The store keeps, per epoch, one state blob per participating node plus
//! the source offsets at the snapshot point. An epoch is *complete* once
//! every expected node has contributed; recovery always restores the latest
//! complete epoch — incomplete epochs (a failure mid-snapshot) are ignored.
//!
//! **Retention.** Epochs are pruned automatically: once a newer epoch
//! completes, all but the last [`SnapshotStore::retention`] complete epochs
//! are dropped, along with any *older* incomplete epochs (dead mid-snapshot
//! failures). In-flight epochs newer than the latest complete one are never
//! touched, and the latest complete epoch is always retained, so recovery
//! semantics are unchanged — without retention the store grows without bound
//! (every epoch holds a full copy of every node's state).
//!
//! **Durable-recovery pinning.** With the durable layer enabled, a lagging
//! partition's newest on-disk epoch can trail the newest complete epoch by
//! more than the retention window; that epoch is the *cluster recovery
//! base* and its source offsets must stay resolvable or a disk recovery
//! could never rejoin the source. [`SnapshotStore::set_pin_floor`] lowers
//! the effective prune cutoff to the pinned epoch until the pin advances.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Epoch number; epoch 0 is "initial state".
pub type Epoch = u64;

/// Complete epochs kept by default (current + one fallback).
pub const DEFAULT_SNAPSHOT_RETENTION: usize = 2;

#[derive(Debug, Clone)]
struct EpochData<S> {
    expected: usize,
    states: BTreeMap<String, S>,
    source_offsets: BTreeMap<String, u64>,
}

impl<S> EpochData<S> {
    fn is_complete(&self) -> bool {
        self.states.len() >= self.expected
    }
}

/// Thread-safe snapshot store for node states of type `S`.
#[derive(Debug)]
pub struct SnapshotStore<S> {
    epochs: Mutex<BTreeMap<Epoch, EpochData<S>>>,
    /// Complete epochs to keep; 0 = unlimited.
    retention: usize,
    /// Everything below this epoch has been pruned; late contributions to
    /// pruned epochs are dropped silently (they are stale by definition),
    /// while contributions to a never-begun epoch above the watermark are
    /// still a protocol bug.
    pruned_below: Mutex<Epoch>,
    /// Epochs at or above this are pinned against pruning: some partition
    /// may still need them as its durable-recovery base.
    pin_floor: Mutex<Option<Epoch>>,
}

impl<S: Clone> Default for SnapshotStore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone> SnapshotStore<S> {
    /// An empty store with the default retention policy
    /// ([`DEFAULT_SNAPSHOT_RETENTION`] complete epochs).
    pub fn new() -> Self {
        Self::with_retention(DEFAULT_SNAPSHOT_RETENTION)
    }

    /// An empty store keeping the last `keep_complete` complete epochs
    /// (`0` disables pruning entirely).
    pub fn with_retention(keep_complete: usize) -> Self {
        Self {
            epochs: Mutex::new(BTreeMap::new()),
            retention: keep_complete,
            pruned_below: Mutex::new(0),
            pin_floor: Mutex::new(None),
        }
    }

    /// The configured retention (complete epochs kept; 0 = unlimited).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Pins epoch `floor` and everything newer against pruning. Called by
    /// the coordinator with the cluster durable floor (the minimum epoch
    /// every partition has made durable): a disk recovery may fall back to
    /// it and must still find its source offsets here. Raising the pin
    /// releases previously pinned epochs to the normal retention policy;
    /// the pin never moves backwards (epochs below it may be gone already).
    pub fn set_pin_floor(&self, floor: Epoch) {
        let mut pin = self.pin_floor.lock();
        match *pin {
            Some(cur) if cur >= floor => {}
            _ => *pin = Some(floor),
        }
    }

    /// The current durable-recovery pin, if any.
    pub fn pin_floor(&self) -> Option<Epoch> {
        *self.pin_floor.lock()
    }

    /// Drops epochs outside the retention window. Called whenever an epoch
    /// completes; keeps the last `retention` complete epochs plus anything
    /// newer (in-flight snapshots).
    fn prune(&self, epochs: &mut BTreeMap<Epoch, EpochData<S>>) {
        if self.retention == 0 {
            return;
        }
        let complete: Vec<Epoch> = epochs
            .iter()
            .filter(|(_, d)| d.is_complete())
            .map(|(e, _)| *e)
            .collect();
        if complete.len() <= self.retention {
            return;
        }
        // Oldest epoch that stays: the K-th newest complete one. Older
        // incomplete epochs are dead (their snapshot can never be restored
        // in preference to a newer complete one).
        let mut cutoff = complete[complete.len() - self.retention];
        // A pinned durable-recovery base lowers the cutoff: deleting it
        // would strand every partition whose disk state reaches back to it.
        if let Some(pin) = *self.pin_floor.lock() {
            cutoff = cutoff.min(pin);
        }
        epochs.retain(|e, _| *e >= cutoff);
        let mut watermark = self.pruned_below.lock();
        *watermark = (*watermark).max(cutoff);
    }

    /// Declares a new epoch and how many node contributions complete it.
    pub fn begin_epoch(&self, epoch: Epoch, expected_nodes: usize) {
        let mut g = self.epochs.lock();
        g.entry(epoch).or_insert(EpochData {
            expected: expected_nodes,
            states: BTreeMap::new(),
            source_offsets: BTreeMap::new(),
        });
    }

    /// Stores node `node`'s state for `epoch`.
    ///
    /// # Panics
    /// Panics if the epoch was never begun — contributing to an undeclared
    /// epoch is a protocol bug.
    pub fn put(&self, epoch: Epoch, node: &str, state: S) {
        let mut g = self.epochs.lock();
        let Some(data) = g.get_mut(&epoch) else {
            assert!(
                epoch < *self.pruned_below.lock(),
                "epoch must be begun before contributions"
            );
            return; // stale contribution to a pruned epoch
        };
        data.states.insert(node.to_owned(), state);
        if data.is_complete() {
            self.prune(&mut g);
        }
    }

    /// Records a source's read offset at the epoch boundary.
    pub fn put_source_offset(&self, epoch: Epoch, source: &str, offset: u64) {
        let mut g = self.epochs.lock();
        let Some(data) = g.get_mut(&epoch) else {
            assert!(
                epoch < *self.pruned_below.lock(),
                "epoch must be begun before contributions"
            );
            return; // stale contribution to a pruned epoch
        };
        data.source_offsets.insert(source.to_owned(), offset);
    }

    /// Whether all expected nodes contributed to `epoch`.
    pub fn is_complete(&self, epoch: Epoch) -> bool {
        self.epochs
            .lock()
            .get(&epoch)
            .map(|d| d.states.len() >= d.expected)
            .unwrap_or(false)
    }

    /// The newest complete epoch, if any.
    pub fn latest_complete(&self) -> Option<Epoch> {
        let g = self.epochs.lock();
        g.iter()
            .rev()
            .find(|(_, d)| d.states.len() >= d.expected)
            .map(|(e, _)| *e)
    }

    /// Node `node`'s state at `epoch`.
    pub fn get(&self, epoch: Epoch, node: &str) -> Option<S> {
        self.epochs
            .lock()
            .get(&epoch)
            .and_then(|d| d.states.get(node).cloned())
    }

    /// Source offset recorded at `epoch`.
    pub fn source_offset(&self, epoch: Epoch, source: &str) -> Option<u64> {
        self.epochs
            .lock()
            .get(&epoch)
            .and_then(|d| d.source_offsets.get(source).copied())
    }

    /// Drops all epochs older than `keep_from` (checkpoint retention).
    /// A durable-recovery pin below `keep_from` clamps the cut.
    pub fn truncate_before(&self, keep_from: Epoch) {
        let keep_from = match *self.pin_floor.lock() {
            Some(pin) => keep_from.min(pin),
            None => keep_from,
        };
        self.epochs.lock().retain(|e, _| *e >= keep_from);
    }

    /// Number of stored epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_completion() {
        let store = SnapshotStore::<Vec<u8>>::new();
        store.begin_epoch(1, 2);
        store.put(1, "w0", vec![1]);
        assert!(!store.is_complete(1));
        assert_eq!(store.latest_complete(), None);
        store.put(1, "w1", vec![2]);
        assert!(store.is_complete(1));
        assert_eq!(store.latest_complete(), Some(1));
        assert_eq!(store.get(1, "w0"), Some(vec![1]));
    }

    #[test]
    fn latest_complete_skips_incomplete() {
        let store = SnapshotStore::<u32>::new();
        store.begin_epoch(1, 1);
        store.put(1, "w0", 10);
        store.begin_epoch(2, 2);
        store.put(2, "w0", 20); // w1 never contributes: epoch 2 incomplete
        assert_eq!(
            store.latest_complete(),
            Some(1),
            "incomplete epoch must be ignored"
        );
    }

    #[test]
    fn source_offsets_travel_with_epoch() {
        let store = SnapshotStore::<u32>::new();
        store.begin_epoch(3, 1);
        store.put(3, "w0", 1);
        store.put_source_offset(3, "ingress", 42);
        assert_eq!(store.source_offset(3, "ingress"), Some(42));
        assert_eq!(store.source_offset(3, "other"), None);
    }

    #[test]
    fn truncation_retains_recent() {
        let store = SnapshotStore::<u32>::new();
        for e in 1..=5 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        store.truncate_before(4);
        assert_eq!(store.epoch_count(), 2);
        assert_eq!(store.latest_complete(), Some(5));
        assert_eq!(store.get(3, "w0"), None);
    }

    #[test]
    #[should_panic(expected = "begun")]
    fn contribution_to_unknown_epoch_panics() {
        let store = SnapshotStore::<u32>::new();
        store.put(9, "w0", 1);
    }

    #[test]
    fn retention_prunes_all_but_last_k_complete() {
        let store = SnapshotStore::<u32>::with_retention(2);
        for e in 1..=6 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        assert_eq!(store.epoch_count(), 2, "only the last 2 complete epochs");
        assert_eq!(store.latest_complete(), Some(6));
        assert_eq!(store.get(5, "w0"), Some(5), "fallback epoch retained");
        assert_eq!(store.get(4, "w0"), None, "older epochs pruned");
    }

    #[test]
    fn retention_never_touches_newer_inflight_epochs() {
        let store = SnapshotStore::<u32>::with_retention(1);
        store.begin_epoch(1, 1);
        store.put(1, "w0", 1);
        // Epoch 2 is in flight (2 expected, 1 contributed) and newer than
        // the latest complete epoch — it must survive pruning.
        store.begin_epoch(2, 2);
        store.put(2, "w0", 2);
        assert_eq!(store.latest_complete(), Some(1));
        assert_eq!(store.get(2, "w0"), Some(2), "in-flight epoch untouched");
        store.put(2, "w1", 2);
        assert_eq!(store.latest_complete(), Some(2));
        assert_eq!(store.get(1, "w0"), None, "superseded epoch pruned");
    }

    #[test]
    fn stale_contribution_to_pruned_epoch_is_dropped() {
        let store = SnapshotStore::<u32>::with_retention(1);
        for e in 1..=3 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        // Epoch 1 was pruned; a late (stale) contribution must be a no-op,
        // not a panic — the contributor simply lost the race with retention.
        store.put(1, "w9", 99);
        store.put_source_offset(1, "ingress", 7);
        assert_eq!(store.get(1, "w9"), None);
        assert_eq!(store.latest_complete(), Some(3));
    }

    #[test]
    fn retention_drops_dead_incomplete_epochs() {
        let store = SnapshotStore::<u32>::with_retention(1);
        // Epoch 1 never completes (mid-snapshot failure) …
        store.begin_epoch(1, 2);
        store.put(1, "w0", 1);
        // … then two newer epochs complete: epoch 1 is dead weight.
        for e in 2..=3 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        assert_eq!(store.latest_complete(), Some(3));
        assert_eq!(store.get(1, "w0"), None, "dead incomplete epoch pruned");
        assert_eq!(store.epoch_count(), 1);
    }

    #[test]
    fn zero_retention_keeps_everything() {
        let store = SnapshotStore::<u32>::with_retention(0);
        for e in 1..=8 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        assert_eq!(store.epoch_count(), 8);
    }

    #[test]
    fn pin_floor_protects_the_durable_recovery_base_from_retention() {
        // A lagging partition's only durable base is epoch 1. With K=2 and
        // no pin, completing epochs 2..=5 would delete it — and with it the
        // source offsets a disk recovery to epoch 1 must rejoin at.
        let store = SnapshotStore::<u32>::with_retention(2);
        store.begin_epoch(1, 1);
        store.put_source_offset(1, "ingress", 10);
        store.put(1, "w0", 1);
        store.set_pin_floor(1);
        for e in 2..=5 {
            store.begin_epoch(e, 1);
            store.put_source_offset(e, "ingress", e * 10);
            store.put(e, "w0", e as u32);
        }
        assert_eq!(store.get(1, "w0"), Some(1), "pinned base must survive");
        assert_eq!(store.source_offset(1, "ingress"), Some(10));
        // Explicit truncation must not break the pin either.
        store.truncate_before(4);
        assert_eq!(store.source_offset(1, "ingress"), Some(10));
        // Once every partition's durable floor advances, the pin moves and
        // retention catches up on the next completion.
        store.set_pin_floor(4);
        store.begin_epoch(6, 1);
        store.put(6, "w0", 6);
        assert_eq!(store.get(1, "w0"), None, "released epoch pruned");
        assert_eq!(store.source_offset(4, "ingress"), Some(40), "new pin holds");
        // The pin never moves backwards.
        store.set_pin_floor(2);
        assert_eq!(store.pin_floor(), Some(4));
    }

    #[test]
    fn source_offsets_survive_pruning_with_their_epoch() {
        let store = SnapshotStore::<u32>::with_retention(2);
        for e in 1..=4 {
            store.begin_epoch(e, 1);
            store.put_source_offset(e, "ingress", e * 10);
            store.put(e, "w0", e as u32);
        }
        assert_eq!(store.source_offset(4, "ingress"), Some(40));
        assert_eq!(store.source_offset(3, "ingress"), Some(30));
        assert_eq!(store.source_offset(2, "ingress"), None, "pruned");
    }
}
