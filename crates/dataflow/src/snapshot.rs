//! Consistent-snapshot storage (Chandy–Lamport / Flink-style epochs).
//!
//! "For fault-tolerance StateFlow implements the consistent snapshots
//! protocol alongside a replayable source as an ingress, allowing StateFlow
//! to rollback messages and restore the snapshot upon failure" (§3).
//!
//! The store keeps, per epoch, one state blob per participating node plus
//! the source offsets at the snapshot point. An epoch is *complete* once
//! every expected node has contributed; recovery always restores the latest
//! complete epoch — incomplete epochs (a failure mid-snapshot) are ignored.

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Epoch number; epoch 0 is "initial state".
pub type Epoch = u64;

#[derive(Debug, Clone)]
struct EpochData<S> {
    expected: usize,
    states: BTreeMap<String, S>,
    source_offsets: BTreeMap<String, u64>,
}

/// Thread-safe snapshot store for node states of type `S`.
#[derive(Debug)]
pub struct SnapshotStore<S> {
    epochs: Mutex<BTreeMap<Epoch, EpochData<S>>>,
}

impl<S: Clone> Default for SnapshotStore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone> SnapshotStore<S> {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            epochs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Declares a new epoch and how many node contributions complete it.
    pub fn begin_epoch(&self, epoch: Epoch, expected_nodes: usize) {
        let mut g = self.epochs.lock();
        g.entry(epoch).or_insert(EpochData {
            expected: expected_nodes,
            states: BTreeMap::new(),
            source_offsets: BTreeMap::new(),
        });
    }

    /// Stores node `node`'s state for `epoch`.
    ///
    /// # Panics
    /// Panics if the epoch was never begun — contributing to an undeclared
    /// epoch is a protocol bug.
    pub fn put(&self, epoch: Epoch, node: &str, state: S) {
        let mut g = self.epochs.lock();
        let data = g
            .get_mut(&epoch)
            .expect("epoch must be begun before contributions");
        data.states.insert(node.to_owned(), state);
    }

    /// Records a source's read offset at the epoch boundary.
    pub fn put_source_offset(&self, epoch: Epoch, source: &str, offset: u64) {
        let mut g = self.epochs.lock();
        let data = g
            .get_mut(&epoch)
            .expect("epoch must be begun before contributions");
        data.source_offsets.insert(source.to_owned(), offset);
    }

    /// Whether all expected nodes contributed to `epoch`.
    pub fn is_complete(&self, epoch: Epoch) -> bool {
        self.epochs
            .lock()
            .get(&epoch)
            .map(|d| d.states.len() >= d.expected)
            .unwrap_or(false)
    }

    /// The newest complete epoch, if any.
    pub fn latest_complete(&self) -> Option<Epoch> {
        let g = self.epochs.lock();
        g.iter()
            .rev()
            .find(|(_, d)| d.states.len() >= d.expected)
            .map(|(e, _)| *e)
    }

    /// Node `node`'s state at `epoch`.
    pub fn get(&self, epoch: Epoch, node: &str) -> Option<S> {
        self.epochs
            .lock()
            .get(&epoch)
            .and_then(|d| d.states.get(node).cloned())
    }

    /// Source offset recorded at `epoch`.
    pub fn source_offset(&self, epoch: Epoch, source: &str) -> Option<u64> {
        self.epochs
            .lock()
            .get(&epoch)
            .and_then(|d| d.source_offsets.get(source).copied())
    }

    /// Drops all epochs older than `keep_from` (checkpoint retention).
    pub fn truncate_before(&self, keep_from: Epoch) {
        self.epochs.lock().retain(|e, _| *e >= keep_from);
    }

    /// Number of stored epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_completion() {
        let store = SnapshotStore::<Vec<u8>>::new();
        store.begin_epoch(1, 2);
        store.put(1, "w0", vec![1]);
        assert!(!store.is_complete(1));
        assert_eq!(store.latest_complete(), None);
        store.put(1, "w1", vec![2]);
        assert!(store.is_complete(1));
        assert_eq!(store.latest_complete(), Some(1));
        assert_eq!(store.get(1, "w0"), Some(vec![1]));
    }

    #[test]
    fn latest_complete_skips_incomplete() {
        let store = SnapshotStore::<u32>::new();
        store.begin_epoch(1, 1);
        store.put(1, "w0", 10);
        store.begin_epoch(2, 2);
        store.put(2, "w0", 20); // w1 never contributes: epoch 2 incomplete
        assert_eq!(
            store.latest_complete(),
            Some(1),
            "incomplete epoch must be ignored"
        );
    }

    #[test]
    fn source_offsets_travel_with_epoch() {
        let store = SnapshotStore::<u32>::new();
        store.begin_epoch(3, 1);
        store.put(3, "w0", 1);
        store.put_source_offset(3, "ingress", 42);
        assert_eq!(store.source_offset(3, "ingress"), Some(42));
        assert_eq!(store.source_offset(3, "other"), None);
    }

    #[test]
    fn truncation_retains_recent() {
        let store = SnapshotStore::<u32>::new();
        for e in 1..=5 {
            store.begin_epoch(e, 1);
            store.put(e, "w0", e as u32);
        }
        store.truncate_before(4);
        assert_eq!(store.epoch_count(), 2);
        assert_eq!(store.latest_complete(), Some(5));
        assert_eq!(store.get(3, "w0"), None);
    }

    #[test]
    #[should_panic(expected = "begun")]
    fn contribution_to_unknown_epoch_panics() {
        let store = SnapshotStore::<u32>::new();
        store.put(9, "w0", 1);
    }
}
