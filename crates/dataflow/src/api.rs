//! The runtime-facing client API implemented by every execution engine.
//!
//! "The choice of a runtime system is completely independent of the
//! application layer, which allows switching to different runtime systems
//! with no changes to the application code" (§1). This trait is that
//! boundary: the Local executor, the StateFun-style runtime and the
//! StateFlow runtime all implement [`EntityRuntime`], and everything above
//! (examples, workloads, benchmarks) is written against it.

use std::time::{Duration, Instant};

use crossbeam::channel;

use se_lang::{EntityRef, LangError, Value};

/// A pending response to an asynchronous invocation.
pub struct ResponseWaiter {
    rx: channel::Receiver<Result<Value, LangError>>,
    issued: Instant,
}

impl ResponseWaiter {
    /// Creates a waiter and the sender used to complete it.
    pub fn new() -> (ResponseCompleter, ResponseWaiter) {
        let (tx, rx) = channel::bounded(1);
        (
            ResponseCompleter { tx },
            ResponseWaiter {
                rx,
                issued: Instant::now(),
            },
        )
    }

    /// A waiter that is already completed (for immediate errors).
    pub fn ready(result: Result<Value, LangError>) -> ResponseWaiter {
        let (c, w) = Self::new();
        c.complete(result);
        w
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<Value, LangError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(LangError::runtime("runtime shut down before responding")))
    }

    /// Blocks up to `timeout`; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Value, LangError>> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Result<Value, LangError>> {
        self.rx.try_recv().ok()
    }

    /// When the invocation was issued (for latency measurement).
    pub fn issued_at(&self) -> Instant {
        self.issued
    }
}

/// Completion side of a [`ResponseWaiter`].
pub struct ResponseCompleter {
    tx: channel::Sender<Result<Value, LangError>>,
}

impl ResponseCompleter {
    /// Delivers the response (ignores an already-dropped waiter).
    pub fn complete(&self, result: Result<Value, LangError>) {
        let _ = self.tx.try_send(result);
    }
}

/// A deployed stateful-entity application, whatever the engine underneath.
pub trait EntityRuntime: Send + Sync {
    /// Human-readable engine name (for reports).
    fn name(&self) -> &str;

    /// Creates an entity instance, blocking until it is durable in the
    /// owning partition.
    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError>;

    /// Invokes a method asynchronously, returning a waiter for the result.
    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter;

    /// Invokes a method and blocks for the result.
    fn call(&self, target: EntityRef, method: &str, args: Vec<Value>) -> Result<Value, LangError> {
        self.call_async(target, method, args).wait()
    }

    /// Whether this engine executes multi-entity invocations transactionally
    /// (StateFun does not — the paper skips its transactional workloads).
    fn supports_transactions(&self) -> bool;

    /// Stops all engine threads. Pending invocations may error.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiter_roundtrip() {
        let (c, w) = ResponseWaiter::new();
        c.complete(Ok(Value::Int(5)));
        assert_eq!(w.wait().unwrap(), Value::Int(5));
    }

    #[test]
    fn ready_waiter() {
        let w = ResponseWaiter::ready(Err(LangError::runtime("nope")));
        assert!(w.wait().is_err());
    }

    #[test]
    fn dropped_completer_yields_error() {
        let (c, w) = ResponseWaiter::new();
        drop(c);
        assert!(w.wait().unwrap_err().to_string().contains("shut down"));
    }

    #[test]
    fn timeout_and_poll() {
        let (c, w) = ResponseWaiter::new();
        assert!(w.try_wait().is_none());
        assert!(w.wait_timeout(Duration::from_millis(10)).is_none());
        c.complete(Ok(Value::Unit));
        assert_eq!(w.try_wait(), Some(Ok(Value::Unit)));
    }

    #[test]
    fn double_complete_is_harmless() {
        let (c, w) = ResponseWaiter::new();
        c.complete(Ok(Value::Int(1)));
        c.complete(Ok(Value::Int(2)));
        assert_eq!(w.wait().unwrap(), Value::Int(1));
    }
}
