//! Append-only write-ahead log: framing, record codec, group commit.
//!
//! The durable layer (see [`crate::durable`]) logs every state mutation a
//! partition applies — entity creates and committed transaction writes —
//! plus `EpochCut` markers aligned with the Chandy–Lamport snapshot epochs,
//! into one append-only file per partition. This module owns the byte
//! format and the two halves of its contract:
//!
//! * **Writer** ([`WalWriter`]): length-prefixed, CRC-checksummed frames,
//!   appended with plain `write(2)` (no userspace buffering, so a process
//!   crash loses nothing the OS accepted) and group-committed under a
//!   configurable [`FsyncPolicy`]. The writer tracks `written_len` vs
//!   `synced_len`: only the synced prefix survives a *power-loss-style*
//!   fault (`se-chaos`'s torn/lost tail scripts); a plain process crash
//!   keeps everything written.
//! * **Reader** ([`read_wal`]): scans frames and **stops cleanly at the
//!   first length or checksum mismatch** — a torn tail truncates the log to
//!   its last valid prefix, it never panics and never silently skips over a
//!   bad frame to resync downstream (resyncing could resurrect records that
//!   a torn write was supposed to kill, breaking exactly-once).
//!
//! The record codec is hand-rolled binary (crates.io is unreachable, and
//! the vendored `serde_json` shim is serialize-only): entity classes, keys
//! and attribute names are encoded as *strings*, mirroring how the routing
//! layer hashes key text — symbol ids are process-local and meaningless on
//! disk. Decoding re-interns them.
//!
//! Frame layout, all integers little-endian:
//!
//! ```text
//! +----------+----------+------------------+
//! | len: u32 | crc: u32 | payload (len B)  |   crc = CRC-32 (IEEE) of payload
//! +----------+----------+------------------+
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use se_chaos::FsyncFaultAction;
use se_lang::{EntityRef, EntityState, Symbol, Value};

/// Frame header: `len` + `crc`, both `u32`.
pub const FRAME_HEADER: usize = 8;

/// Hard ceiling on a single record's payload (64 MiB). A corrupted length
/// prefix below this bound is caught by the CRC; above it we refuse the
/// frame outright instead of attempting a huge allocation.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------------

/// When the WAL writer calls `fsync`.
///
/// Group commit: appends always hit the file immediately (they survive a
/// process crash); the policy only chooses when the *synced* prefix — the
/// part that survives power loss / torn-tail faults — advances.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every committed batch apply. Maximum durability, one
    /// `fsync` per batch per partition.
    EveryCommit,
    /// Sync at epoch cuts only (the default): an epoch is durable exactly
    /// when its cut record is, so recovery targets are always well-formed.
    #[default]
    OnEpoch,
    /// Sync every `n` appends, and at every epoch cut.
    EveryN(u32),
    /// Never sync. Nothing is durable against power loss; process crashes
    /// still keep everything written. Exists for benchmarks and for chaos
    /// scenarios that exercise the multi-round restore fallback.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::EveryCommit => write!(f, "every-commit"),
            FsyncPolicy::OnEpoch => write!(f, "on-epoch"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl FsyncPolicy {
    /// Parses the `SE_FSYNC` / config-file spelling produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "every-commit" => Some(FsyncPolicy::EveryCommit),
            "on-epoch" => Some(FsyncPolicy::OnEpoch),
            "never" => Some(FsyncPolicy::Never),
            other => other
                .strip_prefix("every-")
                .and_then(|n| n.parse::<u32>().ok())
                .filter(|n| *n >= 1)
                .map(FsyncPolicy::EveryN),
        }
    }
}

/// One durable log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// First record of every (re)written log: the log's records begin
    /// immediately *after* the cut of `epoch` (0 = the beginning of time).
    /// Compaction rewrites the log with a higher base.
    BaseRef {
        /// Epoch whose cut precedes the first logged record.
        epoch: u64,
    },
    /// An entity was created with `state` (the control-plane path, which
    /// bypasses the batch commit pipeline).
    Create {
        /// The created entity.
        entity: EntityRef,
        /// Its full initial state.
        state: EntityState,
    },
    /// One committed transaction's writes, applied in `batch`.
    Commit {
        /// Batch the transaction committed in.
        batch: u64,
        /// Attribute writes per entity, in application order.
        writes: Vec<(EntityRef, Vec<(Symbol, Value)>)>,
    },
    /// Epoch `epoch`'s snapshot barrier passed this partition: every record
    /// before this marker is part of the epoch's durable changelog.
    EpochCut {
        /// The epoch that cut here.
        epoch: u64,
    },
    /// A live upgrade committed on this partition: every record after this
    /// marker executed under program `version`. Written at the end of the
    /// partition's migration pass, so replaying past it implies the
    /// migration's writes are already applied.
    VersionCut {
        /// The program version now active.
        version: u64,
    },
}

/// A record failed to decode (corrupt payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDecodeError {
    /// What was being decoded when the bytes ran out or made no sense.
    pub context: &'static str,
}

impl std::fmt::Display for WalDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt WAL record ({})", self.context)
    }
}

impl std::error::Error for WalDecodeError {}

fn bad<T>(context: &'static str) -> Result<T, WalDecodeError> {
    Err(WalDecodeError { context })
}

// -- encoding helpers -------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Unit => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(5);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Map(map) => {
            out.push(7);
            put_u32(out, map.len() as u32);
            for (k, val) in map {
                put_str(out, k);
                put_value(out, val);
            }
        }
        Value::Ref(r) => {
            out.push(8);
            put_entity(out, r);
        }
    }
}

fn put_entity(out: &mut Vec<u8>, r: &EntityRef) {
    put_str(out, r.class.as_str());
    put_str(out, r.key.as_str());
}

// -- decoding helpers -------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WalDecodeError> {
        if self.buf.len() - self.pos < n {
            return bad(context);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WalDecodeError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WalDecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WalDecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn str(&mut self, context: &'static str) -> Result<&'a str, WalDecodeError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(_) => bad(context),
        }
    }

    fn value(&mut self) -> Result<Value, WalDecodeError> {
        match self.u8("value tag")? {
            0 => Ok(Value::Unit),
            1 => Ok(Value::Bool(self.u8("bool")? != 0)),
            2 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8, "int")?.try_into().unwrap(),
            ))),
            3 => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8, "float")?.try_into().unwrap(),
            )))),
            4 => Ok(Value::Str(self.str("string")?.to_string())),
            5 => {
                let len = self.u32("bytes length")? as usize;
                Ok(Value::Bytes(self.take(len, "bytes")?.to_vec()))
            }
            6 => {
                let count = self.u32("list length")? as usize;
                // Bounded by remaining bytes: every element is ≥ 1 byte.
                if count > self.buf.len() - self.pos {
                    return bad("list length");
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value()?);
                }
                Ok(Value::List(items))
            }
            7 => {
                let count = self.u32("map length")? as usize;
                if count > self.buf.len() - self.pos {
                    return bad("map length");
                }
                let mut map = std::collections::BTreeMap::new();
                for _ in 0..count {
                    let k = self.str("map key")?.to_string();
                    let v = self.value()?;
                    map.insert(k, v);
                }
                Ok(Value::Map(map))
            }
            8 => Ok(Value::Ref(self.entity()?)),
            _ => bad("value tag"),
        }
    }

    fn entity(&mut self) -> Result<EntityRef, WalDecodeError> {
        let class = self.str("entity class")?;
        // Borrow gymnastics: both strings must outlive the intern calls.
        let class = class.to_string();
        let key = self.str("entity key")?;
        Ok(EntityRef::new(class.as_str(), key))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl WalRecord {
    /// Encodes the record payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::BaseRef { epoch } => {
                out.push(0);
                put_u64(&mut out, *epoch);
            }
            WalRecord::Create { entity, state } => {
                out.push(1);
                put_entity(&mut out, entity);
                put_u32(&mut out, state.len() as u32);
                for (attr, value) in state.iter() {
                    put_str(&mut out, attr.as_str());
                    put_value(&mut out, value);
                }
            }
            WalRecord::Commit { batch, writes } => {
                out.push(2);
                put_u64(&mut out, *batch);
                put_u32(&mut out, writes.len() as u32);
                for (entity, attrs) in writes {
                    put_entity(&mut out, entity);
                    put_u32(&mut out, attrs.len() as u32);
                    for (attr, value) in attrs {
                        put_str(&mut out, attr.as_str());
                        put_value(&mut out, value);
                    }
                }
            }
            WalRecord::EpochCut { epoch } => {
                out.push(3);
                put_u64(&mut out, *epoch);
            }
            WalRecord::VersionCut { version } => {
                out.push(4);
                put_u64(&mut out, *version);
            }
        }
        out
    }

    /// Decodes a record payload. Fails (never panics) on any truncation,
    /// bad tag, or trailing garbage.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, WalDecodeError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let record = match c.u8("record tag")? {
            0 => WalRecord::BaseRef {
                epoch: c.u64("base epoch")?,
            },
            1 => {
                let entity = c.entity()?;
                let count = c.u32("state length")? as usize;
                if count > payload.len() {
                    return bad("state length");
                }
                let mut state = EntityState::new();
                for _ in 0..count {
                    let attr = c.str("attr name")?.to_string();
                    let value = c.value()?;
                    state.insert(attr.as_str(), value);
                }
                WalRecord::Create { entity, state }
            }
            2 => {
                let batch = c.u64("commit batch")?;
                let count = c.u32("write count")? as usize;
                if count > payload.len() {
                    return bad("write count");
                }
                let mut writes = Vec::with_capacity(count);
                for _ in 0..count {
                    let entity = c.entity()?;
                    let attr_count = c.u32("attr count")? as usize;
                    if attr_count > payload.len() {
                        return bad("attr count");
                    }
                    let mut attrs = Vec::with_capacity(attr_count);
                    for _ in 0..attr_count {
                        let attr = c.str("attr name")?.to_string();
                        let value = c.value()?;
                        attrs.push((Symbol::from(attr.as_str()), value));
                    }
                    writes.push((entity, attrs));
                }
                WalRecord::Commit { batch, writes }
            }
            3 => WalRecord::EpochCut {
                epoch: c.u64("cut epoch")?,
            },
            4 => WalRecord::VersionCut {
                version: c.u64("cut version")?,
            },
            _ => return bad("record tag"),
        };
        if !c.done() {
            return bad("trailing bytes");
        }
        Ok(record)
    }

    /// Encodes the record as a complete frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Appends framed records to a log file with group commit.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    written: u64,
    synced: u64,
    policy: FsyncPolicy,
    unsynced_appends: u32,
    /// Observability handle (noop unless attached via [`WalWriter::set_obs`]):
    /// times every buffered append (`wal_append`) and fsync (`wal_fsync`).
    obs: se_obs::Obs,
}

impl WalWriter {
    /// Creates (truncating) a fresh log at `path` whose first record is
    /// `BaseRef { epoch: base }`, synced so the base reference itself is
    /// never lost to a torn tail.
    pub fn create(path: &Path, base: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            written: 0,
            synced: 0,
            policy,
            unsynced_appends: 0,
            obs: se_obs::Obs::noop(),
        };
        w.append_raw(&WalRecord::BaseRef { epoch: base })?;
        w.force_sync()?;
        Ok(w)
    }

    /// Reopens an existing log for appending after recovery: truncates the
    /// file to `valid_len` (dropping any torn or post-recovery-point tail)
    /// and treats the retained prefix as synced.
    pub fn reopen(path: &Path, valid_len: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            written: valid_len,
            synced: valid_len,
            policy,
            unsynced_appends: 0,
            obs: se_obs::Obs::noop(),
        })
    }

    /// Attaches an observability handle; spans are recorded from then on.
    pub fn set_obs(&mut self, obs: se_obs::Obs) {
        self.obs = obs;
    }

    /// Correlation id for a record's spans: batch for commits, epoch for
    /// cuts and base refs, 0 for creates.
    fn record_span_id(record: &WalRecord) -> u64 {
        match record {
            WalRecord::Commit { batch, .. } => *batch,
            WalRecord::EpochCut { epoch } | WalRecord::BaseRef { epoch } => *epoch,
            WalRecord::VersionCut { version } => *version,
            WalRecord::Create { .. } => 0,
        }
    }

    fn append_raw(&mut self, record: &WalRecord) -> io::Result<()> {
        let t0 = self.obs.now_ns();
        let frame = record.encode_frame();
        self.file.write_all(&frame)?;
        self.written += frame.len() as u64;
        self.unsynced_appends += 1;
        self.obs.stage_span(
            se_obs::Stage::WalAppend,
            Self::record_span_id(record),
            t0,
            self.obs.now_ns(),
        );
        Ok(())
    }

    /// Appends one record and group-commits per the fsync policy. Epoch
    /// cuts sync under every policy except [`FsyncPolicy::Never`] — an
    /// epoch is durable exactly when its cut record is.
    ///
    /// `fault` is consulted only when a sync is actually attempted (so
    /// chaos scripts count *fsyncs*, not appends): it can stall the sync or
    /// fail it outright, in which case the write stays in the page cache
    /// and the synced prefix does not advance.
    pub fn append(
        &mut self,
        record: &WalRecord,
        fault: impl FnOnce() -> FsyncFaultAction,
    ) -> io::Result<()> {
        // Version cuts sync like epoch cuts: an upgrade is durable exactly
        // when its cut record is.
        let is_cut = matches!(
            record,
            WalRecord::EpochCut { .. } | WalRecord::VersionCut { .. }
        );
        self.append_raw(record)?;
        let should_sync = match self.policy {
            FsyncPolicy::EveryCommit => true,
            FsyncPolicy::OnEpoch => is_cut,
            FsyncPolicy::EveryN(n) => is_cut || self.unsynced_appends >= n,
            FsyncPolicy::Never => false,
        };
        if should_sync {
            match fault() {
                FsyncFaultAction::Fail => {}
                FsyncFaultAction::Slow { extra_us } => {
                    std::thread::sleep(std::time::Duration::from_micros(extra_us));
                    self.force_sync()?;
                }
                FsyncFaultAction::Proceed => self.force_sync()?,
            }
        }
        Ok(())
    }

    /// Unconditionally fsyncs and advances the synced prefix.
    pub fn force_sync(&mut self) -> io::Result<()> {
        let t0 = self.obs.now_ns();
        self.file.sync_data()?;
        self.synced = self.written;
        self.unsynced_appends = 0;
        // Span id: the byte offset the sync advanced the durable prefix to.
        self.obs
            .stage_span(se_obs::Stage::WalFsync, self.written, t0, self.obs.now_ns());
        Ok(())
    }

    /// Bytes written (survive a process crash).
    pub fn written_len(&self) -> u64 {
        self.written
    }

    /// Bytes fsynced (survive power loss / torn-tail faults).
    pub fn synced_len(&self) -> u64 {
        self.synced
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Result of scanning a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records with the byte offset of the *end* of each frame
    /// (recovery truncates the log at the offset of its chosen epoch cut).
    pub records: Vec<(u64, WalRecord)>,
    /// Length of the valid prefix; anything beyond is a torn tail.
    pub valid_len: u64,
    /// Whether trailing bytes were discarded (torn/corrupt tail).
    pub truncated: bool,
}

/// Scans a WAL file, decoding every valid frame and stopping cleanly at the
/// first length mismatch, checksum mismatch, or undecodable payload.
///
/// `skip_crc` disables checksum verification — it exists **only** as the
/// `wal-no-crc` injected bug for the chaos self-test that proves corrupted
/// records are caught by the history checker; never set it otherwise.
pub fn read_wal(path: &Path, skip_crc: bool) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    let truncated = loop {
        if pos == buf.len() {
            break false; // clean EOF
        }
        if buf.len() - pos < FRAME_HEADER {
            break true; // torn header
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break true; // corrupt length prefix
        }
        let len = len as usize;
        if buf.len() - pos - FRAME_HEADER < len {
            break true; // torn payload
        }
        let payload = &buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if !skip_crc && crc32(payload) != crc {
            break true; // corrupt payload
        }
        match WalRecord::decode(payload) {
            Ok(record) => {
                pos += FRAME_HEADER + len;
                records.push((pos as u64, record));
            }
            Err(_) => break true, // decodable only with skip_crc + luck
        }
    };
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        let acct = EntityRef::new("Account", "a1");
        vec![
            WalRecord::BaseRef { epoch: 0 },
            WalRecord::Create {
                entity: acct,
                state: EntityState::from([("balance", Value::Int(100))]),
            },
            WalRecord::Commit {
                batch: 7,
                writes: vec![(
                    acct,
                    vec![
                        (Symbol::from("balance"), Value::Int(90)),
                        (
                            Symbol::from("tags"),
                            Value::List(vec![Value::Str("x".into())]),
                        ),
                    ],
                )],
            },
            WalRecord::EpochCut { epoch: 1 },
            WalRecord::VersionCut { version: 2 },
        ]
    }

    #[test]
    fn record_round_trip() {
        for record in sample_records() {
            let payload = record.encode();
            assert_eq!(WalRecord::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn nested_value_round_trip() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("k".to_string(), Value::List(vec![Value::Float(1.5)]));
        let record = WalRecord::Commit {
            batch: 1,
            writes: vec![(
                EntityRef::new("C", "k"),
                vec![
                    (Symbol::from("m"), Value::Map(map)),
                    (Symbol::from("r"), Value::Ref(EntityRef::new("D", "x"))),
                    (Symbol::from("b"), Value::Bytes(vec![0, 255, 3])),
                    (Symbol::from("u"), Value::Unit),
                    (Symbol::from("t"), Value::Bool(true)),
                ],
            )],
        };
        assert_eq!(WalRecord::decode(&record.encode()).unwrap(), record);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut payload = WalRecord::EpochCut { epoch: 3 }.encode();
        payload.push(0);
        assert!(WalRecord::decode(&payload).is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        for record in sample_records() {
            let payload = record.encode();
            for cut in 0..payload.len() {
                // Must error, never panic or succeed on a proper prefix.
                assert!(
                    WalRecord::decode(&payload[..cut]).is_err(),
                    "prefix of length {cut} decoded"
                );
            }
        }
    }

    #[test]
    fn writer_then_scan_round_trips() {
        let dir = tempdir("wal-roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::EveryCommit).unwrap();
        for record in sample_records().into_iter().skip(1) {
            w.append(&record, || FsyncFaultAction::Proceed).unwrap();
        }
        assert_eq!(w.written_len(), w.synced_len());
        let scan = read_wal(&path, false).unwrap();
        assert!(!scan.truncated);
        assert_eq!(
            scan.records
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
            sample_records()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let dir = tempdir("wal-torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        for record in sample_records().into_iter().skip(1) {
            w.append(&record, || FsyncFaultAction::Proceed).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Cut the file at every possible length: the scan must never panic,
        // never invent records, and always return a prefix of the originals.
        let originals = sample_records();
        for keep in 0..full {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.truncate(keep as usize);
            let torn = dir.join("torn.log");
            std::fs::write(&torn, &bytes).unwrap();
            let scan = read_wal(&torn, false).unwrap();
            assert!(scan.valid_len <= keep);
            assert!(scan.records.len() <= originals.len());
            for (i, (_, r)) in scan.records.iter().enumerate() {
                assert_eq!(r, &originals[i], "record {i} mutated by tearing");
            }
            if keep < full {
                assert!(scan.truncated || scan.valid_len == keep);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bitflip_is_detected_by_crc_and_applied_without_it() {
        let dir = tempdir("wal-flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        let record = WalRecord::Commit {
            batch: 1,
            writes: vec![(
                EntityRef::new("Account", "a"),
                vec![(Symbol::from("balance"), Value::Int(42))],
            )],
        };
        w.append(&record, || FsyncFaultAction::Proceed).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the last payload byte (the balance's MSB).
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let honest = read_wal(&path, false).unwrap();
        // CRC catches the flip: the record vanishes, the log truncates to
        // the BaseRef prefix.
        assert!(honest.truncated);
        assert_eq!(honest.records.len(), 1);
        // With the checksum-skip bug injected, the flipped record decodes
        // and would be silently applied — the chaos self-test depends on
        // this exact asymmetry.
        let buggy = read_wal(&path, true).unwrap();
        assert_eq!(buggy.records.len(), 2);
        assert_ne!(buggy.records[1].1, record);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_governs_synced_prefix() {
        let dir = tempdir("wal-sync");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::Never).unwrap();
        let base_len = w.written_len();
        w.append(&WalRecord::EpochCut { epoch: 1 }, || {
            FsyncFaultAction::Proceed
        })
        .unwrap();
        assert_eq!(w.synced_len(), base_len, "Never must not sync even at cuts");
        let mut w = WalWriter::create(&path, 0, FsyncPolicy::OnEpoch).unwrap();
        w.append(
            &WalRecord::Create {
                entity: EntityRef::new("C", "k"),
                state: EntityState::new(),
            },
            || FsyncFaultAction::Proceed,
        )
        .unwrap();
        let after_create = w.synced_len();
        assert!(
            after_create < w.written_len(),
            "OnEpoch defers commit syncs"
        );
        w.append(&WalRecord::EpochCut { epoch: 1 }, || {
            FsyncFaultAction::Proceed
        })
        .unwrap();
        assert_eq!(w.synced_len(), w.written_len(), "cut syncs under OnEpoch");
        w.append(&WalRecord::EpochCut { epoch: 2 }, || FsyncFaultAction::Fail)
            .unwrap();
        assert!(
            w.synced_len() < w.written_len(),
            "a failed fsync must not advance the synced prefix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parse_round_trips() {
        for policy in [
            FsyncPolicy::EveryCommit,
            FsyncPolicy::OnEpoch,
            FsyncPolicy::EveryN(8),
            FsyncPolicy::Never,
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.to_string()), Some(policy));
        }
        assert_eq!(FsyncPolicy::parse("bogus"), None);
        assert_eq!(FsyncPolicy::parse("every-0"), None);
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "se-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}

#[cfg(test)]
mod proptests {
    //! Property tests for the record codec and the torn-tail reader
    //! contract: arbitrary records round-trip exactly, and a log damaged
    //! at any byte is read back as a clean prefix — never a panic, never a
    //! silently altered or skipped record.

    use super::*;
    use proptest::collection;
    use proptest::prelude::*;
    use proptest::sample;
    use se_lang::{EntityRef, EntityState, Symbol, Value};

    fn arb_name() -> BoxedStrategy<String> {
        // Symbols land in an interner; a small alphabet keeps its size
        // bounded across cases while still exercising multi-byte names.
        sample::select(vec![
            "a",
            "bee",
            "Sea",
            "d0",
            "entity-5",
            "véhicule",
            "ε",
            "k_9",
        ])
        .prop_map(str::to_string)
        .boxed()
    }

    fn arb_entity() -> BoxedStrategy<EntityRef> {
        (arb_name(), arb_name())
            .prop_map(|(class, key)| EntityRef::new(class.as_str(), key.as_str()))
            .boxed()
    }

    fn arb_value() -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Unit),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            arb_name().prop_map(Value::Str),
            collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
            arb_entity().prop_map(Value::Ref),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                collection::vec(inner.clone(), 0..4).prop_map(Value::List),
                collection::btree_map(arb_name(), inner, 0..4).prop_map(Value::Map),
            ]
        })
    }

    fn arb_state() -> BoxedStrategy<EntityState> {
        collection::btree_map(arb_name(), arb_value(), 0..6)
            .prop_map(|m| m.into_iter().collect())
            .boxed()
    }

    fn arb_record() -> BoxedStrategy<WalRecord> {
        prop_oneof![
            any::<u64>().prop_map(|epoch| WalRecord::BaseRef { epoch }),
            any::<u64>().prop_map(|epoch| WalRecord::EpochCut { epoch }),
            any::<u64>().prop_map(|version| WalRecord::VersionCut { version }),
            (arb_entity(), arb_state())
                .prop_map(|(entity, state)| WalRecord::Create { entity, state }),
            (
                any::<u64>(),
                collection::vec(
                    (
                        arb_entity(),
                        collection::vec((arb_name().prop_map(Symbol::from), arb_value()), 0..5)
                    ),
                    0..5
                )
            )
                .prop_map(|(batch, writes)| WalRecord::Commit { batch, writes }),
        ]
        .boxed()
    }

    /// Writes `records` into a fresh WAL file and returns its path.
    fn write_log(tag: &str, records: &[WalRecord]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "se-wal-prop-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 7, FsyncPolicy::Never).unwrap();
        for r in records {
            w.append(r, || se_chaos::FsyncFaultAction::Proceed).unwrap();
        }
        w.force_sync().unwrap();
        path
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Arbitrary records survive encode → decode byte-exactly.
        #[test]
        fn record_codec_round_trips(record in arb_record()) {
            let payload = record.encode();
            let decoded = WalRecord::decode(&payload)
                .unwrap_or_else(|e| panic!("decode of own encoding failed: {e}"));
            prop_assert_eq!(&decoded, &record);
            // And through the framed on-disk path as well.
            let path = write_log("roundtrip", std::slice::from_ref(&record));
            let scan = read_wal(&path, false).unwrap();
            prop_assert!(!scan.truncated);
            prop_assert_eq!(scan.records.len(), 2, "BaseRef + the record");
            prop_assert_eq!(&scan.records[1].1, &record);
            std::fs::remove_dir_all(path.parent().unwrap()).ok();
        }

        /// A log truncated at ANY byte length reads back as a clean prefix
        /// of the original records: no panic, no partial record, no skip.
        #[test]
        fn truncated_tail_reads_as_clean_prefix(
            records in collection::vec(arb_record(), 1..5),
            cut_seed in any::<u64>(),
        ) {
            let path = write_log("trunc", &records);
            let full = std::fs::read(&path).unwrap();
            let scan = read_wal(&path, false).unwrap();
            prop_assert!(!scan.truncated);
            let original: Vec<WalRecord> =
                scan.records.iter().map(|(_, r)| r.clone()).collect();

            let cut = (cut_seed as usize) % (full.len() + 1);
            std::fs::write(&path, &full[..cut]).unwrap();
            let damaged = read_wal(&path, false).unwrap();
            prop_assert!(damaged.valid_len as usize <= cut);
            prop_assert!(damaged.records.len() <= original.len());
            for (got, want) in damaged.records.iter().zip(&original) {
                prop_assert_eq!(&got.1, want, "prefix must be unaltered");
            }
            std::fs::remove_dir_all(path.parent().unwrap()).ok();
        }

        /// A single flipped byte anywhere in the log never panics the
        /// reader and never alters a surviving record: the scan stops at
        /// or before the damaged frame and everything it does return is
        /// byte-identical to the original prefix.
        #[test]
        fn corrupted_byte_stops_cleanly(
            records in collection::vec(arb_record(), 1..5),
            pos_seed in any::<u64>(),
            bit in 0u8..8,
        ) {
            let path = write_log("flip", &records);
            let mut bytes = std::fs::read(&path).unwrap();
            let scan = read_wal(&path, false).unwrap();
            let original: Vec<WalRecord> =
                scan.records.iter().map(|(_, r)| r.clone()).collect();

            let pos = (pos_seed as usize) % bytes.len();
            bytes[pos] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            let damaged = read_wal(&path, false).unwrap();
            prop_assert!(damaged.records.len() <= original.len());
            for (i, (end, got)) in damaged.records.iter().enumerate() {
                // Any frame wholly before the flipped byte is untouched;
                // a frame at/after it may only survive if the scan stopped
                // first — which the zip against the original prefix plus
                // the CRC guarantee reduce to: surviving records match.
                prop_assert_eq!(got, &original[i], "record {i} ending at {end} altered");
            }
            std::fs::remove_dir_all(path.parent().unwrap()).ok();
        }
    }
}
