//! Measurement utilities: latency histograms and per-component timers.
//!
//! `LatencyRecorder` backs the end-to-end latency experiments (Figures 3 and
//! 4: mean, p50, p99). `ComponentTimers` backs the system-overhead
//! experiment (§4): "for each event, we measured the duration of different
//! runtime components" — object construction, state (de)serialization,
//! function execution, state storage, routing, and the overhead attributable
//! to program transformation.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Thread-safe collector of latency samples.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    samples: Mutex<Vec<Duration>>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.samples.lock().push(d);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.lock().len()
    }

    /// Snapshot of all samples.
    pub fn samples(&self) -> Vec<Duration> {
        self.samples.lock().clone()
    }

    /// Summary statistics over the recorded samples.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary::from_samples(&self.samples.lock())
    }
}

/// Summary statistics of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencySummary {
    /// Computes the summary of a sample set (empty sets yield zeros).
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let pct = |p: f64| -> Duration {
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank.min(sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean: total / sorted.len() as u32,
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Computes the summary from a shared `se-obs` histogram of nanosecond
    /// samples. This is the bench drivers' path: workers record latencies
    /// into one lock-free histogram instead of each bench sorting its own
    /// `Vec<Duration>`; percentiles are bucket-quantized (≤ ~6% relative
    /// error), count/mean/max are exact.
    pub fn from_hist(hist: &se_obs::Histogram) -> Self {
        let s = hist.summary();
        if s.count == 0 {
            return Self::default();
        }
        Self {
            count: s.count as usize,
            mean: Duration::from_nanos((s.sum as f64 / s.count as f64) as u64),
            p50: Duration::from_nanos(s.p50),
            p95: Duration::from_nanos(hist.value_at(0.95)),
            p99: Duration::from_nanos(s.p99),
            max: Duration::from_nanos(s.max),
        }
    }

    /// Divides every statistic by `scale` (for un-scaling simulated time).
    pub fn unscale(&self, scale: f64) -> Self {
        if scale <= 0.0 || (scale - 1.0).abs() < f64::EPSILON {
            return *self;
        }
        let f = |d: Duration| d.div_f64(scale);
        Self {
            count: self.count,
            mean: f(self.mean),
            p50: f(self.p50),
            p95: f(self.p95),
            p99: f(self.p99),
            max: f(self.max),
        }
    }
}

/// Named accumulating timers for the per-component overhead breakdown.
#[derive(Debug, Default)]
pub struct ComponentTimers {
    totals: Mutex<std::collections::BTreeMap<&'static str, (Duration, u64)>>,
}

impl ComponentTimers {
    /// An empty timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, charging its duration to `component`.
    pub fn time<R>(&self, component: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.add(component, start.elapsed());
        r
    }

    /// Adds an externally measured duration to `component`.
    pub fn add(&self, component: &'static str, d: Duration) {
        let mut g = self.totals.lock();
        let e = g.entry(component).or_insert((Duration::ZERO, 0));
        e.0 += d;
        e.1 += 1;
    }

    /// Snapshot of `(component, total, count)` rows, sorted by name.
    pub fn report(&self) -> Vec<(&'static str, Duration, u64)> {
        self.totals
            .lock()
            .iter()
            .map(|(k, (d, c))| (*k, *d, *c))
            .collect()
    }

    /// Total across all components.
    pub fn grand_total(&self) -> Duration {
        self.totals.lock().values().map(|(d, _)| *d).sum()
    }

    /// Fraction (0..=1) of the grand total charged to `component`.
    pub fn fraction(&self, component: &'static str) -> f64 {
        let g = self.totals.lock();
        let total: Duration = g.values().map(|(d, _)| *d).sum();
        if total.is_zero() {
            return 0.0;
        }
        let part = g.get(component).map(|(d, _)| *d).unwrap_or(Duration::ZERO);
        part.as_secs_f64() / total.as_secs_f64()
    }

    /// Clears all accumulated data.
    pub fn reset(&self) {
        self.totals.lock().clear();
    }
}

/// A simple throughput counter (events per second over a window).
#[derive(Debug)]
pub struct Throughput {
    start: Instant,
    count: std::sync::atomic::AtomicU64,
}

impl Default for Throughput {
    fn default() -> Self {
        Self::new()
    }
}

impl Throughput {
    /// Starts counting now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Counts one event.
    pub fn incr(&self) {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Total events counted.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Events per second since creation.
    pub fn rate(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.count() as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn summary_single_sample() {
        let s = LatencySummary::from_samples(&[Duration::from_millis(7)]);
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
    }

    #[test]
    fn summary_empty() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn summary_from_hist_matches_samples() {
        let hist = se_obs::Histogram::new();
        for ms in 1..=100u64 {
            hist.record(ms * 1_000_000);
        }
        let s = LatencySummary::from_hist(&hist);
        assert_eq!(s.count, 100);
        assert_eq!(s.max, Duration::from_millis(100));
        // Bucket quantization: within one sub-bucket of the exact ranks.
        let close = |got: Duration, want_ms: u64| {
            let want = Duration::from_millis(want_ms);
            (got.as_secs_f64() - want.as_secs_f64()).abs() / want.as_secs_f64() < 0.07
        };
        assert!(close(s.p50, 50), "p50 {:?}", s.p50);
        assert!(close(s.p99, 99), "p99 {:?}", s.p99);
        assert!(close(s.mean, 50), "mean {:?}", s.mean);
    }

    #[test]
    fn unscale_divides() {
        let s = LatencySummary::from_samples(&[Duration::from_millis(10)]);
        let u = s.unscale(0.1);
        assert_eq!(u.p50, Duration::from_millis(100));
    }

    #[test]
    fn recorder_is_thread_safe() {
        let rec = std::sync::Arc::new(LatencyRecorder::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        rec.record(Duration::from_micros(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.count(), 1000);
    }

    #[test]
    fn component_timers_fraction() {
        let t = ComponentTimers::new();
        t.add("exec", Duration::from_millis(99));
        t.add("split_overhead", Duration::from_millis(1));
        assert!((t.fraction("split_overhead") - 0.01).abs() < 1e-9);
        assert_eq!(t.grand_total(), Duration::from_millis(100));
        let report = t.report();
        assert_eq!(report.len(), 2);
        t.reset();
        assert_eq!(t.grand_total(), Duration::ZERO);
    }

    #[test]
    fn throughput_counts() {
        let t = Throughput::new();
        for _ in 0..10 {
            t.incr();
        }
        assert_eq!(t.count(), 10);
    }
}
