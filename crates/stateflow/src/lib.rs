//! # se-stateflow — a transactional dataflow runtime
//!
//! The paper's novel system (§3): "Existing dataflow systems cannot execute
//! multi-partition transactions. To this end, we built StateFlow, a
//! prototype dataflow system… StateFlow treats each function — and the state
//! effects it creates via calls to other functions — as a transaction with
//! ACID guarantees," implemented as an extension of the Aria deterministic
//! protocol, with cyclic function-to-function channels, consistent
//! snapshots, and a replayable source for rollback-recovery.
//!
//! Topology: one coordinator thread + N worker threads (partitions).
//! Protocol per batch: execute-on-snapshot (chains hop between workers over
//! internal delay channels) → reserve → decide (WAW/RAW/WAR, optional
//! deterministic reordering) → commit in transaction-id order → respond;
//! aborted transactions re-run at the head of the next batch with their
//! original ids. At `pipeline_depth ≥ 2` (knob on [`StateflowConfig`], env
//! override `SE_PIPELINE_DEPTH`) batches overlap Aria-style: batch *N+1* is
//! sealed as soon as batch *N* enters its reservation round, workers order
//! execution with committed-batch watermarks, and serial-fallback retries
//! commit at their final hop without a coordinator round trip.

#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod msg;
pub mod query;
pub mod runtime;
pub mod worker;

pub use config::{
    default_workers, durability_mode_from_env_or, exec_threads_from_env_or,
    pipeline_depth_from_env_or, DurabilityConfig, DurabilityMode, StateflowConfig,
};
pub use coordinator::CoordStats;
pub use query::QueryResult;
pub use runtime::StateflowRuntime;
