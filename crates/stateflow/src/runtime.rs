//! Deployment and client API of the StateFlow runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use se_dataflow::{
    delay_channel, ComponentTimers, DelaySender, EntityRuntime, ReplayableSource,
    ResponseCompleter, ResponseWaiter, SnapshotStore, SourceReader, StateStore,
};
use se_ir::{DataflowGraph, Invocation, InvocationKind, RequestId, VersionRegistry};
use se_lang::{EntityRef, LangError, Value};

use crate::config::{DurabilityMode, StateflowConfig};
use crate::coordinator::{CoordStats, Coordinator};
use crate::msg::{ClientOp, ClientRequest, CoordMsg, WorkerMsg};
use crate::worker::Worker;

/// The newest deployed version, kept by the runtime as the baseline the
/// *next* [`StateflowRuntime::redeploy`] compiles against: incremental
/// recompilation diffs against this graph, and the VM reuses this version's
/// bytecode for unchanged classes.
struct CurrentDeploy {
    graph: Arc<DataflowGraph>,
    vm: Option<Arc<se_vm::VmProgram>>,
}

/// A deployed StateFlow application: coordinator + workers over the compiled
/// dataflow graph, with a replayable request source and snapshot store.
pub struct StateflowRuntime {
    cfg: StateflowConfig,
    /// All live program versions, shared with every worker. Workers resolve
    /// invocations through it (pinned to the version stamped at the root);
    /// [`StateflowRuntime::redeploy`] registers new versions here before
    /// appending the `Redeploy` record, so replay finds them too.
    registry: Arc<VersionRegistry>,
    /// Baseline for the next incremental redeploy (see [`CurrentDeploy`]).
    /// The lock also serializes concurrent `redeploy` calls: versions must
    /// be compiled against their immediate predecessor, in order.
    current: Mutex<CurrentDeploy>,
    source: ReplayableSource<ClientRequest>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    next_request: AtomicU64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: Arc<CoordStats>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    obs: se_obs::Obs,
    /// Periodic `metrics.json` snapshot thread, if configured; stopped
    /// (dropped) at shutdown before the final dump.
    obs_snapshots: Mutex<Option<se_obs::PeriodicSnapshots>>,
    worker_senders: Vec<DelaySender<WorkerMsg>>,
    coord_sender: DelaySender<CoordMsg>,
    /// A durability directory this runtime created itself (config left
    /// `durability.dir` unset): removed at shutdown. User-provided
    /// directories are never touched.
    owned_durability_dir: Option<std::path::PathBuf>,
}

impl StateflowRuntime {
    /// Deploys a compiled dataflow graph on a fresh StateFlow cluster.
    ///
    /// `cfg.pipeline_depth` selects the coordinator schedule: 1 is classic
    /// stop-and-wait, ≥ 2 pipelines batches (see [`crate::coordinator`]).
    pub fn deploy(graph: DataflowGraph, mut cfg: StateflowConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.pipeline_depth >= 1,
            "pipeline_depth 0 would never seal a batch; 1 = stop-and-wait"
        );
        // WAL durability needs a directory; deployments that did not pick
        // one get a unique temp dir owned (and removed) by this runtime.
        let owned_durability_dir = (cfg.durability.mode == DurabilityMode::Wal
            && cfg.durability.dir.is_none())
        .then(|| {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "se-wal-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&dir).expect("create durability dir");
            cfg.durability.dir = Some(dir.clone());
            dir
        });
        let graph = Arc::new(graph);
        let obs = se_obs::Obs::new(&cfg.obs);
        let obs_snapshots = Mutex::new(obs.spawn_periodic_snapshots());
        // Deploy-time backend selection: for the VM backend every method
        // body is lowered to bytecode exactly once, here, and the compiled
        // program is shared by all workers.
        let compile_start = obs.now_ns();
        let (runner, vm) = se_vm::runner_for_upgrade(cfg.backend, &graph.program, None);
        obs.stage_span(se_obs::Stage::VmCompile, 0, compile_start, obs.now_ns());
        obs.counter("vm.compile_runs").inc();
        if obs.enabled() {
            se_compiler::stats(&graph).publish(&obs);
        }
        let registry = VersionRegistry::new(Arc::clone(&graph), runner);
        obs.gauge("deploy.active_version").set(graph.version as i64);
        let snapshots = Arc::new(SnapshotStore::with_retention(cfg.snapshot_retention));
        let timers = Arc::new(ComponentTimers::new());
        let stats = Arc::new(CoordStats::register(&obs));
        let shutdown = Arc::new(AtomicBool::new(false));
        let source = ReplayableSource::new();
        let waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>> =
            Arc::new(Mutex::new(HashMap::new()));

        let (coord_tx, coord_rx) = delay_channel::<CoordMsg>();
        let mut worker_txs = Vec::with_capacity(cfg.workers);
        let mut worker_rxs = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = delay_channel::<WorkerMsg>();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        let mut threads = Vec::new();
        for (id, rx) in worker_rxs.into_iter().enumerate() {
            let worker = Worker::new(
                id,
                cfg.clone(),
                Arc::clone(&registry),
                rx,
                worker_txs.clone(),
                coord_tx.clone(),
                Arc::clone(&snapshots),
                Arc::clone(&timers),
                obs.clone(),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("stateflow-worker{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }

        let coordinator = Coordinator::new(
            cfg.clone(),
            worker_txs.clone(),
            coord_rx,
            SourceReader::at(&source, 0),
            Arc::clone(&waiters),
            Arc::clone(&snapshots),
            Arc::clone(&stats),
            obs.clone(),
            Arc::clone(&shutdown),
        );
        threads.push(
            std::thread::Builder::new()
                .name("stateflow-coordinator".into())
                .spawn(move || coordinator.run())
                .expect("spawn coordinator"),
        );

        Self {
            cfg,
            registry,
            current: Mutex::new(CurrentDeploy { graph, vm }),
            source,
            waiters,
            next_request: AtomicU64::new(1),
            shutdown,
            threads: Mutex::new(threads),
            stats,
            snapshots,
            timers,
            obs,
            obs_snapshots,
            worker_senders: worker_txs,
            coord_sender: coord_tx,
            owned_durability_dir,
        }
    }

    fn fresh_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::SeqCst))
    }

    /// Protocol counters (batches, commits, aborts, snapshots, recoveries).
    pub fn stats(&self) -> &CoordStats {
        &self.stats
    }

    /// Per-component timing breakdown (overhead experiment).
    pub fn timers(&self) -> &ComponentTimers {
        &self.timers
    }

    /// The observability handle (stage histograms, counters, run dir).
    pub fn obs(&self) -> &se_obs::Obs {
        &self.obs
    }

    /// The snapshot store (inspected by recovery tests).
    pub fn snapshots(&self) -> &SnapshotStore<StateStore> {
        &self.snapshots
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StateflowConfig {
        &self.cfg
    }

    fn submit(&self, op: ClientOp) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        self.source.append(ClientRequest { request, op });
        waiter
    }

    /// The program version new roots are currently stamped with.
    pub fn active_version(&self) -> u64 {
        self.registry.active()
    }

    /// Live code upgrade: compiles `program` as the next version after the
    /// current deploy (incrementally — unchanged methods reuse the previous
    /// version's split artifacts and bytecode), registers it with every
    /// worker's version registry, and appends a `Redeploy` record to the
    /// replayable source. Blocks until the coordinator commits the switch:
    /// pipeline drained, pre-upgrade epoch cut, per-entity `__migrate__`
    /// pass acknowledged by every worker. Returns the now-active version.
    ///
    /// Invocations in flight when the upgrade was requested drain on the
    /// version their root was stamped with; calls submitted after this
    /// returns run the new version. Once the switch commits, versions
    /// older than the *previous* deploy are evicted from the registry —
    /// they have fully drained, and keeping the immediate predecessor
    /// covers a recovery that rewinds past the upgrade's own epoch cut.
    pub fn redeploy(&self, program: &se_lang::Program) -> Result<u64, Vec<LangError>> {
        let mut cur = self.current.lock();
        let prev_version = cur.graph.version;
        let compile_start = self.obs.now_ns();
        let (graph, recompile) = se_compiler::compile_upgrade(
            &cur.graph,
            program,
            &se_compiler::CompileOptions::default(),
        )?;
        let graph = Arc::new(graph);
        let (runner, vm) = se_vm::runner_for_upgrade(
            self.cfg.backend,
            &graph.program,
            cur.vm.as_deref().map(|v| (&cur.graph.program, v)),
        );
        let version = graph.version;
        self.obs.stage_span(
            se_obs::Stage::VmCompile,
            version,
            compile_start,
            self.obs.now_ns(),
        );
        self.obs.counter("vm.compile_runs").inc();
        if self.obs.enabled() {
            recompile.publish(&self.obs);
        }
        self.registry.insert(version, Arc::clone(&graph), runner);
        let waiter = self.submit(ClientOp::Redeploy { version });
        waiter.wait().map_err(|e| vec![e])?;
        *cur = CurrentDeploy { graph, vm };
        self.registry.evict_below(prev_version);
        Ok(version)
    }
}

impl EntityRuntime for StateflowRuntime {
    fn name(&self) -> &str {
        "stateflow"
    }

    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError> {
        let waiter = self.submit(ClientOp::Create {
            class: class.to_owned(),
            key: key.to_owned(),
            init,
        });
        waiter.wait()?;
        Ok(EntityRef::new(class, key))
    }

    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let inv = Invocation {
            request,
            target,
            method: method.into(),
            kind: InvocationKind::Start { args },
            stack: Vec::new(),
            // Roots are stamped with the engine's active version by the
            // coordinator when their batch is sealed; the client does not
            // know (and must not race on) the switchover point.
            version: se_ir::INITIAL_VERSION,
        };
        self.source.append(ClientRequest {
            request,
            op: ClientOp::Invoke(inv),
        });
        waiter
    }

    fn supports_transactions(&self) -> bool {
        true
    }

    fn shutdown(&self) {
        let first = !self.shutdown.swap(true, Ordering::SeqCst);
        self.source.close();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        if first {
            // Stop the periodic snapshot thread, then write the end-of-run
            // dump (a no-op returning Ok(None) when SE_OBS=off).
            drop(self.obs_snapshots.lock().take());
            let _ = self.obs.dump();
        }
        // Pending waiters error out when their completers drop.
        self.waiters.lock().clear();
        // Keep the senders alive until here so late messages don't panic.
        let _ = (&self.worker_senders, &self.coord_sender);
        // The runtime-owned durability dir dies with the deployment (all
        // worker threads have joined, so no WAL is still being written).
        if let Some(dir) = &self.owned_durability_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl Drop for StateflowRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
