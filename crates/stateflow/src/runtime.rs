//! Deployment and client API of the StateFlow runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use se_dataflow::{
    delay_channel, ComponentTimers, DelaySender, EntityRuntime, ReplayableSource,
    ResponseCompleter, ResponseWaiter, SnapshotStore, SourceReader, StateStore,
};
use se_ir::{DataflowGraph, Invocation, InvocationKind, RequestId};
use se_lang::{EntityRef, LangError, Value};

use crate::config::{DurabilityMode, StateflowConfig};
use crate::coordinator::{CoordStats, Coordinator};
use crate::msg::{ClientOp, ClientRequest, CoordMsg, WorkerMsg};
use crate::worker::Worker;

/// A deployed StateFlow application: coordinator + workers over the compiled
/// dataflow graph, with a replayable request source and snapshot store.
pub struct StateflowRuntime {
    cfg: StateflowConfig,
    source: ReplayableSource<ClientRequest>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    next_request: AtomicU64,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stats: Arc<CoordStats>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    obs: se_obs::Obs,
    /// Periodic `metrics.json` snapshot thread, if configured; stopped
    /// (dropped) at shutdown before the final dump.
    obs_snapshots: Mutex<Option<se_obs::PeriodicSnapshots>>,
    worker_senders: Vec<DelaySender<WorkerMsg>>,
    coord_sender: DelaySender<CoordMsg>,
    /// A durability directory this runtime created itself (config left
    /// `durability.dir` unset): removed at shutdown. User-provided
    /// directories are never touched.
    owned_durability_dir: Option<std::path::PathBuf>,
}

impl StateflowRuntime {
    /// Deploys a compiled dataflow graph on a fresh StateFlow cluster.
    ///
    /// `cfg.pipeline_depth` selects the coordinator schedule: 1 is classic
    /// stop-and-wait, ≥ 2 pipelines batches (see [`crate::coordinator`]).
    pub fn deploy(graph: DataflowGraph, mut cfg: StateflowConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(
            cfg.pipeline_depth >= 1,
            "pipeline_depth 0 would never seal a batch; 1 = stop-and-wait"
        );
        // WAL durability needs a directory; deployments that did not pick
        // one get a unique temp dir owned (and removed) by this runtime.
        let owned_durability_dir = (cfg.durability.mode == DurabilityMode::Wal
            && cfg.durability.dir.is_none())
        .then(|| {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "se-wal-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&dir).expect("create durability dir");
            cfg.durability.dir = Some(dir.clone());
            dir
        });
        let graph = Arc::new(graph);
        let obs = se_obs::Obs::new(&cfg.obs);
        let obs_snapshots = Mutex::new(obs.spawn_periodic_snapshots());
        // Deploy-time backend selection: for the VM backend every method
        // body is lowered to bytecode exactly once, here, and the compiled
        // program is shared by all workers.
        let compile_start = obs.now_ns();
        let runner = se_vm::runner_for(cfg.backend, &graph.program);
        obs.stage_span(se_obs::Stage::VmCompile, 0, compile_start, obs.now_ns());
        obs.counter("vm.compile_runs").inc();
        if obs.enabled() {
            se_compiler::stats(&graph).publish(&obs);
        }
        let snapshots = Arc::new(SnapshotStore::with_retention(cfg.snapshot_retention));
        let timers = Arc::new(ComponentTimers::new());
        let stats = Arc::new(CoordStats::register(&obs));
        let shutdown = Arc::new(AtomicBool::new(false));
        let source = ReplayableSource::new();
        let waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>> =
            Arc::new(Mutex::new(HashMap::new()));

        let (coord_tx, coord_rx) = delay_channel::<CoordMsg>();
        let mut worker_txs = Vec::with_capacity(cfg.workers);
        let mut worker_rxs = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = delay_channel::<WorkerMsg>();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        let mut threads = Vec::new();
        for (id, rx) in worker_rxs.into_iter().enumerate() {
            let worker = Worker::new(
                id,
                cfg.clone(),
                Arc::clone(&graph),
                Arc::clone(&runner),
                rx,
                worker_txs.clone(),
                coord_tx.clone(),
                Arc::clone(&snapshots),
                Arc::clone(&timers),
                obs.clone(),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("stateflow-worker{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }

        let coordinator = Coordinator::new(
            cfg.clone(),
            worker_txs.clone(),
            coord_rx,
            SourceReader::at(&source, 0),
            Arc::clone(&waiters),
            Arc::clone(&snapshots),
            Arc::clone(&stats),
            obs.clone(),
            Arc::clone(&shutdown),
        );
        threads.push(
            std::thread::Builder::new()
                .name("stateflow-coordinator".into())
                .spawn(move || coordinator.run())
                .expect("spawn coordinator"),
        );

        Self {
            cfg,
            source,
            waiters,
            next_request: AtomicU64::new(1),
            shutdown,
            threads: Mutex::new(threads),
            stats,
            snapshots,
            timers,
            obs,
            obs_snapshots,
            worker_senders: worker_txs,
            coord_sender: coord_tx,
            owned_durability_dir,
        }
    }

    fn fresh_request(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::SeqCst))
    }

    /// Protocol counters (batches, commits, aborts, snapshots, recoveries).
    pub fn stats(&self) -> &CoordStats {
        &self.stats
    }

    /// Per-component timing breakdown (overhead experiment).
    pub fn timers(&self) -> &ComponentTimers {
        &self.timers
    }

    /// The observability handle (stage histograms, counters, run dir).
    pub fn obs(&self) -> &se_obs::Obs {
        &self.obs
    }

    /// The snapshot store (inspected by recovery tests).
    pub fn snapshots(&self) -> &SnapshotStore<StateStore> {
        &self.snapshots
    }

    /// The runtime configuration.
    pub fn config(&self) -> &StateflowConfig {
        &self.cfg
    }

    fn submit(&self, op: ClientOp) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        self.source.append(ClientRequest { request, op });
        waiter
    }
}

impl EntityRuntime for StateflowRuntime {
    fn name(&self) -> &str {
        "stateflow"
    }

    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError> {
        let waiter = self.submit(ClientOp::Create {
            class: class.to_owned(),
            key: key.to_owned(),
            init,
        });
        waiter.wait()?;
        Ok(EntityRef::new(class, key))
    }

    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter {
        let request = self.fresh_request();
        let (completer, waiter) = ResponseWaiter::new();
        self.waiters.lock().insert(request, completer);
        let inv = Invocation {
            request,
            target,
            method: method.into(),
            kind: InvocationKind::Start { args },
            stack: Vec::new(),
        };
        self.source.append(ClientRequest {
            request,
            op: ClientOp::Invoke(inv),
        });
        waiter
    }

    fn supports_transactions(&self) -> bool {
        true
    }

    fn shutdown(&self) {
        let first = !self.shutdown.swap(true, Ordering::SeqCst);
        self.source.close();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        if first {
            // Stop the periodic snapshot thread, then write the end-of-run
            // dump (a no-op returning Ok(None) when SE_OBS=off).
            drop(self.obs_snapshots.lock().take());
            let _ = self.obs.dump();
        }
        // Pending waiters error out when their completers drop.
        self.waiters.lock().clear();
        // Keep the senders alive until here so late messages don't panic.
        let _ = (&self.worker_senders, &self.coord_sender);
        // The runtime-owned durability dir dies with the deployment (all
        // worker threads have joined, so no WAL is still being written).
        if let Some(dir) = &self.owned_durability_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl Drop for StateflowRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
