//! The StateFlow coordinator: batch sealing, the reserve/commit barrier, and
//! recovery orchestration.
//!
//! "StateFlow requires a single core coordinator, and the rest are used for
//! its workers" (§4). The coordinator sequences transactions (assigning
//! globally ordered ids), drives each batch through Aria's three phases,
//! answers clients, schedules consistent snapshots at quiescent points, and
//! fences + restores workers after a failure.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use se_aria::{BatchId, CommitRule, TxnId};
use se_dataflow::{
    DelayReceiver, DelaySender, Epoch, ResponseCompleter, SnapshotStore, SourceReader, StateStore,
};
use se_ir::{partition_for, Invocation, RequestId, Response};
use se_lang::Value;

use crate::config::StateflowConfig;
use crate::msg::{ClientOp, ClientRequest, ConflictFlags, CoordMsg, WorkerMsg};

/// Shared counters exposed to tests and benchmarks.
#[derive(Debug, Default)]
pub struct CoordStats {
    /// Batches committed.
    pub batches: std::sync::atomic::AtomicU64,
    /// Transactions committed.
    pub commits: std::sync::atomic::AtomicU64,
    /// Transaction executions that aborted (and were retried).
    pub aborts: std::sync::atomic::AtomicU64,
    /// Snapshots completed.
    pub snapshots: std::sync::atomic::AtomicU64,
    /// Recoveries performed.
    pub recoveries: std::sync::atomic::AtomicU64,
}

enum Phase {
    Idle,
    Executing {
        batch: BatchId,
        txns: Arc<Vec<TxnId>>,
        responses: HashMap<TxnId, Response>,
        errors: BTreeSet<TxnId>,
        /// Serial-fallback batches hold exactly one transaction and skip
        /// the reservation round (a lone transaction cannot conflict).
        fallback: bool,
    },
    Deciding {
        batch: BatchId,
        txns: Arc<Vec<TxnId>>,
        responses: HashMap<TxnId, Response>,
        errors: BTreeSet<TxnId>,
        flags: HashMap<TxnId, ConflictFlags>,
        workers_reported: usize,
    },
    Snapshotting {
        epoch: Epoch,
        acks: usize,
    },
    Restoring {
        gen: u64,
        acks: usize,
    },
}

/// The coordinator thread.
pub struct Coordinator {
    cfg: StateflowConfig,
    workers: Vec<DelaySender<WorkerMsg>>,
    inbox: DelayReceiver<CoordMsg>,
    reader: SourceReader<ClientRequest>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    stats: Arc<CoordStats>,
    shutdown: Arc<AtomicBool>,

    gen: u64,
    next_txn: TxnId,
    /// Pending transaction ids, ascending (retries re-enter at the front).
    queue: VecDeque<TxnId>,
    /// Aborted transactions awaiting the serial fallback (single-txn
    /// batches run before anything else).
    fallback_queue: VecDeque<TxnId>,
    /// Root invocation per pending or in-flight transaction.
    roots: HashMap<TxnId, Invocation>,
    batch_deadline: Option<Instant>,
    next_batch: BatchId,
    batches_since_snapshot: u64,
    epoch: Epoch,
    phase: Phase,
    /// Commit messages sent but not yet acknowledged. Commit application is
    /// ordered before the next batch's Exec by per-worker channel FIFO, so
    /// the coordinator does not wait for acks — they only gate snapshots.
    outstanding_commit_acks: usize,
}

impl Coordinator {
    /// Creates the coordinator (run on its own thread).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: StateflowConfig,
        workers: Vec<DelaySender<WorkerMsg>>,
        inbox: DelayReceiver<CoordMsg>,
        reader: SourceReader<ClientRequest>,
        waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        stats: Arc<CoordStats>,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        Self {
            cfg,
            workers,
            inbox,
            reader,
            waiters,
            snapshots,
            stats,
            shutdown,
            gen: 0,
            next_txn: 0,
            queue: VecDeque::new(),
            fallback_queue: VecDeque::new(),
            roots: HashMap::new(),
            batch_deadline: None,
            next_batch: 0,
            batches_since_snapshot: 0,
            epoch: 0,
            phase: Phase::Idle,
            outstanding_commit_acks: 0,
        }
    }

    fn owner_of(&self, key: &str) -> usize {
        partition_for(key, self.workers.len())
    }

    fn control_delay(&self) -> Duration {
        // Flat delay for control-plane messages keeps per-worker channels
        // FIFO (creates must not be overtaken by snapshot markers).
        self.cfg.net.f2f_latency(64)
    }

    fn broadcast(&self, mk: impl Fn() -> WorkerMsg) {
        for w in &self.workers {
            w.send_after(mk(), self.control_delay());
        }
    }

    /// The coordinator loop.
    pub fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.broadcast(|| WorkerMsg::Shutdown);
                return;
            }
            self.drain_source();
            self.maybe_start_batch();
            if let Some(msg) = self.inbox.recv_timeout(Duration::from_micros(500)) {
                self.handle(msg);
            }
        }
    }

    fn drain_source(&mut self) {
        // Requests are not consumed while restoring: the generation fence
        // must be in place first.
        if matches!(self.phase, Phase::Restoring { .. }) {
            return;
        }
        while let Some(req) = self.reader.poll() {
            match req.op {
                ClientOp::Create { class, key, init } => {
                    let owner = self.owner_of(&key);
                    self.workers[owner].send_after(
                        WorkerMsg::Create {
                            gen: self.gen,
                            request: req.request,
                            class,
                            key,
                            init,
                        },
                        self.control_delay(),
                    );
                }
                ClientOp::Invoke(inv) => {
                    let txn = self.next_txn;
                    self.next_txn += 1;
                    self.roots.insert(txn, inv);
                    self.queue.push_back(txn);
                    if self.batch_deadline.is_none() {
                        self.batch_deadline = Some(Instant::now() + self.cfg.batch_interval);
                    }
                }
            }
        }
    }

    fn maybe_start_batch(&mut self) {
        if !matches!(self.phase, Phase::Idle) {
            return;
        }
        // Serial fallback: aborted transactions run immediately as
        // single-transaction batches (which can never lose a conflict),
        // before any new batch is sealed.
        let mut fallback = false;
        let txns: Vec<TxnId> = if let Some(txn) = self.fallback_queue.pop_front() {
            fallback = true;
            vec![txn]
        } else {
            if self.queue.is_empty() {
                return;
            }
            let full = self.queue.len() >= self.cfg.max_batch;
            let due = self.batch_deadline.is_some_and(|d| Instant::now() >= d);
            if !full && !due {
                return;
            }
            let take = self.queue.len().min(self.cfg.max_batch);
            self.queue.drain(..take).collect()
        };
        debug_assert!(
            txns.windows(2).all(|w| w[0] < w[1]),
            "queue must stay ascending"
        );
        let batch = self.next_batch;
        self.next_batch += 1;
        for txn in &txns {
            let inv = self.roots[txn].clone();
            let owner = self.owner_of(inv.target.key.as_str());
            let bytes = inv.approx_size();
            self.workers[owner].send_after(
                WorkerMsg::Exec {
                    gen: self.gen,
                    txn: *txn,
                    inv,
                },
                self.cfg.net.f2f_latency(bytes),
            );
        }
        self.batch_deadline =
            (!self.queue.is_empty()).then(|| Instant::now() + self.cfg.batch_interval);
        self.phase = Phase::Executing {
            batch,
            txns: Arc::new(txns),
            responses: HashMap::new(),
            errors: BTreeSet::new(),
            fallback,
        };
    }

    fn handle(&mut self, msg: CoordMsg) {
        match msg {
            CoordMsg::WorkerFailed { .. } => self.begin_recovery(),
            CoordMsg::RestoreAck { gen, worker: _ } => {
                if gen != self.gen {
                    return;
                }
                if let Phase::Restoring { gen: g, acks } = &mut self.phase {
                    if *g == gen {
                        *acks += 1;
                        if *acks == self.workers.len() {
                            self.phase = Phase::Idle;
                        }
                    }
                }
            }
            CoordMsg::CreateDone {
                gen,
                request,
                result,
            } => {
                if gen != self.gen {
                    return;
                }
                if let Some(completer) = self.waiters.lock().remove(&request) {
                    completer.complete(result.map(|()| Value::Unit));
                }
            }
            CoordMsg::ExecDone { gen, txn, response } => {
                if gen != self.gen {
                    return;
                }
                self.on_exec_done(txn, response);
            }
            CoordMsg::Flags {
                gen, batch, flags, ..
            } => {
                if gen != self.gen {
                    return;
                }
                self.on_flags(batch, flags);
            }
            CoordMsg::CommitAck { gen, .. } => {
                if gen != self.gen {
                    return;
                }
                self.outstanding_commit_acks = self.outstanding_commit_acks.saturating_sub(1);
                self.maybe_snapshot();
            }
            CoordMsg::SnapshotAck { gen, epoch, .. } => {
                if gen != self.gen {
                    return;
                }
                if let Phase::Snapshotting { epoch: e, acks } = &mut self.phase {
                    if *e == epoch {
                        *acks += 1;
                        if *acks == self.workers.len() {
                            self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
                            self.batches_since_snapshot = 0;
                            // Old epochs are pruned by the snapshot store's
                            // own retention policy (`snapshot_retention`).
                            self.phase = Phase::Idle;
                        }
                    }
                }
            }
        }
    }

    fn on_exec_done(&mut self, txn: TxnId, response: Response) {
        let Phase::Executing {
            batch,
            txns,
            responses,
            errors,
            fallback,
        } = &mut self.phase
        else {
            return;
        };
        if !txns.contains(&txn) || responses.contains_key(&txn) {
            return;
        }
        if response.result.is_err() {
            errors.insert(txn);
        }
        responses.insert(txn, response);
        if responses.len() < txns.len() {
            return;
        }
        let batch = *batch;
        let txns = Arc::clone(txns);
        let responses = std::mem::take(responses);
        let errors = std::mem::take(errors);
        if *fallback {
            // A single-transaction batch cannot conflict: commit directly,
            // skipping the reservation round. Errored chains still abort.
            let aborted: BTreeSet<TxnId> = errors.clone();
            self.finish_batch(batch, txns, responses, aborted, Vec::new());
            return;
        }
        let txns2 = Arc::clone(&txns);
        let gen = self.gen;
        self.broadcast(move || WorkerMsg::Reserve {
            gen,
            batch,
            txns: Arc::clone(&txns2),
        });
        self.phase = Phase::Deciding {
            batch,
            txns,
            responses,
            errors,
            flags: HashMap::new(),
            workers_reported: 0,
        };
    }

    fn on_flags(&mut self, batch_id: BatchId, new_flags: Vec<(TxnId, ConflictFlags)>) {
        let Phase::Deciding {
            batch,
            txns,
            responses,
            errors,
            flags,
            workers_reported,
        } = &mut self.phase
        else {
            return;
        };
        if *batch != batch_id {
            return;
        }
        for (txn, f) in new_flags {
            flags.entry(txn).or_default().merge(f);
        }
        *workers_reported += 1;
        if *workers_reported < self.workers.len() {
            return;
        }
        // All partitions reported: decide.
        let rule = self.cfg.commit_rule;
        let mut aborted = BTreeSet::new();
        let mut retry = Vec::new();
        for txn in txns.iter() {
            if errors.contains(txn) {
                // Failed chains abort without retry; the error is the answer.
                aborted.insert(*txn);
                continue;
            }
            let f = flags.get(txn).copied().unwrap_or_default();
            let abort = f.waw
                || match rule {
                    CommitRule::Basic => f.raw,
                    CommitRule::Reordering => f.raw && f.war,
                };
            if abort {
                aborted.insert(*txn);
                retry.push(*txn);
            }
        }
        let batch = *batch;
        let txns = Arc::clone(txns);
        let responses = std::mem::take(responses);
        self.finish_batch(batch, txns, responses, aborted, retry);
    }

    /// Broadcasts the commit decision, answers clients, requeues aborted
    /// transactions, and returns to `Idle` without waiting for commit acks
    /// (per-worker FIFO orders commit application before the next batch's
    /// Exec; acks only gate snapshots).
    fn finish_batch(
        &mut self,
        batch: BatchId,
        txns: Arc<Vec<TxnId>>,
        mut responses: HashMap<TxnId, Response>,
        aborted: BTreeSet<TxnId>,
        retry: Vec<TxnId>,
    ) {
        let aborted = Arc::new(aborted);
        let txns2 = Arc::clone(&txns);
        let aborted2 = Arc::clone(&aborted);
        let gen = self.gen;
        self.broadcast(move || WorkerMsg::Commit {
            gen,
            batch,
            txns: Arc::clone(&txns2),
            aborted: Arc::clone(&aborted2),
        });
        self.outstanding_commit_acks += self.workers.len();
        let retry_set: BTreeSet<TxnId> = retry.iter().copied().collect();

        // Respond to committed (and hard-failed) transactions.
        let mut committed = 0u64;
        for txn in txns.iter() {
            if retry_set.contains(txn) {
                continue;
            }
            committed += 1;
            self.roots.remove(txn);
            if let Some(resp) = responses.remove(txn) {
                if let Some(completer) = self.waiters.lock().remove(&resp.request) {
                    completer.complete(resp.result);
                }
            }
        }
        self.stats.commits.fetch_add(committed, Ordering::Relaxed);
        self.stats
            .aborts
            .fetch_add(retry.len() as u64, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);

        // Aborted transactions keep their (lower) ids so the oldest can
        // never lose again; routing depends on the fallback policy.
        match self.cfg.fallback {
            se_aria::FallbackPolicy::Retry => {
                for txn in retry.into_iter().rev() {
                    self.queue.push_front(txn);
                }
            }
            se_aria::FallbackPolicy::Serial => {
                self.fallback_queue.extend(retry);
            }
        }
        if !self.queue.is_empty() && self.batch_deadline.is_none() {
            self.batch_deadline = Some(Instant::now() + self.cfg.batch_interval);
        }

        self.batches_since_snapshot += 1;
        self.phase = Phase::Idle;
        self.maybe_snapshot();
    }

    /// Takes a consistent snapshot when due and the system is quiescent:
    /// no pending work, and every commit acknowledged — every consumed
    /// request is then reflected in worker state, so (state, source offset)
    /// is a consistent cut.
    fn maybe_snapshot(&mut self) {
        let snapshot_due = self.cfg.snapshot_every_batches > 0
            && self.batches_since_snapshot >= self.cfg.snapshot_every_batches;
        if !snapshot_due
            || !matches!(self.phase, Phase::Idle)
            || !self.queue.is_empty()
            || !self.fallback_queue.is_empty()
            || self.outstanding_commit_acks > 0
        {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.snapshots.begin_epoch(epoch, self.workers.len());
        self.snapshots
            .put_source_offset(epoch, "requests", self.reader.offset());
        self.broadcast(|| WorkerMsg::Snapshot {
            gen: self.gen,
            epoch,
        });
        self.phase = Phase::Snapshotting { epoch, acks: 0 };
    }

    fn begin_recovery(&mut self) {
        self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        self.gen += 1;
        let gen = self.gen;
        let epoch = self.snapshots.latest_complete();
        // Roll back the request cursor to the snapshot point and drop all
        // volatile scheduling state; replay rebuilds it.
        let offset = epoch
            .and_then(|e| self.snapshots.source_offset(e, "requests"))
            .unwrap_or(0);
        self.reader.seek(offset);
        self.queue.clear();
        self.fallback_queue.clear();
        self.outstanding_commit_acks = 0;
        self.roots.clear();
        self.batch_deadline = None;
        self.batches_since_snapshot = 0;
        self.broadcast(|| WorkerMsg::Restore { gen, epoch });
        self.phase = Phase::Restoring { gen, acks: 0 };
    }
}
