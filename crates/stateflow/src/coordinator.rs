//! The StateFlow coordinator: batch sealing, the reserve/commit barrier, and
//! recovery orchestration.
//!
//! "StateFlow requires a single core coordinator, and the rest are used for
//! its workers" (§4). The coordinator sequences transactions (assigning
//! globally ordered ids), drives batches through Aria's three phases,
//! answers clients, schedules consistent snapshots at pipeline-drain points,
//! and fences + restores workers after a failure.
//!
//! Batches are pipelined: up to `pipeline_depth` batches are in flight at
//! once, and batch *N+1* is sealed and dispatched as soon as batch *N*
//! enters its reservation round — Aria's overlap of batch *i+1*'s execution
//! with batch *i*'s commit round — instead of waiting for *N*'s commit
//! broadcast. Ordering correctness lives at the workers (committed-batch
//! watermarks); the coordinator only bounds the window and keeps commit
//! decisions flowing in batch order. At depth ≥ 2 single-transaction
//! serial-fallback batches become *solo* batches that commit at their final
//! hop without a coordinator round trip, which is what lets hot-key retry
//! storms drain at execution speed instead of one network round trip per
//! transaction. `pipeline_depth = 1` (the default) reproduces the classic
//! stop-and-wait schedule exactly.
//!
//! Chaos hardening: data-plane messages (`Exec`/`Reserve`/`Commit` out,
//! `ExecDone`/`Flags`/`CommitAck` in) may be duplicated, delayed or
//! quarantined by a scripted [`ChaosPlan`], so every per-message state
//! transition here is idempotent — flag reports are deduplicated per
//! worker, commit acks are tracked as per-batch worker sets, and stale
//! completions are dropped. Control-plane traffic (restore, snapshot
//! markers, failure notifications) bypasses injection: it models the
//! failure detector and alignment protocol the engine assumes reliable.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use se_aria::{BatchId, CommitRule, TxnId};
use se_chaos::{BatchKindTag, HistoryEvent, Seam, TxnOutcome};
use se_dataflow::{
    send_with_chaos, DelayReceiver, DelaySender, Epoch, ResponseCompleter, SnapshotStore,
    SourceReader, StateStore,
};
use se_ir::{partition_for, Invocation, InvocationKind, RequestId, Response, INITIAL_VERSION};
use se_lang::Value;

use crate::config::StateflowConfig;
use crate::msg::{ClientOp, ClientRequest, ConflictFlags, CoordMsg, WorkerMsg};

/// Shared counters exposed to tests and benchmarks — registry-backed
/// `se-obs` handles published under `coord.*`, so the engine's decision
/// counts and the observability snapshot come from one source (they used to
/// be a private `AtomicU64` struct the exporters could not see).
///
/// Totals are *derived*, never double-tracked: there is deliberately no
/// separate "finished transactions" counter — use
/// [`CoordStats::finished_txns`], which is `commits + failed` by
/// construction and therefore cannot drift from its parts.
#[derive(Debug, Clone)]
pub struct CoordStats {
    /// Batches decided (committed or solo-finalized).
    pub batches: se_obs::Counter,
    /// Transactions committed successfully.
    pub commits: se_obs::Counter,
    /// Transactions that finished with an application/runtime error: the
    /// error is the client's answer, nothing commits, nothing retries.
    /// Counted apart from `commits` so benchmark throughput is not inflated
    /// by failures.
    pub failed: se_obs::Counter,
    /// Transaction executions that aborted (and were retried).
    pub aborts: se_obs::Counter,
    /// Snapshots completed.
    pub snapshots: se_obs::Counter,
    /// Recoveries performed.
    pub recoveries: se_obs::Counter,
}

impl CoordStats {
    /// Registers the counters in `obs`'s metrics registry (idempotent: two
    /// handles from the same registry share the same underlying counters).
    pub fn register(obs: &se_obs::Obs) -> CoordStats {
        CoordStats {
            batches: obs.counter("coord.batches"),
            commits: obs.counter("coord.commits"),
            failed: obs.counter("coord.failed"),
            aborts: obs.counter("coord.aborts"),
            snapshots: obs.counter("coord.snapshots"),
            recoveries: obs.counter("coord.recoveries"),
        }
    }

    /// Transactions that reached a final answer (committed or failed).
    /// Derived from one source so it cannot disagree with its addends.
    pub fn finished_txns(&self) -> u64 {
        self.commits.get() + self.failed.get()
    }
}

impl Default for CoordStats {
    /// Detached counters (not visible in any dump) — registry-backed via
    /// [`CoordStats::register`] in the runtime path.
    fn default() -> Self {
        CoordStats::register(&se_obs::Obs::noop())
    }
}

/// What kind of batch an in-flight entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKind {
    /// A sealed multi-transaction batch: executes, reserves, decides.
    Regular,
    /// A single-transaction serial-fallback batch (skips reservation — a
    /// lone transaction cannot lose a conflict). With `solo` set (pipeline
    /// depth ≥ 2) the final-hop worker decides and commits it locally and
    /// the coordinator merely records the outcome; otherwise the
    /// coordinator broadcasts the commit as for any batch (the depth-1
    /// stop-and-wait path).
    Fallback {
        /// Commits at the final hop, no coordinator round trip.
        solo: bool,
    },
}

impl BatchKind {
    fn tag(self) -> BatchKindTag {
        match self {
            BatchKind::Regular => BatchKindTag::Regular,
            BatchKind::Fallback { solo: false } => BatchKindTag::Fallback,
            BatchKind::Fallback { solo: true } => BatchKindTag::Solo,
        }
    }
}

/// Progress of one in-flight batch.
enum BatchStage {
    /// Waiting for every transaction's `ExecDone`.
    Executing,
    /// Reservation round in flight: waiting for every worker's flags.
    Deciding {
        flags: HashMap<TxnId, ConflictFlags>,
        /// Workers whose flags arrived — a set, not a counter, so a
        /// duplicated `Flags` delivery cannot trigger a premature decision
        /// with a partition's conflicts missing.
        reported: BTreeSet<usize>,
    },
}

/// Coordinator-side bookkeeping for one sealed, not-yet-finished batch.
struct InFlightBatch {
    /// The batch's transaction ids, ascending.
    txns: Arc<Vec<TxnId>>,
    responses: HashMap<TxnId, Response>,
    /// Transactions whose chain errored (abort without retry).
    errors: BTreeSet<TxnId>,
    kind: BatchKind,
    stage: BatchStage,
    /// Obs timestamps (0 with observability off): when the batch was sealed
    /// and when its last `ExecDone` arrived — the `batch_exec` /
    /// `batch_decide` span boundaries.
    sealed_ns: u64,
    exec_done_ns: u64,
}

impl InFlightBatch {
    /// Whether this batch blocks sealing the next one: regular (and
    /// coordinator-committed fallback) batches must enter their reservation
    /// round first; solo batches never block — they are decided at their
    /// final hop, and overlapping them is the whole point.
    fn blocks_sealing(&self) -> bool {
        matches!(self.stage, BatchStage::Executing)
            && self.kind != (BatchKind::Fallback { solo: true })
    }
}

/// A live upgrade the coordinator has consumed from the source but not yet
/// committed. Queued FIFO; at most the front entry is ever in progress.
struct PendingUpgrade {
    /// The version to activate.
    version: u64,
    /// Client waiter to complete at commit (`None` for an upgrade re-armed
    /// by recovery — its waiter was answered in the previous lineage).
    request: Option<RequestId>,
    /// Source offset of the `Redeploy` record itself. Recovery uses it to
    /// decide whether the record replays from the source (offset at or
    /// past the restored cut) or must be re-armed manually.
    offset: u64,
    /// Whether the epoch-boundary snapshot for this upgrade has started.
    started: bool,
}

/// A committed live upgrade, kept for recovery bookkeeping.
struct CommittedUpgrade {
    /// The pre-upgrade epoch cut (migration writes land *after* it).
    epoch: Epoch,
    /// The activated version.
    version: u64,
    /// Source offset of the `Redeploy` record.
    offset: u64,
}

/// Exclusive coordinator modes. Batches are only in flight while `Running`;
/// snapshots, migrations and restores require a fully drained pipeline.
enum Mode {
    Running,
    Snapshotting {
        epoch: Epoch,
        acks: usize,
        /// This snapshot is a live upgrade's epoch boundary: on completion
        /// the coordinator dispatches the migration pass instead of
        /// resuming sealing.
        upgrade: bool,
    },
    /// Live-upgrade migration pass in flight: waiting for every worker's
    /// `MigrateAck` before stamping new roots with the new version.
    Migrating {
        version: u64,
        epoch: Epoch,
        acks: usize,
    },
    Restoring {
        gen: u64,
        acks: usize,
        /// The epoch this round asked every worker to restore to.
        target: Option<Epoch>,
        /// Minimum epoch actually reached so far (`None` = initial state).
        /// Volatile workers always reach `target`; durable workers
        /// recovering from damaged disks may fall short, and when the
        /// round ends below its target the coordinator runs another round
        /// at this floor so every partition rejoins at the same cut.
        floor: Option<Epoch>,
    },
}

/// The coordinator thread.
pub struct Coordinator {
    cfg: StateflowConfig,
    workers: Vec<DelaySender<WorkerMsg>>,
    inbox: DelayReceiver<CoordMsg>,
    reader: SourceReader<ClientRequest>,
    waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    stats: Arc<CoordStats>,
    obs: se_obs::Obs,
    shutdown: Arc<AtomicBool>,

    gen: u64,
    next_txn: TxnId,
    /// Pending transaction ids, ascending (retries re-enter at the front).
    queue: VecDeque<TxnId>,
    /// Aborted transactions awaiting the serial fallback (single-txn
    /// batches run before anything else).
    fallback_queue: VecDeque<TxnId>,
    /// Root invocation per pending or in-flight transaction.
    roots: HashMap<TxnId, Invocation>,
    batch_deadline: Option<Instant>,
    next_batch: BatchId,
    batches_since_snapshot: u64,
    epoch: Epoch,
    mode: Mode,
    /// Sealed batches that have not finished their commit round, at most
    /// `pipeline_depth` of them, keyed by batch id.
    in_flight: BTreeMap<BatchId, InFlightBatch>,
    /// Workers whose commit ack for a batch is still outstanding. Tracked
    /// as sets (not a counter) so duplicated acks cannot unlock a snapshot
    /// early; they only gate snapshots.
    pending_acks: BTreeMap<BatchId, BTreeSet<usize>>,
    /// Commit acks that arrived before their batch was finalized: a solo
    /// batch's deciding worker acks right after its `ExecDone`, and a
    /// chaos-delayed `ExecDone` can lose the race. Held only for batches
    /// still in flight, drained when the batch finalizes.
    early_acks: BTreeMap<BatchId, BTreeSet<usize>>,
    /// Per-worker newest durable-on-disk epoch, from snapshot acks. Only
    /// populated with durability on.
    durable_epochs: BTreeMap<usize, Option<Epoch>>,
    /// Cluster durable floor (min over `durable_epochs` at the last
    /// completed snapshot round): pins the in-memory snapshot store's
    /// retention (a recovery may fall back here and needs this epoch's
    /// source offset) and licenses workers to compact their WALs below it.
    /// Non-decreasing — see the pin-floor invariant in `se_dataflow`.
    durable_floor: Option<Epoch>,
    /// Obs: when the current pending-batch queue started filling (the
    /// `batch_seal` span start). `None` while the queue is empty or off.
    queue_since_ns: Option<u64>,
    /// Obs: decision timestamp per batch whose commit acks are still
    /// outstanding (the `batch_commit` span start). Only populated while
    /// tracing/metrics are on.
    commit_started_ns: BTreeMap<BatchId, u64>,
    /// Program version new roots are stamped with at seal time.
    active_version: u64,
    /// Consumed-but-uncommitted upgrades, FIFO. While non-empty the
    /// coordinator stops consuming the source: requests appended after a
    /// `Redeploy` record must run on the new version.
    pending_upgrades: VecDeque<PendingUpgrade>,
    /// Committed upgrades of this run, ascending by version; recovery
    /// rewinds this list against the restored cut.
    upgrades: Vec<CommittedUpgrade>,
    /// True once any `Redeploy` was consumed. Gates the `BatchVersion`
    /// history events so upgrade-free histories stay byte-identical to
    /// builds without the upgrade layer.
    versioned: bool,
    /// Side state of the `inject_torn_upgrade` bug lever: the upgrade whose
    /// migration acks are still being counted while the coordinator — the
    /// bug — already resumed sealing. `(upgrade, epoch, acks)`.
    injected_migrating: Option<(PendingUpgrade, Epoch, usize)>,
}

impl Coordinator {
    /// Creates the coordinator (run on its own thread).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: StateflowConfig,
        workers: Vec<DelaySender<WorkerMsg>>,
        inbox: DelayReceiver<CoordMsg>,
        reader: SourceReader<ClientRequest>,
        waiters: Arc<Mutex<HashMap<RequestId, ResponseCompleter>>>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        stats: Arc<CoordStats>,
        obs: se_obs::Obs,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        Self {
            cfg,
            workers,
            inbox,
            reader,
            waiters,
            snapshots,
            stats,
            obs,
            shutdown,
            gen: 0,
            next_txn: 0,
            queue: VecDeque::new(),
            fallback_queue: VecDeque::new(),
            roots: HashMap::new(),
            batch_deadline: None,
            next_batch: 0,
            batches_since_snapshot: 0,
            epoch: 0,
            mode: Mode::Running,
            in_flight: BTreeMap::new(),
            pending_acks: BTreeMap::new(),
            early_acks: BTreeMap::new(),
            durable_epochs: BTreeMap::new(),
            durable_floor: None,
            queue_since_ns: None,
            commit_started_ns: BTreeMap::new(),
            active_version: INITIAL_VERSION,
            pending_upgrades: VecDeque::new(),
            upgrades: Vec::new(),
            versioned: false,
            injected_migrating: None,
        }
    }

    fn owner_of(&self, key: &str) -> usize {
        partition_for(key, self.workers.len())
    }

    fn control_delay(&self) -> Duration {
        // Flat delay for control-plane messages keeps per-worker channels
        // FIFO (creates must not be overtaken by snapshot markers).
        self.cfg.net.f2f_latency(64)
    }

    /// Control-plane broadcast: never faulted.
    fn broadcast(&self, mk: impl Fn() -> WorkerMsg) {
        for w in &self.workers {
            w.send_after(mk(), self.control_delay());
        }
    }

    /// Data-plane broadcast (`Reserve`/`Commit`): runs through the chaos
    /// seam, so scripted faults can drop, duplicate or delay per worker.
    fn broadcast_chaos(&self, mk: impl Fn() -> WorkerMsg) {
        for w in &self.workers {
            send_with_chaos(
                &self.cfg.chaos,
                Seam::CoordToWorker,
                &self.cfg.net,
                w,
                mk(),
                self.control_delay(),
            );
        }
    }

    /// Arms the per-worker commit-ack set for a finalized batch, crediting
    /// any acks that raced ahead of the finalization.
    fn arm_pending_acks(&mut self, batch_id: BatchId) {
        let mut pending: BTreeSet<usize> = (0..self.workers.len()).collect();
        if let Some(early) = self.early_acks.remove(&batch_id) {
            for w in early {
                pending.remove(&w);
            }
        }
        if !pending.is_empty() {
            self.pending_acks.insert(batch_id, pending);
        }
    }

    /// Obs: opens (or immediately closes) the `batch_commit` span for a
    /// just-decided batch. The span runs decision → last commit ack; if all
    /// acks raced ahead of the decision it closes as a point.
    fn track_commit_span(&mut self, batch_id: BatchId, decided_ns: u64) {
        if !self.obs.enabled() {
            return;
        }
        if self.pending_acks.contains_key(&batch_id) {
            self.commit_started_ns.insert(batch_id, decided_ns);
        } else {
            self.obs.stage_span(
                se_obs::Stage::BatchCommit,
                batch_id,
                decided_ns,
                self.obs.now_ns(),
            );
        }
    }

    /// Appends to the recorded history, if recording is on. The closure
    /// keeps event construction off the hot path when it is not.
    fn record(&self, mk: impl FnOnce() -> HistoryEvent) {
        if let Some(h) = &self.cfg.history {
            h.record(mk());
        }
    }

    fn pipeline_depth(&self) -> usize {
        self.cfg.pipeline_depth.max(1)
    }

    /// The coordinator loop.
    pub fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.broadcast(|| WorkerMsg::Shutdown);
                return;
            }
            self.drain_source();
            self.maybe_begin_upgrade();
            self.maybe_seal_batches();
            // Drain every due message before blocking: decide rounds for
            // batch N+1 must not queue behind the apply traffic of batch N
            // when an exec pool lets many completions land at once. Bounded
            // per turn — try_recv only yields messages already due.
            let mut handled = false;
            while let Some(msg) = self.inbox.try_recv() {
                self.handle(msg);
                handled = true;
            }
            if !handled {
                if let Some(msg) = self.inbox.recv_timeout(Duration::from_micros(500)) {
                    self.handle(msg);
                }
            }
        }
    }

    fn drain_source(&mut self) {
        // Requests are not consumed while restoring: the generation fence
        // must be in place first.
        if matches!(self.mode, Mode::Restoring { .. }) {
            return;
        }
        loop {
            // Consumption pauses at a `Redeploy` record: everything
            // appended after it must run on the new version, so it waits
            // behind the upgrade's epoch boundary.
            if !self.pending_upgrades.is_empty() {
                return;
            }
            let Some(req) = self.reader.poll() else {
                return;
            };
            match req.op {
                ClientOp::Create { class, key, init } => {
                    let owner = self.owner_of(&key);
                    self.workers[owner].send_after(
                        WorkerMsg::Create {
                            gen: self.gen,
                            request: req.request,
                            class,
                            key,
                            init,
                        },
                        self.control_delay(),
                    );
                }
                ClientOp::Invoke(inv) => {
                    let txn = self.next_txn;
                    self.next_txn += 1;
                    self.record(|| HistoryEvent::Root {
                        txn,
                        request: inv.request.0,
                        target: inv.target,
                        method: inv.method.to_string(),
                        args: match &inv.kind {
                            InvocationKind::Start { args } => args.clone(),
                            InvocationKind::Resume { .. } => Vec::new(),
                        },
                    });
                    self.roots.insert(txn, inv);
                    self.queue.push_back(txn);
                    if self.batch_deadline.is_none() {
                        self.batch_deadline = Some(Instant::now() + self.cfg.batch_interval);
                    }
                    if self.obs.enabled() && self.queue_since_ns.is_none() {
                        self.queue_since_ns = Some(self.obs.now_ns());
                    }
                }
                ClientOp::Redeploy { version } => {
                    self.versioned = true;
                    // `poll` already advanced the cursor past this record.
                    let offset = self.reader.offset().saturating_sub(1);
                    self.pending_upgrades.push_back(PendingUpgrade {
                        version,
                        request: Some(req.request),
                        offset,
                        started: false,
                    });
                }
            }
        }
    }

    /// Starts the front pending upgrade once the pipeline has fully
    /// drained: cuts the pre-upgrade epoch (a normal snapshot round whose
    /// completion dispatches the migration pass instead of resuming
    /// sealing). Mirrors [`Coordinator::maybe_snapshot`]'s drain
    /// conditions — (state, source offset) is a consistent cut here too.
    fn maybe_begin_upgrade(&mut self) {
        let can_start = matches!(self.mode, Mode::Running)
            && self.in_flight.is_empty()
            && self.queue.is_empty()
            && self.fallback_queue.is_empty()
            && self.pending_acks.is_empty();
        let Some(p) = self.pending_upgrades.front_mut() else {
            return;
        };
        if p.started || !can_start {
            return;
        }
        p.started = true;
        self.epoch += 1;
        let epoch = self.epoch;
        self.snapshots.begin_epoch(epoch, self.workers.len());
        self.snapshots
            .put_source_offset(epoch, "requests", self.reader.offset());
        let durable_floor = self.durable_floor;
        self.broadcast(|| WorkerMsg::Snapshot {
            gen: self.gen,
            epoch,
            durable_floor,
        });
        self.mode = Mode::Snapshotting {
            epoch,
            acks: 0,
            upgrade: true,
        };
    }

    /// Dispatches the migration pass for the front pending upgrade (its
    /// epoch-boundary snapshot just completed). Under the torn-upgrade bug
    /// lever the coordinator flips the version and resumes sealing without
    /// waiting for the workers' acks — the atomicity violation the chaos
    /// checker must catch.
    fn start_migration(&mut self, epoch: Epoch) {
        let Some(p) = self.pending_upgrades.front() else {
            return;
        };
        let version = p.version;
        self.record(|| HistoryEvent::UpgradeStarted { version, epoch });
        self.broadcast(|| WorkerMsg::Migrate {
            gen: self.gen,
            version,
            epoch,
        });
        if self.cfg.inject_torn_upgrade {
            let p = self.pending_upgrades.pop_front().expect("front checked");
            self.active_version = version;
            self.injected_migrating = Some((p, epoch, 0));
            // Mode stays Running: sealing resumes while migration races.
        } else {
            self.mode = Mode::Migrating {
                version,
                epoch,
                acks: 0,
            };
        }
    }

    /// Commits an upgrade after every worker acknowledged its migration
    /// pass: new roots stamp the new version from here on.
    fn commit_upgrade(&mut self, p: PendingUpgrade, epoch: Epoch) {
        let version = p.version;
        self.active_version = version;
        self.obs.gauge("deploy.active_version").set(version as i64);
        self.upgrades.push(CommittedUpgrade {
            epoch,
            version,
            offset: p.offset,
        });
        self.record(|| HistoryEvent::UpgradeCommitted { version, epoch });
        if let Some(request) = p.request {
            if let Some(completer) = self.waiters.lock().remove(&request) {
                completer.complete(Ok(Value::Unit));
            }
        }
    }

    /// Seals as many batches as the pipeline window allows. A new batch may
    /// start once every in-flight regular batch has entered its reservation
    /// round and fewer than `pipeline_depth` batches are in flight — at
    /// depth 1 that degenerates to the stop-and-wait "seal only when idle".
    fn maybe_seal_batches(&mut self) {
        if !matches!(self.mode, Mode::Running) {
            return;
        }
        while self.in_flight.len() < self.pipeline_depth()
            && self.in_flight.values().all(|b| !b.blocks_sealing())
            && self.seal_next_batch()
        {}
    }

    /// Seals and dispatches one batch if one is ready; returns whether it
    /// did. Serial-fallback transactions run first, as single-transaction
    /// batches (which can never lose a conflict).
    fn seal_next_batch(&mut self) -> bool {
        let (txns, kind): (Vec<TxnId>, BatchKind) =
            if let Some(txn) = self.fallback_queue.pop_front() {
                // At depth ≥ 2 the fallback batch commits at its final hop.
                let solo = self.pipeline_depth() >= 2;
                (vec![txn], BatchKind::Fallback { solo })
            } else {
                if self.queue.is_empty() {
                    return false;
                }
                let full = self.queue.len() >= self.cfg.max_batch;
                let due = self.batch_deadline.is_some_and(|d| Instant::now() >= d);
                if !full && !due {
                    return false;
                }
                let take = self.queue.len().min(self.cfg.max_batch);
                (self.queue.drain(..take).collect(), BatchKind::Regular)
            };
        debug_assert!(
            txns.windows(2).all(|w| w[0] < w[1]),
            "queue must stay ascending"
        );
        let batch = self.next_batch;
        self.next_batch += 1;
        self.record(|| HistoryEvent::Sealed {
            batch,
            txns: txns.clone(),
            kind: kind.tag(),
        });
        if self.versioned {
            let version = self.active_version;
            self.record(|| HistoryEvent::BatchVersion { batch, version });
        }
        let solo = kind == (BatchKind::Fallback { solo: true });
        for txn in &txns {
            // Roots are stamped with the active version at *seal* time:
            // continuations inherit it hop by hop, so an in-flight chain
            // stays on its original version until it drains.
            let inv = self.roots[txn].clone().at_version(self.active_version);
            let owner = self.owner_of(inv.target.key.as_str());
            let bytes = inv.approx_size();
            send_with_chaos(
                &self.cfg.chaos,
                Seam::CoordToWorker,
                &self.cfg.net,
                &self.workers[owner],
                WorkerMsg::Exec {
                    gen: self.gen,
                    batch,
                    txn: *txn,
                    hop: 0,
                    inv,
                    solo,
                },
                self.cfg.net.f2f_latency(bytes),
            );
        }
        self.batch_deadline =
            (!self.queue.is_empty()).then(|| Instant::now() + self.cfg.batch_interval);
        let mut sealed_ns = 0;
        if self.obs.enabled() {
            sealed_ns = self.obs.now_ns();
            // Seal span: queue started filling → dispatched. Fallback
            // batches skip the accumulation queue; their seal is a point.
            let opened = match kind {
                BatchKind::Regular => self.queue_since_ns.take().unwrap_or(sealed_ns),
                BatchKind::Fallback { .. } => sealed_ns,
            };
            self.obs
                .stage_span(se_obs::Stage::BatchSeal, batch, opened, sealed_ns);
            if matches!(kind, BatchKind::Regular) && !self.queue.is_empty() {
                // The queue keeps filling toward the next batch.
                self.queue_since_ns = Some(sealed_ns);
            }
        }
        self.in_flight.insert(
            batch,
            InFlightBatch {
                txns: Arc::new(txns),
                responses: HashMap::new(),
                errors: BTreeSet::new(),
                kind,
                stage: BatchStage::Executing,
                sealed_ns,
                exec_done_ns: 0,
            },
        );
        true
    }

    fn handle(&mut self, msg: CoordMsg) {
        match msg {
            CoordMsg::WorkerFailed { .. } => self.begin_recovery(),
            CoordMsg::RestoreAck {
                gen,
                worker: _,
                reached,
            } => {
                if gen != self.gen {
                    return;
                }
                if let Mode::Restoring {
                    gen: g,
                    acks,
                    target,
                    floor,
                } = &mut self.mode
                {
                    if *g == gen {
                        *acks += 1;
                        // min treating None ("initial state") as lowest.
                        *floor = match (*floor, reached) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            _ => None,
                        };
                        if *acks == self.workers.len() {
                            let (floor, target) = (*floor, *target);
                            if floor == target {
                                self.mode = Mode::Running;
                            } else {
                                // Some partition's disk fell short of the
                                // target: rejoin everyone at the cluster
                                // minimum. Workers that already restored
                                // higher truncate down — their re-executed
                                // suffix replays from the source.
                                self.start_restore_round(floor);
                            }
                        }
                    }
                }
            }
            CoordMsg::CreateDone {
                gen,
                request,
                result,
            } => {
                if gen != self.gen {
                    return;
                }
                if let Some(completer) = self.waiters.lock().remove(&request) {
                    completer.complete(result.map(|()| Value::Unit));
                }
            }
            CoordMsg::ExecDone {
                gen,
                batch,
                txn,
                response,
            } => {
                if gen != self.gen {
                    return;
                }
                self.on_exec_done(batch, txn, response);
            }
            CoordMsg::Flags {
                gen,
                batch,
                worker,
                flags,
            } => {
                if gen != self.gen {
                    return;
                }
                self.on_flags(batch, worker, flags);
            }
            CoordMsg::CommitAck { gen, batch, worker } => {
                if gen != self.gen {
                    return;
                }
                // Set-removal is naturally idempotent under duplicated
                // acks; an ack for a batch that is neither pending nor in
                // flight is stale and ignored.
                if let Some(pending) = self.pending_acks.get_mut(&batch) {
                    pending.remove(&worker);
                    if pending.is_empty() {
                        self.pending_acks.remove(&batch);
                        if let Some(start) = self.commit_started_ns.remove(&batch) {
                            self.obs.stage_span(
                                se_obs::Stage::BatchCommit,
                                batch,
                                start,
                                self.obs.now_ns(),
                            );
                        }
                    }
                } else if self.in_flight.contains_key(&batch) {
                    // Raced ahead of the batch's ExecDone (solo batches
                    // ack immediately): credit it when the batch finalizes.
                    self.early_acks.entry(batch).or_default().insert(worker);
                }
                self.maybe_snapshot();
            }
            CoordMsg::SnapshotAck {
                gen,
                epoch,
                worker,
                durable,
            } => {
                if gen != self.gen {
                    return;
                }
                self.durable_epochs.insert(worker, durable);
                if let Mode::Snapshotting {
                    epoch: e,
                    acks,
                    upgrade,
                } = &mut self.mode
                {
                    if *e == epoch {
                        *acks += 1;
                        if *acks == self.workers.len() {
                            let upgrade = *upgrade;
                            self.stats.snapshots.inc();
                            self.batches_since_snapshot = 0;
                            // Old epochs are pruned by the snapshot store's
                            // own retention policy (`snapshot_retention`).
                            self.mode = Mode::Running;
                            self.update_durable_floor();
                            if upgrade {
                                self.start_migration(epoch);
                            }
                        }
                    }
                }
            }
            CoordMsg::MigrateAck {
                gen,
                version,
                worker: _,
            } => {
                if gen != self.gen {
                    return;
                }
                if let Mode::Migrating {
                    version: v,
                    epoch,
                    acks,
                } = &mut self.mode
                {
                    if *v == version {
                        *acks += 1;
                        if *acks == self.workers.len() {
                            let epoch = *epoch;
                            self.mode = Mode::Running;
                            let p = self
                                .pending_upgrades
                                .pop_front()
                                .expect("migrating implies a pending upgrade");
                            self.commit_upgrade(p, epoch);
                        }
                    }
                } else if let Some((p, _, acks)) = &mut self.injected_migrating {
                    // Torn-upgrade bug lever: acks are still counted so the
                    // upgrade eventually "commits" — after the damage.
                    if p.version == version {
                        *acks += 1;
                        if *acks == self.workers.len() {
                            let (p, epoch, _) =
                                self.injected_migrating.take().expect("checked above");
                            self.commit_upgrade(p, epoch);
                        }
                    }
                }
            }
        }
    }

    fn on_exec_done(&mut self, batch_id: BatchId, txn: TxnId, response: Response) {
        let Some(batch) = self.in_flight.get_mut(&batch_id) else {
            return;
        };
        if !matches!(batch.stage, BatchStage::Executing) {
            return;
        }
        // Batches are ascending by construction: O(log n) membership, not a
        // linear scan per completion.
        if batch.txns.binary_search(&txn).is_err() || batch.responses.contains_key(&txn) {
            return;
        }
        if response.result.is_err() {
            batch.errors.insert(txn);
        }
        batch.responses.insert(txn, response);
        if batch.responses.len() < batch.txns.len() {
            return;
        }
        if self.obs.enabled() {
            batch.exec_done_ns = self.obs.now_ns();
            self.obs.stage_span(
                se_obs::Stage::BatchExec,
                batch_id,
                batch.sealed_ns,
                batch.exec_done_ns,
            );
        }
        match batch.kind {
            BatchKind::Fallback { solo: true } => {
                // The final-hop worker already decided and committed; this
                // is the commit record.
                self.finalize_solo(batch_id);
            }
            BatchKind::Fallback { solo: false } => {
                // A single-transaction batch cannot conflict: commit
                // directly, skipping the reservation round. Errored chains
                // still abort.
                let aborted = batch.errors.clone();
                self.finish_batch(batch_id, aborted, Vec::new());
            }
            BatchKind::Regular => {
                let txns = Arc::clone(&batch.txns);
                let errors = Arc::new(batch.errors.clone());
                batch.stage = BatchStage::Deciding {
                    flags: HashMap::new(),
                    reported: BTreeSet::new(),
                };
                let gen = self.gen;
                self.broadcast_chaos(move || WorkerMsg::Reserve {
                    gen,
                    batch: batch_id,
                    txns: Arc::clone(&txns),
                    errors: Arc::clone(&errors),
                });
                // Entering the reservation round unblocks sealing the next
                // batch (checked each loop turn in maybe_seal_batches).
            }
        }
    }

    fn on_flags(
        &mut self,
        batch_id: BatchId,
        worker: usize,
        new_flags: Vec<(TxnId, ConflictFlags)>,
    ) {
        let Some(batch) = self.in_flight.get_mut(&batch_id) else {
            return;
        };
        let BatchStage::Deciding { flags, reported } = &mut batch.stage else {
            return;
        };
        if !reported.insert(worker) {
            // A duplicated Flags delivery: the first report already
            // counted (and carried identical content).
            return;
        }
        for (txn, f) in new_flags {
            flags.entry(txn).or_default().merge(f);
        }
        if reported.len() < self.workers.len() {
            return;
        }
        // All partitions reported: decide.
        let rule = self.cfg.commit_rule;
        let mut aborted = BTreeSet::new();
        let mut retry = Vec::new();
        for txn in batch.txns.iter() {
            if batch.errors.contains(txn) {
                // Failed chains abort without retry; the error is the answer.
                aborted.insert(*txn);
                continue;
            }
            let f = flags.get(txn).copied().unwrap_or_default();
            let abort = f.waw
                || match rule {
                    CommitRule::Basic => f.raw,
                    CommitRule::Reordering => f.raw && f.war,
                };
            if abort {
                aborted.insert(*txn);
                retry.push(*txn);
            }
        }
        self.finish_batch(batch_id, aborted, retry);
    }

    /// Broadcasts the commit decision, answers clients, requeues aborted
    /// transactions, and frees the pipeline slot without waiting for commit
    /// acks (workers order commit application by batch id via their
    /// watermarks; acks only gate snapshots).
    fn finish_batch(&mut self, batch_id: BatchId, aborted: BTreeSet<TxnId>, retry: Vec<TxnId>) {
        let Some(batch) = self.in_flight.remove(&batch_id) else {
            return;
        };
        let InFlightBatch {
            txns,
            mut responses,
            errors,
            kind,
            exec_done_ns,
            ..
        } = batch;
        let decided_ns = if self.obs.enabled() {
            let now = self.obs.now_ns();
            self.obs
                .stage_span(se_obs::Stage::BatchDecide, batch_id, exec_done_ns, now);
            now
        } else {
            0
        };
        let aborted = Arc::new(aborted);
        let txns2 = Arc::clone(&txns);
        let aborted2 = Arc::clone(&aborted);
        let gen = self.gen;
        self.broadcast_chaos(move || WorkerMsg::Commit {
            gen,
            batch: batch_id,
            txns: Arc::clone(&txns2),
            aborted: Arc::clone(&aborted2),
        });
        self.arm_pending_acks(batch_id);
        self.track_commit_span(batch_id, decided_ns);
        let retry_set: BTreeSet<TxnId> = retry.iter().copied().collect();

        // Respond to committed and hard-failed transactions (the latter are
        // answered with their error and counted apart — they never commit).
        let mut committed = 0u64;
        let mut failed = 0u64;
        let mut answers: Vec<Response> = Vec::new();
        let mut committed_outcomes: Vec<TxnOutcome> = Vec::new();
        let mut failed_outcomes: Vec<TxnOutcome> = Vec::new();
        let recording = self.cfg.history.is_some();
        for txn in txns.iter() {
            if retry_set.contains(txn) {
                continue;
            }
            if errors.contains(txn) {
                failed += 1;
            } else {
                committed += 1;
            }
            self.roots.remove(txn);
            if let Some(resp) = responses.remove(txn) {
                if recording {
                    let outcome = TxnOutcome {
                        txn: *txn,
                        request: resp.request.0,
                        result: resp.result.clone().map_err(|e| e.to_string()),
                    };
                    if errors.contains(txn) {
                        failed_outcomes.push(outcome);
                    } else {
                        committed_outcomes.push(outcome);
                    }
                }
                answers.push(resp);
            }
        }
        // Record the decision *before* answering clients: a client woken by
        // its response may immediately snapshot the history and must see
        // the commit that produced it.
        self.record(|| HistoryEvent::Decided {
            batch: batch_id,
            kind: kind.tag(),
            committed: committed_outcomes,
            failed: failed_outcomes,
            retried: retry.clone(),
        });
        for resp in answers {
            if let Some(completer) = self.waiters.lock().remove(&resp.request) {
                completer.complete(resp.result);
            }
        }
        self.stats.commits.add(committed);
        self.stats.failed.add(failed);
        self.stats.aborts.add(retry.len() as u64);
        self.stats.batches.inc();

        // Aborted transactions keep their (lower) ids so the oldest can
        // never lose again — also across overlapping batches: anything
        // sealed meanwhile holds strictly newer (higher) ids, so a retried
        // transaction still enters its next batch as the lowest id there.
        // Routing depends on the fallback policy.
        match self.cfg.fallback {
            se_aria::FallbackPolicy::Retry => {
                for txn in retry.into_iter().rev() {
                    self.queue.push_front(txn);
                }
            }
            se_aria::FallbackPolicy::Serial => {
                self.fallback_queue.extend(retry);
            }
        }
        if !self.queue.is_empty() && self.batch_deadline.is_none() {
            self.batch_deadline = Some(Instant::now() + self.cfg.batch_interval);
        }

        self.batches_since_snapshot += 1;
        self.maybe_snapshot();
    }

    /// Records a solo batch's outcome: the final-hop worker already decided
    /// it (commit unless errored), applied its writes and broadcast the
    /// record to its peers — the `ExecDone` doubles as the commit record,
    /// so the pipeline slot frees after one worker→coordinator hop.
    fn finalize_solo(&mut self, batch_id: BatchId) {
        let Some(batch) = self.in_flight.remove(&batch_id) else {
            return;
        };
        let InFlightBatch {
            txns,
            mut responses,
            errors,
            kind,
            ..
        } = batch;
        debug_assert_eq!(txns.len(), 1, "solo batches hold exactly one txn");
        // One ack per worker arrives: the deciding worker's own, and one
        // from each peer applying the broadcast record.
        self.arm_pending_acks(batch_id);
        // A solo batch's decision happened at its final-hop worker; on the
        // coordinator's timeline it is a point at the commit record.
        let decided_ns = if self.obs.enabled() {
            let now = self.obs.now_ns();
            self.obs
                .stage_span(se_obs::Stage::BatchDecide, batch_id, now, now);
            now
        } else {
            0
        };
        self.track_commit_span(batch_id, decided_ns);
        let txn = txns[0];
        let errored = errors.contains(&txn);
        if errored {
            self.stats.failed.inc();
        } else {
            self.stats.commits.inc();
        }
        self.stats.batches.inc();
        self.roots.remove(&txn);
        if let Some(resp) = responses.remove(&txn) {
            self.record(|| {
                let outcome = TxnOutcome {
                    txn,
                    request: resp.request.0,
                    result: resp.result.clone().map_err(|e| e.to_string()),
                };
                let (committed, failed) = if errored {
                    (Vec::new(), vec![outcome])
                } else {
                    (vec![outcome], Vec::new())
                };
                HistoryEvent::Decided {
                    batch: batch_id,
                    kind: kind.tag(),
                    committed,
                    failed,
                    retried: Vec::new(),
                }
            });
            if let Some(completer) = self.waiters.lock().remove(&resp.request) {
                completer.complete(resp.result);
            }
        }
        self.batches_since_snapshot += 1;
        self.maybe_snapshot();
    }

    /// Takes a consistent snapshot when due and the pipeline has drained:
    /// no in-flight batch, no pending work, and every commit acknowledged —
    /// every consumed request is then reflected in worker state, so
    /// (state, source offset) is a consistent cut.
    fn maybe_snapshot(&mut self) {
        let snapshot_due = self.cfg.snapshot_every_batches > 0
            && self.batches_since_snapshot >= self.cfg.snapshot_every_batches;
        if !snapshot_due
            || !matches!(self.mode, Mode::Running)
            || !self.in_flight.is_empty()
            || !self.queue.is_empty()
            || !self.fallback_queue.is_empty()
            || !self.pending_acks.is_empty()
        {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        self.snapshots.begin_epoch(epoch, self.workers.len());
        self.snapshots
            .put_source_offset(epoch, "requests", self.reader.offset());
        let durable_floor = self.durable_floor;
        self.broadcast(|| WorkerMsg::Snapshot {
            gen: self.gen,
            epoch,
            durable_floor,
        });
        self.mode = Mode::Snapshotting {
            epoch,
            acks: 0,
            upgrade: false,
        };
    }

    /// Recomputes the cluster durable floor after a completed snapshot
    /// round: the minimum epoch every worker can recover from its own
    /// disk. Pins the in-memory store's retention there (a recovery may
    /// fall back to it and needs its source offset) and licenses WAL
    /// compaction below it on the next snapshot marker.
    fn update_durable_floor(&mut self) {
        if self.durable_epochs.len() < self.workers.len() {
            return;
        }
        let mut min: Option<Epoch> = None;
        for d in self.durable_epochs.values() {
            let Some(e) = d else { return };
            min = Some(match min {
                Some(m) => m.min(*e),
                None => *e,
            });
        }
        if let Some(floor) = min {
            if self.durable_floor.is_none_or(|f| floor > f) {
                self.durable_floor = Some(floor);
                self.snapshots.set_pin_floor(floor);
            }
        }
    }

    fn begin_recovery(&mut self) {
        let target = self.snapshots.latest_complete();
        self.start_restore_round(target);
    }

    /// One restore round: fence with a fresh generation, roll the request
    /// cursor back to `target`'s offset, drop all volatile scheduling
    /// state, and tell every worker to restore to `target`. With
    /// durability on the round can end below its target (a damaged disk),
    /// in which case the `RestoreAck` handler starts another round at the
    /// cluster minimum; each round records its own `Recovery` event, and
    /// the history checker treats consecutive recoveries as one lineage
    /// ending at the last.
    fn start_restore_round(&mut self, target: Option<Epoch>) {
        // A target whose source offset is gone cannot be replayed to: fall
        // back to a full restart. Unreachable while the durable floor pins
        // retention correctly, but silently replaying from offset 0 into
        // epoch-`target` state would double-apply every earlier request.
        let target = match target {
            Some(e) if self.snapshots.source_offset(e, "requests").is_none() => None,
            t => t,
        };
        self.stats.recoveries.inc();
        self.gen += 1;
        let gen = self.gen;
        let offset = target
            .and_then(|e| self.snapshots.source_offset(e, "requests"))
            .unwrap_or(0);
        self.record(|| HistoryEvent::Recovery {
            gen,
            source_offset: offset,
        });
        self.reader.seek(offset);
        self.queue.clear();
        self.fallback_queue.clear();
        self.in_flight.clear();
        self.pending_acks.clear();
        self.early_acks.clear();
        self.roots.clear();
        self.batch_deadline = None;
        self.batches_since_snapshot = 0;
        self.rewind_upgrades(target, offset);
        // Batch numbering continues past the fenced-off window; the workers
        // re-arm their watermarks at `next_batch` so replayed batches run
        // without waiting for commits that died with the old generation.
        let next_batch = self.next_batch;
        self.broadcast(|| WorkerMsg::Restore {
            gen,
            epoch: target,
            next_batch,
        });
        self.mode = Mode::Restoring {
            gen,
            acks: 0,
            target,
            floor: target,
        };
    }

    /// Rolls the upgrade bookkeeping back to the restored cut, replaying
    /// the upgrade sequence exactly once per lineage.
    ///
    /// An upgrade's migration writes land *after* its pre-upgrade epoch
    /// `e`, so restoring to `target`:
    /// * `e < target` — the writes are inside the cut: the upgrade stays
    ///   committed and the active version keeps reflecting it.
    /// * `e >= target` (or full restart) — the writes are lost with the
    ///   state: the upgrade must run again. Its `Redeploy` record sits at
    ///   offset `o < offset(e+…)`; if `o >= offset` the record replays
    ///   from the source and re-arms itself, otherwise it is re-armed here
    ///   manually (without a waiter — the client was answered in the
    ///   previous lineage; completion of a missing waiter is a no-op).
    ///
    /// Not-yet-committed upgrades (including one interrupted mid-migration,
    /// whose epoch-boundary snapshot is pre-migration by construction)
    /// follow the same offset rule with `started` reset. Idempotent across
    /// consecutive restore rounds at decreasing targets.
    fn rewind_upgrades(&mut self, target: Option<Epoch>, offset: u64) {
        let mut rearmed: Vec<PendingUpgrade> = Vec::new();
        let mut kept: Vec<CommittedUpgrade> = Vec::new();
        for u in self.upgrades.drain(..) {
            if target.is_some_and(|t| u.epoch < t) {
                kept.push(u);
            } else if u.offset < offset {
                rearmed.push(PendingUpgrade {
                    version: u.version,
                    request: None,
                    offset: u.offset,
                    started: false,
                });
            }
            // else: the Redeploy record replays from the source.
        }
        self.upgrades = kept;
        let mut pending: Vec<PendingUpgrade> = self.pending_upgrades.drain(..).collect();
        if let Some((p, _, _)) = self.injected_migrating.take() {
            pending.push(p);
        }
        for mut p in pending {
            if p.offset < offset {
                p.started = false;
                rearmed.push(p);
            }
        }
        rearmed.sort_by_key(|p| p.version);
        self.pending_upgrades = rearmed.into();
        self.active_version = self
            .upgrades
            .last()
            .map(|u| u.version)
            .unwrap_or(INITIAL_VERSION);
        if self.obs.enabled() {
            self.obs
                .gauge("deploy.active_version")
                .set(self.active_version as i64);
        }
    }
}
