//! A StateFlow worker: one state partition plus the execute/reserve/commit
//! phases of the distributed Aria protocol.
//!
//! Workers communicate function-to-function over internal (cyclic) delay
//! channels — the design decision the paper credits for StateFlow's latency
//! advantage: "it allows for internal function-to-function communication and
//! does not require the roundtrips to Kafka" (§4).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use se_aria::{ReservationTable, TxnBuffer, TxnId};
use se_dataflow::{ComponentTimers, DelayReceiver, DelaySender, SnapshotStore, StateStore};
use se_ir::{
    partition_for, process_invocation_with, BodyRunner, DataflowGraph, Invocation, Response,
    StepEffect,
};
use se_lang::LangError;

use crate::config::StateflowConfig;
use crate::msg::{ConflictFlags, CoordMsg, WorkerMsg};

/// A worker thread's state and message loop.
pub struct Worker {
    id: usize,
    cfg: StateflowConfig,
    graph: Arc<DataflowGraph>,
    /// Executes split method bodies (interp or VM, per `cfg.backend`).
    runner: Arc<dyn BodyRunner>,
    store: StateStore,
    buffers: HashMap<TxnId, TxnBuffer>,
    inbox: DelayReceiver<WorkerMsg>,
    peers: Vec<DelaySender<WorkerMsg>>,
    coord: DelaySender<CoordMsg>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    gen: u64,
    /// Set after a simulated crash until the next Restore.
    dead: bool,
}

impl Worker {
    /// Creates a worker (call [`Worker::run`] on its own thread).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cfg: StateflowConfig,
        graph: Arc<DataflowGraph>,
        runner: Arc<dyn BodyRunner>,
        inbox: DelayReceiver<WorkerMsg>,
        peers: Vec<DelaySender<WorkerMsg>>,
        coord: DelaySender<CoordMsg>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        timers: Arc<ComponentTimers>,
    ) -> Self {
        Self {
            id,
            cfg,
            graph,
            runner,
            store: StateStore::new(),
            buffers: HashMap::new(),
            inbox,
            peers,
            coord,
            snapshots,
            timers,
            gen: 0,
            dead: false,
        }
    }

    fn node_name(&self) -> String {
        format!("worker{}", self.id)
    }

    /// The message loop; returns when a `Shutdown` message arrives or all
    /// senders disconnect.
    pub fn run(mut self) {
        loop {
            let Some(msg) = self.inbox.recv_timeout(Duration::from_millis(50)) else {
                if self.inbox.is_closed() {
                    return;
                }
                continue;
            };
            match msg {
                WorkerMsg::Shutdown => return,
                WorkerMsg::Restore { gen, epoch } => self.handle_restore(gen, epoch),
                // Everything else is fenced by generation and ignored while
                // "crashed".
                m => {
                    if self.dead || self.msg_gen(&m) < self.gen {
                        continue;
                    }
                    self.dispatch(m);
                }
            }
        }
    }

    fn msg_gen(&self, m: &WorkerMsg) -> u64 {
        match m {
            WorkerMsg::Create { gen, .. }
            | WorkerMsg::Exec { gen, .. }
            | WorkerMsg::Reserve { gen, .. }
            | WorkerMsg::Commit { gen, .. }
            | WorkerMsg::Snapshot { gen, .. }
            | WorkerMsg::Restore { gen, .. } => *gen,
            WorkerMsg::Shutdown => u64::MAX,
        }
    }

    fn dispatch(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Create {
                request,
                class,
                key,
                init,
                ..
            } => {
                let result = self.handle_create(&class, &key, init);
                self.send_coord(CoordMsg::CreateDone {
                    gen: self.gen,
                    request,
                    result,
                });
            }
            WorkerMsg::Exec { txn, inv, .. } => self.handle_exec(txn, inv),
            WorkerMsg::Reserve { batch, txns, .. } => self.handle_reserve(batch, &txns),
            WorkerMsg::Commit {
                batch,
                txns,
                aborted,
                ..
            } => self.handle_commit(batch, &txns, &aborted),
            WorkerMsg::Snapshot { epoch, .. } => {
                self.snapshots
                    .put(epoch, &self.node_name(), self.store.clone());
                self.send_coord(CoordMsg::SnapshotAck {
                    gen: self.gen,
                    epoch,
                    worker: self.id,
                });
            }
            WorkerMsg::Restore { .. } | WorkerMsg::Shutdown => unreachable!("handled in run()"),
        }
    }

    fn send_coord(&self, msg: CoordMsg) {
        self.coord.send_after(msg, self.cfg.net.f2f_latency(64));
    }

    fn handle_create(
        &mut self,
        class: &str,
        key: &str,
        init: Vec<(String, se_lang::Value)>,
    ) -> Result<(), LangError> {
        let class_def = &self.graph.program.class_or_err(class)?.class;
        let r = se_lang::EntityRef::new(class, key);
        self.store.insert(r, class_def.initial_state(key, init));
        Ok(())
    }

    /// The execute phase for one hop of a transaction's invocation chain.
    ///
    /// Reads see the committed snapshot overlaid with the transaction's own
    /// buffered writes; effects are buffered, never applied — Aria defers
    /// all writes to the commit phase.
    fn handle_exec(&mut self, txn: TxnId, mut inv: Invocation) {
        loop {
            // Failure injection: one simulated crash per plan.
            if self.cfg.failure.should_fail(&self.node_name()) {
                self.crash();
                return;
            }
            // Synthetic service time: burned on this thread, a partition is
            // sequential.
            se_dataflow::burn(self.cfg.net.scaled(self.cfg.service_time));

            let target = inv.target;
            let request = inv.request;
            // O(1): entity state is copy-on-write, so "read the committed
            // snapshot" is a refcount bump, not a deep copy.
            let committed = match self.store.get(&target) {
                Some(s) => s.clone(),
                None => {
                    self.send_coord(CoordMsg::ExecDone {
                        gen: self.gen,
                        txn,
                        response: Response {
                            request,
                            result: Err(LangError::runtime(format!("unknown entity {target}"))),
                        },
                    });
                    return;
                }
            };
            let buffer = self.buffers.entry(txn).or_default();
            let before = self
                .timers
                .time("state_read", || buffer.overlay_read(&target, &committed));
            // Copy-on-write: `after` shares storage with `before` until the
            // method actually writes an attribute.
            let mut after = before.clone();
            let effect = self.timers.time("function_execution", || {
                process_invocation_with(&self.graph.program, &*self.runner, inv, &mut after)
            });
            self.timers.time("state_write_buffer", || {
                buffer.record_effects(&target, &before, &after)
            });

            match effect {
                StepEffect::Respond(response) => {
                    self.send_coord(CoordMsg::ExecDone {
                        gen: self.gen,
                        txn,
                        response,
                    });
                    return;
                }
                StepEffect::Emit(next) => {
                    let owner = partition_for(next.target.key.as_str(), self.peers.len());
                    if owner == self.id {
                        // Same-partition call: continue locally, no hop.
                        inv = next;
                        continue;
                    }
                    let bytes = next.approx_size();
                    self.peers[owner].send_after(
                        WorkerMsg::Exec {
                            gen: self.gen,
                            txn,
                            inv: next,
                        },
                        self.cfg.net.f2f_latency(bytes),
                    );
                    return;
                }
            }
        }
    }

    /// The reservation phase: build the local table and report per-txn
    /// conflict flags for locally accessed keys.
    fn handle_reserve(&mut self, batch: se_aria::BatchId, txns: &[TxnId]) {
        let mut table = ReservationTable::new();
        for txn in txns {
            if let Some(buf) = self.buffers.get(txn) {
                table.reserve(*txn, buf);
            }
        }
        let flags: Vec<(TxnId, ConflictFlags)> = txns
            .iter()
            .filter_map(|txn| {
                let buf = self.buffers.get(txn)?;
                Some((
                    *txn,
                    ConflictFlags {
                        waw: table.waw(*txn, buf),
                        raw: table.raw(*txn, buf),
                        war: table.war(*txn, buf),
                    },
                ))
            })
            .collect();
        self.send_coord(CoordMsg::Flags {
            gen: self.gen,
            batch,
            worker: self.id,
            flags,
        });
    }

    /// The commit phase: install committed writes in ascending id order,
    /// discard everything else.
    fn handle_commit(
        &mut self,
        batch: se_aria::BatchId,
        txns: &[TxnId],
        aborted: &std::collections::BTreeSet<TxnId>,
    ) {
        debug_assert!(
            txns.windows(2).all(|w| w[0] < w[1]),
            "commit order must be ascending"
        );
        for txn in txns {
            let Some(buffer) = self.buffers.remove(txn) else {
                continue;
            };
            if aborted.contains(txn) {
                continue;
            }
            self.timers.time("state_store", || {
                for (entity, writes) in buffer.writes {
                    for (attr, value) in writes {
                        // Entities written here were read from this store
                        // during execute; they exist unless a concurrent
                        // create raced, which batching forbids.
                        let _ = self.store.apply_write(&entity, attr, value);
                    }
                }
            });
        }
        self.send_coord(CoordMsg::CommitAck {
            gen: self.gen,
            batch,
            worker: self.id,
        });
    }

    fn crash(&mut self) {
        // Volatile state dies with the "process".
        self.store = StateStore::new();
        self.buffers.clear();
        self.dead = true;
        self.send_coord(CoordMsg::WorkerFailed {
            gen: self.gen,
            worker: self.id,
        });
    }

    fn handle_restore(&mut self, gen: u64, epoch: Option<se_dataflow::Epoch>) {
        self.gen = gen;
        self.buffers.clear();
        self.store = epoch
            .and_then(|e| self.snapshots.get(e, &self.node_name()))
            .unwrap_or_default();
        self.dead = false;
        self.send_coord(CoordMsg::RestoreAck {
            gen,
            worker: self.id,
        });
    }
}
