//! A StateFlow worker: one state partition plus the execute/reserve/commit
//! phases of the distributed Aria protocol.
//!
//! Workers communicate function-to-function over internal (cyclic) delay
//! channels — the design decision the paper credits for StateFlow's latency
//! advantage: "it allows for internal function-to-function communication and
//! does not require the roundtrips to Kafka" (§4).
//!
//! With pipelining (`pipeline_depth ≥ 2`) batches overlap: the coordinator
//! dispatches batch *N+1* while batch *N* is still deciding, so per-channel
//! FIFO no longer guarantees that a batch's `Exec` messages arrive after the
//! previous batch's `Commit`. Each worker therefore keeps a committed-batch
//! [`CommitWatermark`] and defers any `Exec` (root or chain hop) of batch
//! *B* until the commit of batch *B−1* has been applied locally — every
//! execution still reads exactly the snapshot Aria's serial batch order
//! prescribes.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use se_aria::{BatchId, CommitWatermark, ReservationTable, TxnBuffer, TxnId};
use se_dataflow::{ComponentTimers, DelayReceiver, DelaySender, SnapshotStore, StateStore};
use se_ir::{
    partition_for, process_invocation_with, BodyRunner, DataflowGraph, Invocation, Response,
    StepEffect,
};
use se_lang::LangError;

use crate::config::StateflowConfig;
use crate::msg::{ConflictFlags, CoordMsg, WorkerMsg};

/// A commit record as applied by a worker: the batch's transactions
/// (ascending) and the subset whose effects must be discarded.
type CommitRecord = (Arc<Vec<TxnId>>, Arc<BTreeSet<TxnId>>);

/// An `Exec` message parked until its batch becomes runnable.
struct DeferredExec {
    txn: TxnId,
    inv: Invocation,
    solo: bool,
}

/// A worker thread's state and message loop.
pub struct Worker {
    id: usize,
    cfg: StateflowConfig,
    graph: Arc<DataflowGraph>,
    /// Executes split method bodies (interp or VM, per `cfg.backend`).
    runner: Arc<dyn BodyRunner>,
    store: StateStore,
    /// Per-batch buffered accesses: batches overlap under pipelining, so
    /// reservation state must be keyed by batch, not just transaction.
    buffers: HashMap<BatchId, HashMap<TxnId, TxnBuffer>>,
    /// Commit progress; orders execution across overlapping batches.
    watermark: CommitWatermark<CommitRecord>,
    /// Execs of batches whose predecessor has not committed locally yet.
    deferred: BTreeMap<BatchId, VecDeque<DeferredExec>>,
    inbox: DelayReceiver<WorkerMsg>,
    peers: Vec<DelaySender<WorkerMsg>>,
    coord: DelaySender<CoordMsg>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    gen: u64,
    /// Set after a simulated crash until the next Restore.
    dead: bool,
}

impl Worker {
    /// Creates a worker (call [`Worker::run`] on its own thread).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cfg: StateflowConfig,
        graph: Arc<DataflowGraph>,
        runner: Arc<dyn BodyRunner>,
        inbox: DelayReceiver<WorkerMsg>,
        peers: Vec<DelaySender<WorkerMsg>>,
        coord: DelaySender<CoordMsg>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        timers: Arc<ComponentTimers>,
    ) -> Self {
        Self {
            id,
            cfg,
            graph,
            runner,
            store: StateStore::new(),
            buffers: HashMap::new(),
            watermark: CommitWatermark::new(),
            deferred: BTreeMap::new(),
            inbox,
            peers,
            coord,
            snapshots,
            timers,
            gen: 0,
            dead: false,
        }
    }

    fn node_name(&self) -> String {
        format!("worker{}", self.id)
    }

    /// The message loop; returns when a `Shutdown` message arrives or all
    /// senders disconnect.
    pub fn run(mut self) {
        loop {
            let Some(msg) = self.inbox.recv_timeout(Duration::from_millis(50)) else {
                if self.inbox.is_closed() {
                    return;
                }
                continue;
            };
            match msg {
                WorkerMsg::Shutdown => return,
                WorkerMsg::Restore {
                    gen,
                    epoch,
                    next_batch,
                } => self.handle_restore(gen, epoch, next_batch),
                // Everything else is fenced by generation and ignored while
                // "crashed".
                m => {
                    if self.dead || self.msg_gen(&m) < self.gen {
                        continue;
                    }
                    self.dispatch(m);
                }
            }
        }
    }

    fn msg_gen(&self, m: &WorkerMsg) -> u64 {
        match m {
            WorkerMsg::Create { gen, .. }
            | WorkerMsg::Exec { gen, .. }
            | WorkerMsg::Reserve { gen, .. }
            | WorkerMsg::Commit { gen, .. }
            | WorkerMsg::Snapshot { gen, .. }
            | WorkerMsg::Restore { gen, .. } => *gen,
            WorkerMsg::Shutdown => u64::MAX,
        }
    }

    fn dispatch(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Create {
                request,
                class,
                key,
                init,
                ..
            } => {
                let result = self.handle_create(&class, &key, init);
                self.send_coord(CoordMsg::CreateDone {
                    gen: self.gen,
                    request,
                    result,
                });
            }
            WorkerMsg::Exec {
                batch,
                txn,
                inv,
                solo,
                ..
            } => self.handle_exec(batch, txn, inv, solo),
            WorkerMsg::Reserve {
                batch,
                txns,
                errors,
                ..
            } => self.handle_reserve(batch, &txns, &errors),
            WorkerMsg::Commit {
                batch,
                txns,
                aborted,
                ..
            } => self.handle_commit(batch, txns, aborted),
            WorkerMsg::Snapshot { epoch, .. } => {
                debug_assert!(
                    self.deferred.is_empty(),
                    "snapshots only cut at a drained pipeline \
                     (worker {}, deferred batches {:?}, watermark at {})",
                    self.id,
                    self.deferred.keys().collect::<Vec<_>>(),
                    self.watermark.next_expected()
                );
                self.snapshots
                    .put(epoch, &self.node_name(), self.store.clone());
                self.send_coord(CoordMsg::SnapshotAck {
                    gen: self.gen,
                    epoch,
                    worker: self.id,
                });
            }
            WorkerMsg::Restore { .. } | WorkerMsg::Shutdown => unreachable!("handled in run()"),
        }
    }

    fn send_coord(&self, msg: CoordMsg) {
        self.coord.send_after(msg, self.cfg.net.f2f_latency(64));
    }

    fn handle_create(
        &mut self,
        class: &str,
        key: &str,
        init: Vec<(String, se_lang::Value)>,
    ) -> Result<(), LangError> {
        let class_def = &self.graph.program.class_or_err(class)?.class;
        let r = se_lang::EntityRef::new(class, key);
        self.store.insert(r, class_def.initial_state(key, init));
        Ok(())
    }

    /// Entry point for `Exec` messages (roots and chain hops alike): run
    /// now if the batch's predecessor has committed locally, else park it
    /// on the watermark.
    fn handle_exec(&mut self, batch: BatchId, txn: TxnId, inv: Invocation, solo: bool) {
        if self.watermark.must_defer(batch) {
            self.deferred
                .entry(batch)
                .or_default()
                .push_back(DeferredExec { txn, inv, solo });
            return;
        }
        debug_assert!(
            self.watermark.runnable(batch),
            "Exec for already-committed batch {batch}"
        );
        self.run_chain(batch, txn, inv, solo);
    }

    /// Runs execs whose batch became runnable after a watermark advance.
    fn drain_deferred(&mut self) {
        loop {
            if self.dead {
                return;
            }
            let batch = self.watermark.next_expected();
            let Some(queue) = self.deferred.get_mut(&batch) else {
                return;
            };
            let Some(item) = queue.pop_front() else {
                self.deferred.remove(&batch);
                continue;
            };
            if queue.is_empty() {
                // Drop the entry before running: a solo commit inside
                // run_chain advances the watermark past this batch, after
                // which the loop would never revisit (and clean) its key.
                self.deferred.remove(&batch);
            }
            self.run_chain(batch, item.txn, item.inv, item.solo);
            // A solo commit inside run_chain may have advanced the
            // watermark; re-resolve the runnable batch from scratch. A
            // batch's queue only holds work that arrived before the batch
            // became runnable, so an advance past it cannot strand items.
        }
    }

    /// The execute phase for one hop of a transaction's invocation chain.
    ///
    /// Reads see the committed snapshot overlaid with the transaction's own
    /// buffered writes; effects are buffered, never applied — Aria defers
    /// all writes to the commit phase. Solo (single-transaction fallback)
    /// batches commit at the final hop; see [`Worker::commit_solo`].
    fn run_chain(&mut self, batch: BatchId, txn: TxnId, mut inv: Invocation, solo: bool) {
        loop {
            // Failure injection: one simulated crash per plan.
            if self.cfg.failure.should_fail(&self.node_name()) {
                self.crash();
                return;
            }
            // Synthetic service time: burned on this thread, a partition is
            // sequential.
            se_dataflow::burn(self.cfg.net.scaled(self.cfg.service_time));

            let target = inv.target;
            let request = inv.request;
            // O(1): entity state is copy-on-write, so "read the committed
            // snapshot" is a refcount bump, not a deep copy.
            let committed = match self.store.get(&target) {
                Some(s) => s.clone(),
                None => {
                    let response = Response {
                        request,
                        result: Err(LangError::runtime(format!("unknown entity {target}"))),
                    };
                    self.finish_chain(batch, txn, response, solo);
                    return;
                }
            };
            let buffer = self
                .buffers
                .entry(batch)
                .or_default()
                .entry(txn)
                .or_default();
            let before = self
                .timers
                .time("state_read", || buffer.overlay_read(&target, &committed));
            // Copy-on-write: `after` shares storage with `before` until the
            // method actually writes an attribute.
            let mut after = before.clone();
            let effect = self.timers.time("function_execution", || {
                process_invocation_with(&self.graph.program, &*self.runner, inv, &mut after)
            });
            self.timers.time("state_write_buffer", || {
                buffer.record_effects(&target, &before, &after)
            });

            match effect {
                StepEffect::Respond(response) => {
                    self.finish_chain(batch, txn, response, solo);
                    return;
                }
                StepEffect::Emit(next) => {
                    let owner = partition_for(next.target.key.as_str(), self.peers.len());
                    if owner == self.id {
                        // Same-partition call: continue locally, no hop.
                        inv = next;
                        continue;
                    }
                    let bytes = next.approx_size();
                    self.peers[owner].send_after(
                        WorkerMsg::Exec {
                            gen: self.gen,
                            batch,
                            txn,
                            inv: next,
                            solo,
                        },
                        self.cfg.net.f2f_latency(bytes),
                    );
                    return;
                }
            }
        }
    }

    /// Chain finished (with a result or an error): report to the
    /// coordinator, and for solo batches decide + commit right here.
    fn finish_chain(&mut self, batch: BatchId, txn: TxnId, response: Response, solo: bool) {
        if solo {
            self.commit_solo(batch, txn, response.result.is_err());
        }
        self.send_coord(CoordMsg::ExecDone {
            gen: self.gen,
            batch,
            txn,
            response,
        });
        if solo {
            // The coordinator counts one CommitAck per worker and batch;
            // peers ack through handle_commit, this worker acks its local
            // application. Sent after ExecDone (same channel, FIFO) so the
            // coordinator has registered the solo batch's completion first.
            self.send_coord(CoordMsg::CommitAck {
                gen: self.gen,
                batch,
                worker: self.id,
            });
            self.drain_deferred();
        }
    }

    /// Commits a single-transaction fallback batch at its final hop. A lone
    /// transaction can never lose a conflict, so the decision is locally
    /// determined: commit unless the chain errored. The worker applies its
    /// own buffered writes, advances its watermark, and broadcasts the
    /// commit record to peers (who hold any remote hops' buffers) — the
    /// coordinator round trip that stop-and-wait pays per fallback
    /// transaction disappears, which is what lets consecutive hot-key
    /// retries chain back-to-back on the owning worker.
    fn commit_solo(&mut self, batch: BatchId, txn: TxnId, errored: bool) {
        debug_assert!(
            self.watermark.runnable(batch),
            "solo batch {batch} committing out of order"
        );
        let local = self.buffers.remove(&batch);
        if !errored {
            if let Some(buffer) = local.and_then(|mut b| b.remove(&txn)) {
                self.apply_writes(buffer);
            }
        }
        self.watermark.advance_past(batch);
        let txns = Arc::new(vec![txn]);
        let aborted: Arc<BTreeSet<TxnId>> = Arc::new(if errored {
            BTreeSet::from([txn])
        } else {
            BTreeSet::new()
        });
        for (peer, sender) in self.peers.iter().enumerate() {
            if peer == self.id {
                continue;
            }
            sender.send_after(
                WorkerMsg::Commit {
                    gen: self.gen,
                    batch,
                    txns: Arc::clone(&txns),
                    aborted: Arc::clone(&aborted),
                },
                self.cfg.net.f2f_latency(64),
            );
        }
    }

    /// The reservation phase: build the local table and report per-txn
    /// conflict flags for locally accessed keys. Errored transactions abort
    /// unconditionally and never commit, so they neither reserve nor need
    /// flags — their buffered writes must not knock out healthy ones.
    fn handle_reserve(&mut self, batch: BatchId, txns: &[TxnId], errors: &BTreeSet<TxnId>) {
        let buffers = self.buffers.get(&batch);
        let buffer_of = |txn: &TxnId| buffers.and_then(|b| b.get(txn));
        let mut table = ReservationTable::new();
        for txn in txns {
            if errors.contains(txn) {
                continue;
            }
            if let Some(buf) = buffer_of(txn) {
                table.reserve(*txn, buf);
            }
        }
        let flags: Vec<(TxnId, ConflictFlags)> = txns
            .iter()
            .filter(|txn| !errors.contains(txn))
            .filter_map(|txn| {
                let buf = buffer_of(txn)?;
                Some((
                    *txn,
                    ConflictFlags {
                        waw: table.waw(*txn, buf),
                        raw: table.raw(*txn, buf),
                        war: table.war(*txn, buf),
                    },
                ))
            })
            .collect();
        self.send_coord(CoordMsg::Flags {
            gen: self.gen,
            batch,
            worker: self.id,
            flags,
        });
    }

    /// The commit phase: apply records in batch order (buffering any that
    /// arrive early), then release execs the advance unblocked.
    fn handle_commit(
        &mut self,
        batch: BatchId,
        txns: Arc<Vec<TxnId>>,
        aborted: Arc<BTreeSet<TxnId>>,
    ) {
        for (batch, (txns, aborted)) in self.watermark.offer(batch, (txns, aborted)) {
            self.apply_commit(batch, &txns, &aborted);
        }
        self.drain_deferred();
    }

    /// Installs one batch's committed writes in ascending id order and
    /// discards everything else.
    fn apply_commit(&mut self, batch: BatchId, txns: &[TxnId], aborted: &BTreeSet<TxnId>) {
        debug_assert!(
            txns.windows(2).all(|w| w[0] < w[1]),
            "commit order must be ascending"
        );
        let mut buffers = self.buffers.remove(&batch).unwrap_or_default();
        for txn in txns {
            let Some(buffer) = buffers.remove(txn) else {
                continue;
            };
            if aborted.contains(txn) {
                continue;
            }
            self.apply_writes(buffer);
        }
        self.send_coord(CoordMsg::CommitAck {
            gen: self.gen,
            batch,
            worker: self.id,
        });
    }

    fn apply_writes(&mut self, buffer: TxnBuffer) {
        self.timers.time("state_store", || {
            for (entity, writes) in buffer.writes {
                for (attr, value) in writes {
                    // Entities written here were read from this store
                    // during execute; they exist unless a concurrent
                    // create raced, which batching forbids.
                    let _ = self.store.apply_write(&entity, attr, value);
                }
            }
        });
    }

    fn crash(&mut self) {
        // Volatile state dies with the "process".
        self.store = StateStore::new();
        self.buffers.clear();
        self.deferred.clear();
        self.dead = true;
        self.send_coord(CoordMsg::WorkerFailed {
            gen: self.gen,
            worker: self.id,
        });
    }

    fn handle_restore(&mut self, gen: u64, epoch: Option<se_dataflow::Epoch>, next_batch: BatchId) {
        self.gen = gen;
        self.buffers.clear();
        self.deferred.clear();
        self.watermark.reset(next_batch);
        self.store = epoch
            .and_then(|e| self.snapshots.get(e, &self.node_name()))
            .unwrap_or_default();
        self.dead = false;
        self.send_coord(CoordMsg::RestoreAck {
            gen,
            worker: self.id,
        });
    }
}
