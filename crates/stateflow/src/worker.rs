//! A StateFlow worker: one state partition plus the execute/reserve/commit
//! phases of the distributed Aria protocol.
//!
//! Workers communicate function-to-function over internal (cyclic) delay
//! channels — the design decision the paper credits for StateFlow's latency
//! advantage: "it allows for internal function-to-function communication and
//! does not require the roundtrips to Kafka" (§4).
//!
//! With pipelining (`pipeline_depth ≥ 2`) batches overlap: the coordinator
//! dispatches batch *N+1* while batch *N* is still deciding, so per-channel
//! FIFO no longer guarantees that a batch's `Exec` messages arrive after the
//! previous batch's `Commit`. Each worker therefore keeps a committed-batch
//! [`CommitWatermark`] and defers any `Exec` (root or chain hop) of batch
//! *B* until the commit of batch *B−1* has been applied locally — every
//! execution still reads exactly the snapshot Aria's serial batch order
//! prescribes.
//!
//! Shard-parallel execution (`exec_threads ≥ 2`): each worker owns an
//! intra-partition work-stealing exec pool. Aria's deterministic batches
//! make intra-batch execution embarrassingly parallel — every transaction
//! reads the committed snapshot overlaid with its own private buffer, and
//! the store is never mutated inside a batch's execution window (the commit
//! of batch *B* requires every `ExecDone` of *B*, and the watermark defers
//! batch *B+1*'s executions until that commit applied) — so chain segments
//! fan out to the pool while the protocol thread keeps exclusive ownership
//! of all protocol state. A segment checks out the transaction's buffer,
//! executes hops (including same-partition continuations), and checks back
//! in via a node-local [`WorkerMsg::SegmentDone`]; the protocol thread then
//! performs the sends, solo commits and bookkeeping exactly where the
//! serial path would. At `exec_threads = 1` the pool does not exist and the
//! pre-pool serial schedule is preserved instruction for instruction.
//!
//! Chaos hardening: with a scripted [`se_chaos::ChaosPlan`] armed, any
//! data-plane message may arrive duplicated, late or not at all (until a
//! recovery fences it), so the worker's message handling is idempotent:
//! `Exec` deliveries carry hop sequence numbers and anything at or below
//! the already-executed hop is dropped (re-running a hop would double-apply
//! its effects in the transaction buffer), `Exec`s for already-committed
//! batches are stale and ignored, and commit records are deduplicated by
//! the watermark. Crashes can be scripted at three protocol points —
//! executing a hop, handling a reservation round, applying a commit — and
//! per incarnation, so a restored worker can be killed again.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use se_aria::{BatchId, CommitWatermark, ReservationTable, TxnBuffer, TxnId};
use se_chaos::{CrashPoint, HistoryEvent, Seam};
use se_dataflow::{
    send_with_chaos, ComponentTimers, DelayReceiver, DelaySender, DurableOptions, DurableStore,
    SharedStateStore, SnapshotStore, StateStore,
};
use se_ir::{
    partition_for, process_invocation_with, Invocation, RequestId, Response, StepEffect,
    VersionRegistry,
};
use se_lang::LangError;

use crate::config::{DurabilityMode, StateflowConfig};
use crate::msg::{ConflictFlags, CoordMsg, SegmentOutcome, WorkerMsg};

/// A commit record as applied by a worker: the batch's transactions
/// (ascending) and the subset whose effects must be discarded.
type CommitRecord = (Arc<Vec<TxnId>>, Arc<BTreeSet<TxnId>>);

/// An `Exec` message parked until its batch becomes runnable.
struct DeferredExec {
    txn: TxnId,
    hop: u32,
    inv: Invocation,
    solo: bool,
}

/// A worker thread's state and message loop.
pub struct Worker {
    id: usize,
    /// `worker<id>`, computed once: the chaos hooks consult it on every
    /// executed hop, and the hot path must not allocate per call.
    name: String,
    cfg: StateflowConfig,
    /// Every deployed program version (graph + body runner), keyed by
    /// version. Executions resolve through it per invocation, so chains in
    /// flight across a live upgrade keep running the version they were
    /// stamped with at their root while new roots pick up the upgrade.
    registry: Arc<VersionRegistry>,
    /// The partition store. The protocol thread is the only writer; with an
    /// exec pool, pool tasks read the committed snapshot through it.
    store: SharedStateStore,
    /// The intra-partition exec pool plus the shared context its tasks
    /// capture; `None` at `exec_threads = 1` (serial schedule).
    pool: Option<(rayon::ThreadPool, Arc<PoolCtx>)>,
    /// Per-batch buffered accesses: batches overlap under pipelining, so
    /// reservation state must be keyed by batch, not just transaction.
    buffers: HashMap<BatchId, HashMap<TxnId, TxnBuffer>>,
    /// Next expected hop per `(batch, txn)` chain position on this worker;
    /// deliveries below it are duplicates and dropped. Cleared with the
    /// batch's buffers.
    expected_hops: HashMap<BatchId, HashMap<TxnId, u32>>,
    /// Batches whose reservation round already ran here: a duplicated
    /// `Reserve` delivery must not rebuild the table, re-record accesses or
    /// re-report flags (the first report is en route or already counted).
    reserved: BTreeSet<BatchId>,
    /// Commit progress; orders execution across overlapping batches.
    watermark: CommitWatermark<CommitRecord>,
    /// Execs of batches whose predecessor has not committed locally yet.
    deferred: BTreeMap<BatchId, VecDeque<DeferredExec>>,
    inbox: DelayReceiver<WorkerMsg>,
    peers: Vec<DelaySender<WorkerMsg>>,
    coord: DelaySender<CoordMsg>,
    snapshots: Arc<SnapshotStore<StateStore>>,
    timers: Arc<ComponentTimers>,
    /// The partition's durable layer (`DurabilityMode::Wal`): commits and
    /// creates are logged as they apply, epochs cut on snapshot markers,
    /// and `Restore` recovers state from disk instead of the in-memory
    /// snapshot store. `None` with durability off — every durable hook is
    /// then a skipped `if`, keeping the volatile path byte-identical.
    durable: Option<DurableStore>,
    /// Observability handle: exec-pool spans and WAL spans flow through it
    /// (a single predicted branch per probe when `SE_OBS=off`).
    obs: se_obs::Obs,
    /// Method bodies executed on the protocol thread (serial schedule).
    body_runs: se_obs::Counter,
    gen: u64,
    /// Set after a simulated crash until the next Restore.
    dead: bool,
}

impl Worker {
    /// Creates a worker (call [`Worker::run`] on its own thread).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cfg: StateflowConfig,
        registry: Arc<VersionRegistry>,
        inbox: DelayReceiver<WorkerMsg>,
        peers: Vec<DelaySender<WorkerMsg>>,
        coord: DelaySender<CoordMsg>,
        snapshots: Arc<SnapshotStore<StateStore>>,
        timers: Arc<ComponentTimers>,
        obs: se_obs::Obs,
    ) -> Self {
        let name = format!("worker{id}");
        let store = SharedStateStore::new();
        let durable = (cfg.durability.mode == DurabilityMode::Wal).then(|| {
            let dir = cfg
                .durability
                .dir
                .as_ref()
                .expect("runtime fills durability.dir at deploy time")
                .join(&name);
            let mut d = DurableStore::open(
                dir,
                name.clone(),
                cfg.chaos.clone(),
                DurableOptions {
                    policy: cfg.durability.fsync,
                    full_snapshot_every: cfg.durability.full_snapshot_every.max(1),
                    skip_crc: cfg.durability.inject_wal_no_crc,
                },
            )
            .expect("open durable store");
            d.set_obs(obs.clone());
            d
        });
        let pool = (cfg.exec_threads > 1).then(|| {
            let ctx = Arc::new(PoolCtx {
                cfg: cfg.clone(),
                registry: Arc::clone(&registry),
                store: store.clone(),
                timers: Arc::clone(&timers),
                home: peers[id].clone(),
                id,
                name: name.clone(),
                n_workers: peers.len(),
                busy_ns: obs.counter("exec.busy_ns"),
                segments: obs.counter("exec.segments"),
                body_runs: obs.counter("vm.body_runs"),
                obs: obs.clone(),
            });
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(cfg.exec_threads)
                .thread_name(move |t| format!("stateflow-worker{id}-exec{t}"))
                .build()
                .expect("build exec pool");
            (pool, ctx)
        });
        Self {
            name,
            id,
            cfg,
            registry,
            store,
            pool,
            buffers: HashMap::new(),
            expected_hops: HashMap::new(),
            reserved: BTreeSet::new(),
            watermark: CommitWatermark::new(),
            deferred: BTreeMap::new(),
            inbox,
            peers,
            coord,
            snapshots,
            timers,
            durable,
            body_runs: obs.counter("vm.body_runs"),
            obs,
            gen: 0,
            dead: false,
        }
    }

    fn node_name(&self) -> &str {
        &self.name
    }

    /// The message loop; returns when a `Shutdown` message arrives or all
    /// senders disconnect.
    pub fn run(mut self) {
        loop {
            let Some(msg) = self.inbox.recv_timeout(Duration::from_millis(50)) else {
                if self.inbox.is_closed() {
                    return;
                }
                continue;
            };
            match msg {
                WorkerMsg::Shutdown => return,
                WorkerMsg::Restore {
                    gen,
                    epoch,
                    next_batch,
                } => self.handle_restore(gen, epoch, next_batch),
                // Everything else is fenced by generation and ignored while
                // "crashed".
                m => {
                    if self.dead || self.msg_gen(&m) < self.gen {
                        continue;
                    }
                    self.dispatch(m);
                }
            }
        }
    }

    fn msg_gen(&self, m: &WorkerMsg) -> u64 {
        match m {
            WorkerMsg::Create { gen, .. }
            | WorkerMsg::Exec { gen, .. }
            | WorkerMsg::SegmentDone { gen, .. }
            | WorkerMsg::Reserve { gen, .. }
            | WorkerMsg::Commit { gen, .. }
            | WorkerMsg::Snapshot { gen, .. }
            | WorkerMsg::Migrate { gen, .. }
            | WorkerMsg::Restore { gen, .. } => *gen,
            WorkerMsg::Shutdown => u64::MAX,
        }
    }

    fn dispatch(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Create {
                request,
                class,
                key,
                init,
                ..
            } => {
                let result = self.handle_create(&class, &key, init);
                self.send_coord_ctl(CoordMsg::CreateDone {
                    gen: self.gen,
                    request,
                    result,
                });
            }
            WorkerMsg::Exec {
                batch,
                txn,
                hop,
                inv,
                solo,
                ..
            } => self.handle_exec(batch, txn, hop, inv, solo),
            WorkerMsg::SegmentDone {
                batch,
                txn,
                next_hop,
                buffer,
                outcome,
                solo,
                ..
            } => self.handle_segment_done(batch, txn, next_hop, buffer, outcome, solo),
            WorkerMsg::Reserve {
                batch,
                txns,
                errors,
                ..
            } => {
                if self
                    .cfg
                    .chaos
                    .should_crash(self.node_name(), CrashPoint::Reserve)
                {
                    self.crash();
                    return;
                }
                self.handle_reserve(batch, &txns, &errors);
            }
            WorkerMsg::Commit {
                batch,
                txns,
                aborted,
                ..
            } => {
                if self
                    .cfg
                    .chaos
                    .should_crash(self.node_name(), CrashPoint::Commit)
                {
                    self.crash();
                    return;
                }
                self.handle_commit(batch, txns, aborted);
            }
            WorkerMsg::Snapshot {
                epoch,
                durable_floor,
                ..
            } => {
                debug_assert!(
                    self.deferred.is_empty(),
                    "snapshots only cut at a drained pipeline \
                     (worker {}, deferred batches {:?}, watermark at {})",
                    self.id,
                    self.deferred.keys().collect::<Vec<_>>(),
                    self.watermark.next_expected()
                );
                // Durable epoch cut first: the marker append (fsynced per
                // policy) is what makes the epoch durable, and costs only
                // the dirty set already in the log — O(dirty), not O(state).
                let durable = self.durable.as_mut().map(|d| {
                    d.cut_epoch(epoch, &self.store.read())
                        .expect("cut durable epoch");
                    if let Some(floor) = durable_floor {
                        d.compact_below(floor).expect("compact WAL");
                    }
                    d.last_durable_epoch()
                });
                self.snapshots
                    .put(epoch, self.node_name(), self.store.snapshot());
                self.send_coord_ctl(CoordMsg::SnapshotAck {
                    gen: self.gen,
                    epoch,
                    worker: self.id,
                    durable: durable.flatten(),
                });
            }
            WorkerMsg::Migrate { version, epoch, .. } => self.handle_migrate(version, epoch),
            WorkerMsg::Restore { .. } | WorkerMsg::Shutdown => unreachable!("handled in run()"),
        }
    }

    /// Control-plane send to the coordinator: never faulted (acks of
    /// restore/snapshot/create model reliable infrastructure channels).
    fn send_coord_ctl(&self, msg: CoordMsg) {
        self.coord.send_after(msg, self.cfg.net.f2f_latency(64));
    }

    /// Data-plane send to the coordinator: runs through the chaos seam.
    fn send_coord(&self, msg: CoordMsg) {
        send_with_chaos(
            &self.cfg.chaos,
            Seam::WorkerToCoord,
            &self.cfg.net,
            &self.coord,
            msg,
            self.cfg.net.f2f_latency(64),
        );
    }

    /// Appends to the recorded history, if recording is on.
    fn record(&self, mk: impl FnOnce() -> HistoryEvent) {
        if let Some(h) = &self.cfg.history {
            h.record(mk());
        }
    }

    fn handle_create(
        &mut self,
        class: &str,
        key: &str,
        init: Vec<(String, se_lang::Value)>,
    ) -> Result<(), LangError> {
        let entry = self.registry.active_entry();
        let class_def = &entry.graph.program.class_or_err(class)?.class;
        let r = se_lang::EntityRef::new(class, key);
        let state = class_def.initial_state(key, init);
        if let Some(d) = &mut self.durable {
            d.log_create(r, &state).expect("log create");
        }
        self.store.write().insert(r, state);
        Ok(())
    }

    /// Entry point for `Exec` messages (roots and chain hops alike): run
    /// now if the batch's predecessor has committed locally, else park it
    /// on the watermark. Deliveries for already-committed batches are
    /// stale (a duplicate that outlived its batch) and dropped.
    fn handle_exec(&mut self, batch: BatchId, txn: TxnId, hop: u32, inv: Invocation, solo: bool) {
        if self.watermark.must_defer(batch) {
            self.deferred
                .entry(batch)
                .or_default()
                .push_back(DeferredExec {
                    txn,
                    hop,
                    inv,
                    solo,
                });
            return;
        }
        if !self.watermark.runnable(batch) {
            // The batch already committed locally: this is a duplicated or
            // quarantined delivery from its past. Re-executing would write
            // into a buffer nobody will ever apply.
            return;
        }
        self.run_or_spawn(batch, txn, hop, inv, solo);
    }

    /// Routes a runnable exec: inline on the protocol thread (serial
    /// schedule), or checked out to the exec pool.
    fn run_or_spawn(&mut self, batch: BatchId, txn: TxnId, hop: u32, inv: Invocation, solo: bool) {
        if self.pool.is_some() {
            self.spawn_segment(batch, txn, hop, inv, solo);
        } else {
            self.run_chain(batch, txn, hop, inv, solo);
        }
    }

    /// Checks a runnable exec out to the intra-partition pool: hop dedup
    /// happens here (protocol thread), then the transaction's buffer moves
    /// into the pool task for the duration of the segment. Sound because
    /// nothing else can need that buffer until the segment checks it back
    /// in: reservation only starts after every `ExecDone` of the batch, and
    /// this transaction's `ExecDone` (or its next remote hop) is sent from
    /// `handle_segment_done`, after reinstalling the buffer.
    fn spawn_segment(&mut self, batch: BatchId, txn: TxnId, hop: u32, inv: Invocation, solo: bool) {
        {
            let expected = self
                .expected_hops
                .entry(batch)
                .or_default()
                .entry(txn)
                .or_insert(0);
            if hop < *expected {
                return;
            }
            *expected = hop + 1;
        }
        let buffer = self
            .buffers
            .entry(batch)
            .or_default()
            .remove(&txn)
            .unwrap_or_default();
        let (pool, ctx) = self.pool.as_ref().expect("spawn_segment requires a pool");
        let ctx = Arc::clone(ctx);
        let gen = self.gen;
        // Queue-wait span start: stamped on the protocol thread so the gap
        // until a pool thread picks the segment up is visible per se.
        let spawned_ns = self.obs.now_ns();
        pool.spawn(move || run_segment(&ctx, gen, batch, txn, hop, inv, solo, buffer, spawned_ns));
    }

    /// A pool segment finished: check the buffer back in, mirror the
    /// segment's hop bookkeeping, then perform the protocol action the
    /// serial path would have performed inline (report/solo-commit, or
    /// forward the chain to its next partition).
    fn handle_segment_done(
        &mut self,
        batch: BatchId,
        txn: TxnId,
        next_hop: u32,
        buffer: TxnBuffer,
        outcome: SegmentOutcome,
        solo: bool,
    ) {
        if matches!(outcome, SegmentOutcome::Crashed) {
            // The scripted crash fired on a pool thread; the "process"
            // (protocol thread included) dies here.
            self.crash();
            return;
        }
        if !self.watermark.runnable(batch) {
            // Safety net: the batch already committed locally (argued
            // unreachable — dedup prevents duplicate spawns and commits
            // wait for ExecDone — but reinstalling a buffer into a
            // committed batch would leak it forever).
            return;
        }
        // Buffer check-in must precede finish_chain: a solo commit applies
        // this buffer, and the reservation round scans it.
        self.buffers.entry(batch).or_default().insert(txn, buffer);
        let expected = self
            .expected_hops
            .entry(batch)
            .or_default()
            .entry(txn)
            .or_insert(0);
        *expected = (*expected).max(next_hop);
        match outcome {
            SegmentOutcome::Respond(response) => self.finish_chain(batch, txn, response, solo),
            SegmentOutcome::Emit { owner, hop, inv } => {
                let bytes = inv.approx_size();
                send_with_chaos(
                    &self.cfg.chaos,
                    Seam::WorkerToWorker,
                    &self.cfg.net,
                    &self.peers[owner],
                    WorkerMsg::Exec {
                        gen: self.gen,
                        batch,
                        txn,
                        hop,
                        inv,
                        solo,
                    },
                    self.cfg.net.f2f_latency(bytes),
                );
            }
            SegmentOutcome::Crashed => unreachable!("handled above"),
        }
    }

    /// Runs execs whose batch became runnable after a watermark advance.
    fn drain_deferred(&mut self) {
        loop {
            if self.dead {
                return;
            }
            let batch = self.watermark.next_expected();
            let Some(queue) = self.deferred.get_mut(&batch) else {
                return;
            };
            let Some(item) = queue.pop_front() else {
                self.deferred.remove(&batch);
                continue;
            };
            if queue.is_empty() {
                // Drop the entry before running: a solo commit inside
                // run_chain advances the watermark past this batch, after
                // which the loop would never revisit (and clean) its key.
                self.deferred.remove(&batch);
            }
            self.run_or_spawn(batch, item.txn, item.hop, item.inv, item.solo);
            // A solo commit inside run_chain may have advanced the
            // watermark; re-resolve the runnable batch from scratch. A
            // batch's queue only holds work that arrived before the batch
            // became runnable, so an advance past it cannot strand items.
        }
    }

    /// The execute phase for one hop of a transaction's invocation chain.
    ///
    /// Reads see the committed snapshot overlaid with the transaction's own
    /// buffered writes; effects are buffered, never applied — Aria defers
    /// all writes to the commit phase. Solo (single-transaction fallback)
    /// batches commit at the final hop; see [`Worker::commit_solo`].
    fn run_chain(
        &mut self,
        batch: BatchId,
        txn: TxnId,
        mut hop: u32,
        mut inv: Invocation,
        solo: bool,
    ) {
        {
            // Hop-sequence dedup: chains advance strictly forward, so a
            // delivery at or below the last executed hop is a duplicate —
            // re-running it would double-apply effects like `balance += a`
            // through the buffer overlay.
            let expected = self
                .expected_hops
                .entry(batch)
                .or_default()
                .entry(txn)
                .or_insert(0);
            if hop < *expected {
                return;
            }
            *expected = hop + 1;
        }
        loop {
            // Failure injection: scripted crashes land per executed hop.
            if self
                .cfg
                .chaos
                .should_crash(self.node_name(), CrashPoint::Exec)
            {
                self.crash();
                return;
            }
            // Synthetic service time: burned on this thread, a partition is
            // sequential.
            se_dataflow::burn(self.cfg.net.scaled(self.cfg.service_time));

            let target = inv.target;
            let request = inv.request;
            // O(1): entity state is copy-on-write, so "read the committed
            // snapshot" is a refcount bump, not a deep copy. The read guard
            // must drop before finish_chain (a solo commit takes the write
            // lock), hence the two-step clone.
            let committed = self.store.read().get(&target).cloned();
            let Some(committed) = committed else {
                let response = Response {
                    request,
                    result: Err(LangError::runtime(format!("unknown entity {target}"))),
                };
                self.finish_chain(batch, txn, response, solo);
                return;
            };
            let buffer = self
                .buffers
                .entry(batch)
                .or_default()
                .entry(txn)
                .or_default();
            let before = self
                .timers
                .time("state_read", || buffer.overlay_read(&target, &committed));
            // Copy-on-write: `after` shares storage with `before` until the
            // method actually writes an attribute.
            let mut after = before.clone();
            // Version pinning: the chain runs the program version stamped at
            // its root (continuations inherit it), not whatever is active.
            let entry = self.registry.resolve(inv.version);
            let effect = self.timers.time("function_execution", || {
                process_invocation_with(&entry.graph.program, &*entry.runner, inv, &mut after)
            });
            self.body_runs.inc();
            self.timers.time("state_write_buffer", || {
                buffer.record_effects(&target, &before, &after)
            });

            match effect {
                StepEffect::Respond(response) => {
                    self.finish_chain(batch, txn, response, solo);
                    return;
                }
                StepEffect::Emit(next) => {
                    hop += 1;
                    let owner = partition_for(next.target.key.as_str(), self.peers.len());
                    if owner == self.id {
                        // Same-partition call: continue locally, no hop
                        // message — but the position still advances so a
                        // later duplicate of the *message* that started
                        // this chain segment stays below `expected`.
                        self.expected_hops
                            .entry(batch)
                            .or_default()
                            .insert(txn, hop + 1);
                        inv = next;
                        continue;
                    }
                    let bytes = next.approx_size();
                    send_with_chaos(
                        &self.cfg.chaos,
                        Seam::WorkerToWorker,
                        &self.cfg.net,
                        &self.peers[owner],
                        WorkerMsg::Exec {
                            gen: self.gen,
                            batch,
                            txn,
                            hop,
                            inv: next,
                            solo,
                        },
                        self.cfg.net.f2f_latency(bytes),
                    );
                    return;
                }
            }
        }
    }

    /// Chain finished (with a result or an error): report to the
    /// coordinator, and for solo batches decide + commit right here.
    fn finish_chain(&mut self, batch: BatchId, txn: TxnId, response: Response, solo: bool) {
        if solo {
            self.commit_solo(batch, txn, response.result.is_err());
        }
        self.send_coord(CoordMsg::ExecDone {
            gen: self.gen,
            batch,
            txn,
            response,
        });
        if solo {
            // The coordinator counts one CommitAck per worker and batch;
            // peers ack through handle_commit, this worker acks its local
            // application. Sent after ExecDone (same channel, FIFO) so the
            // coordinator has registered the solo batch's completion first.
            self.send_coord(CoordMsg::CommitAck {
                gen: self.gen,
                batch,
                worker: self.id,
            });
            self.drain_deferred();
        }
    }

    /// Commits a single-transaction fallback batch at its final hop. A lone
    /// transaction can never lose a conflict, so the decision is locally
    /// determined: commit unless the chain errored. The worker applies its
    /// own buffered writes, advances its watermark, and broadcasts the
    /// commit record to peers (who hold any remote hops' buffers) — the
    /// coordinator round trip that stop-and-wait pays per fallback
    /// transaction disappears, which is what lets consecutive hot-key
    /// retries chain back-to-back on the owning worker.
    fn commit_solo(&mut self, batch: BatchId, txn: TxnId, errored: bool) {
        debug_assert!(
            self.watermark.runnable(batch),
            "solo batch {batch} committing out of order"
        );
        let local = self.buffers.remove(&batch);
        self.expected_hops.remove(&batch);
        if !errored {
            if let Some(buffer) = local.and_then(|mut b| b.remove(&txn)) {
                self.apply_writes(batch, buffer);
            }
        }
        self.watermark.advance_past(batch);
        let txns = Arc::new(vec![txn]);
        let aborted: Arc<BTreeSet<TxnId>> = Arc::new(if errored {
            BTreeSet::from([txn])
        } else {
            BTreeSet::new()
        });
        for (peer, sender) in self.peers.iter().enumerate() {
            if peer == self.id {
                continue;
            }
            send_with_chaos(
                &self.cfg.chaos,
                Seam::WorkerToWorker,
                &self.cfg.net,
                sender,
                WorkerMsg::Commit {
                    gen: self.gen,
                    batch,
                    txns: Arc::clone(&txns),
                    aborted: Arc::clone(&aborted),
                },
                self.cfg.net.f2f_latency(64),
            );
        }
    }

    /// The reservation phase: build the local table and report per-txn
    /// conflict flags for locally accessed keys. Errored transactions abort
    /// unconditionally and never commit, so they neither reserve nor need
    /// flags — their buffered writes must not knock out healthy ones.
    fn handle_reserve(&mut self, batch: BatchId, txns: &[TxnId], errors: &BTreeSet<TxnId>) {
        if self.watermark.next_expected() > batch {
            // The batch already committed locally: a duplicate that
            // outlived its round (its `reserved` entry is long cleaned
            // up). Note the guard must NOT require `runnable(batch)` — a
            // worker with no transactions of this batch may legitimately
            // reserve while earlier batches' commits are still in flight
            // to it, and skipping then would starve the coordinator of
            // this partition's flags forever.
            return;
        }
        if !self.reserved.insert(batch) {
            // Duplicate delivery: the original round's flags are already
            // out (the coordinator deduplicates reports per worker).
            return;
        }
        // Test-only regression lever: `inject_reserve_bug` reverts to the
        // pre-fix behavior (errored chains reserve too), which the history
        // checker must flag as unjustified aborts. See StateflowConfig.
        let reserve_errored = self.cfg.inject_reserve_bug;
        let buffers = self.buffers.get(&batch);
        let buffer_of = |txn: &TxnId| buffers.and_then(|b| b.get(txn));
        let mut table = ReservationTable::new();
        for txn in txns {
            if errors.contains(txn) && !reserve_errored {
                continue;
            }
            if let Some(buf) = buffer_of(txn) {
                table.reserve(*txn, buf);
            }
        }
        if self.cfg.history.is_some() {
            for txn in txns {
                if let Some(buf) = buffer_of(txn) {
                    let worker = self.id;
                    self.record(|| HistoryEvent::Access {
                        worker,
                        batch,
                        txn: *txn,
                        reads: buf.reads.iter().copied().collect(),
                        writes: buf.writes.keys().copied().collect(),
                    });
                }
            }
        }
        let flags: Vec<(TxnId, ConflictFlags)> = txns
            .iter()
            .filter(|txn| !errors.contains(txn))
            .filter_map(|txn| {
                let buf = buffer_of(txn)?;
                Some((
                    *txn,
                    ConflictFlags {
                        waw: table.waw(*txn, buf),
                        raw: table.raw(*txn, buf),
                        war: table.war(*txn, buf),
                    },
                ))
            })
            .collect();
        self.send_coord(CoordMsg::Flags {
            gen: self.gen,
            batch,
            worker: self.id,
            flags,
        });
    }

    /// The commit phase: apply records in batch order (buffering any that
    /// arrive early), then release execs the advance unblocked. Records for
    /// already-committed batches (duplicates) are absorbed by the
    /// watermark.
    fn handle_commit(
        &mut self,
        batch: BatchId,
        txns: Arc<Vec<TxnId>>,
        aborted: Arc<BTreeSet<TxnId>>,
    ) {
        for (batch, (txns, aborted)) in self.watermark.offer(batch, (txns, aborted)) {
            self.apply_commit(batch, &txns, &aborted);
        }
        self.drain_deferred();
    }

    /// Installs one batch's committed writes in ascending id order and
    /// discards everything else.
    fn apply_commit(&mut self, batch: BatchId, txns: &[TxnId], aborted: &BTreeSet<TxnId>) {
        debug_assert!(
            txns.windows(2).all(|w| w[0] < w[1]),
            "commit order must be ascending"
        );
        let mut buffers = self.buffers.remove(&batch).unwrap_or_default();
        self.expected_hops.remove(&batch);
        self.reserved.remove(&batch);
        for txn in txns {
            let Some(buffer) = buffers.remove(txn) else {
                continue;
            };
            if aborted.contains(txn) {
                continue;
            }
            self.apply_writes(batch, buffer);
        }
        self.send_coord(CoordMsg::CommitAck {
            gen: self.gen,
            batch,
            worker: self.id,
        });
    }

    fn apply_writes(&mut self, batch: BatchId, buffer: TxnBuffer) {
        // Write-ahead: the commit record hits the log before the store, so
        // a crash between the two replays the write instead of losing it.
        if let Some(d) = &mut self.durable {
            if !buffer.writes.is_empty() {
                d.log_commit(batch, &buffer.writes).expect("log commit");
            }
        }
        self.timers.time("state_store", || {
            let mut store = self.store.write();
            for (entity, writes) in buffer.writes {
                for (attr, value) in writes {
                    // Entities written here were read from this store
                    // during execute; they exist unless a concurrent
                    // create raced, which batching forbids.
                    let _ = store.apply_write(&entity, attr, value);
                }
            }
        });
    }

    /// The live-upgrade migration pass. Runs with the pipeline fully
    /// drained and the pre-upgrade epoch cut: for every entity this
    /// partition owns whose class defines `__migrate__` in the new version,
    /// execute that method as a synthetic single-hop invocation and collect
    /// its effects into one batch of writes. The WAL sees the writes first
    /// and then a `VersionCut` marker — a replay that reaches the marker
    /// recovers post-migration state, one that falls short recovers the
    /// pre-upgrade cut (and the coordinator re-arms the upgrade). An entity
    /// whose migration errors keeps its old shape: a bad `__migrate__`
    /// must not wedge the cluster, and the new version's methods see
    /// whatever defaults the class declares for attributes never written.
    fn handle_migrate(&mut self, version: u64, _epoch: se_dataflow::Epoch) {
        let t0 = self.obs.now_ns();
        let entry = self.registry.resolve(version);
        let program = &entry.graph.program;
        // Collect targets first: the read guard must drop before execution
        // (migration bodies read the store through the same guard path).
        // An entity needs the pass when its class declares `__migrate__` OR
        // gained attributes in the new version — those are backfilled with
        // their declared defaults so v2 bodies never read a hole.
        let targets: Vec<se_lang::EntityRef> = {
            let store = self.store.read();
            store
                .iter()
                .filter(|(r, state)| {
                    program.class(r.class).is_some_and(|c| {
                        c.class.migration_method().is_some()
                            || c.class.attrs.iter().any(|a| !state.contains_key(a.name))
                    })
                })
                .map(|(r, _)| *r)
                .collect()
        };
        let mut buffer = TxnBuffer::default();
        let mut migrated = 0u64;
        for target in targets {
            // Migration executes method bodies, so scripted exec-point
            // crashes land here too — the crash-mid-upgrade chaos tests
            // kill a worker with the pass half applied (in memory only:
            // nothing below logged a commit yet, so recovery rewinds to
            // the pre-upgrade cut and the coordinator re-arms the upgrade).
            if self
                .cfg
                .chaos
                .should_crash(self.node_name(), CrashPoint::Exec)
            {
                self.crash();
                return;
            }
            let committed = match self.store.read().get(&target) {
                Some(state) => state.clone(),
                None => continue,
            };
            let before = buffer.overlay_read(&target, &committed);
            let class = match program.class(target.class) {
                Some(c) => &c.class,
                None => continue,
            };
            // New-in-this-version attributes first: the entity predates the
            // class shape, so missing declarations materialize with their
            // defaults — `__migrate__` (and every v2 body after it) then
            // sees a complete state.
            let mut after = before.clone();
            for attr in &class.attrs {
                if !after.contains_key(attr.name) {
                    after.insert(attr.name, attr.default.clone());
                }
            }
            if class.migration_method().is_none() {
                buffer.record_effects(&target, &before, &after);
                continue;
            }
            let backfilled = after.clone();
            let inv = Invocation::root(RequestId(0), target, se_lang::MIGRATION_METHOD, Vec::new())
                .at_version(version);
            match process_invocation_with(program, &*entry.runner, inv, &mut after) {
                StepEffect::Respond(resp) => {
                    if let Err(e) = resp.result {
                        eprintln!(
                            "warning: {}: __migrate__ to v{version} failed for {target}: {e}; \
                             entity keeps its backfilled-but-unmigrated shape",
                            self.name
                        );
                        // The backfill still commits — v2 bodies must not
                        // read holes even when the migration body is buggy.
                        buffer.record_effects(&target, &before, &backfilled);
                        continue;
                    }
                    buffer.record_effects(&target, &before, &after);
                    migrated += 1;
                }
                // Typecheck rejects remote calls inside `__migrate__`, so a
                // suspension here means a stale registry entry; skip rather
                // than deadlock the drained pipeline on a chain hop.
                StepEffect::Emit(_) => {
                    eprintln!(
                        "warning: {}: __migrate__ to v{version} suspended for {target} \
                         (remote call); entity keeps its backfilled shape",
                        self.name
                    );
                    buffer.record_effects(&target, &before, &backfilled);
                }
            }
        }
        if let Some(d) = &mut self.durable {
            // WAL-first, marker last: the synthetic batch id (`u64::MAX`)
            // never collides with a sealed batch, and replay does not key
            // on batch ids anyway — it applies commit records in log order.
            if !buffer.writes.is_empty() {
                d.log_commit(u64::MAX, &buffer.writes)
                    .expect("log migration commit");
            }
            d.log_version_cut(version).expect("log version cut");
        }
        self.timers.time("state_store", || {
            let mut store = self.store.write();
            for (entity, writes) in buffer.writes {
                for (attr, value) in writes {
                    let _ = store.apply_write(&entity, attr, value);
                }
            }
        });
        self.registry.set_active(version);
        self.obs.counter("upgrade.migrated_entities").add(migrated);
        self.obs.stage_span(
            se_obs::Stage::UpgradeMigrate,
            version,
            t0,
            self.obs.now_ns(),
        );
        self.send_coord_ctl(CoordMsg::MigrateAck {
            gen: self.gen,
            version,
            worker: self.id,
        });
    }

    fn crash(&mut self) {
        // Disk outlives the "process": the durable store closes its writer
        // and applies the chaos script's next crash-time disk fault, if any
        // (torn/lost tail, bit flip, vanished base snapshot).
        if let Some(d) = &mut self.durable {
            d.simulate_crash().expect("simulate disk crash");
        }
        // Volatile state dies with the "process". In-flight pool segments
        // are zombies of the dead incarnation; their completions are fenced
        // by the generation check (`dead` now, generation after restore).
        self.store.replace(StateStore::new());
        self.buffers.clear();
        self.expected_hops.clear();
        self.reserved.clear();
        self.deferred.clear();
        self.dead = true;
        // Failure notification models the failure detector: not faulted.
        self.send_coord_ctl(CoordMsg::WorkerFailed {
            gen: self.gen,
            worker: self.id,
        });
    }

    fn handle_restore(&mut self, gen: u64, epoch: Option<se_dataflow::Epoch>, next_batch: BatchId) {
        self.gen = gen;
        self.buffers.clear();
        self.expected_hops.clear();
        self.reserved.clear();
        self.deferred.clear();
        self.watermark.reset(next_batch);
        let reached = if let Some(d) = &mut self.durable {
            // Disk recovery: base snapshot + WAL replay to the target cut,
            // stopping early at corruption. Healthy workers recover from
            // disk too — truncating their log at the target is exactly
            // right, since the coordinator replays the source from the
            // target's offset and re-executed batches re-log from there.
            let (state, reached) = d.recover(epoch).expect("recover from disk");
            self.store.replace(state);
            reached
        } else {
            self.store.replace(
                epoch
                    .and_then(|e| self.snapshots.get(e, self.node_name()))
                    .unwrap_or_default(),
            );
            // The in-memory snapshot is complete by construction: a
            // volatile worker always reaches the requested epoch.
            epoch
        };
        self.dead = false;
        // The next incarnation begins: re-arm the chaos plan's per-node
        // counters so a multi-crash script can kill this worker again.
        self.cfg.chaos.notify_restart(self.node_name());
        self.send_coord_ctl(CoordMsg::RestoreAck {
            gen,
            worker: self.id,
            reached,
        });
    }
}

/// Everything a pool-executed segment needs, captured once at pool build
/// time (pool tasks must not borrow the `Worker` — the protocol thread keeps
/// mutating it while segments run).
struct PoolCtx {
    cfg: StateflowConfig,
    registry: Arc<VersionRegistry>,
    store: SharedStateStore,
    timers: Arc<ComponentTimers>,
    /// The owning worker's own inbox: segment completions are node-local
    /// (same "process"), so they bypass the simulated network and chaos.
    home: DelaySender<WorkerMsg>,
    id: usize,
    name: String,
    n_workers: usize,
    /// Nanoseconds pool threads spent running segments (all modes; stays 0
    /// when `SE_OBS=off` because `now_ns` short-circuits). Feeds the bench
    /// `exec_utilization` column.
    busy_ns: se_obs::Counter,
    /// Segments executed on the pool.
    segments: se_obs::Counter,
    /// Method bodies executed on pool threads.
    body_runs: se_obs::Counter,
    obs: se_obs::Obs,
}

/// The pool-side half of [`Worker::run_chain`]: executes one chain segment —
/// the entry hop plus any same-partition continuations — against the
/// committed snapshot overlaid with the transaction's checked-out buffer,
/// then reports via [`WorkerMsg::SegmentDone`]. Mirrors the serial path's
/// hop arithmetic exactly so `exec_threads = 1` and `≥ 2` keep identical
/// dedup positions.
#[allow(clippy::too_many_arguments)]
fn run_segment(
    ctx: &PoolCtx,
    gen: u64,
    batch: BatchId,
    txn: TxnId,
    entry_hop: u32,
    mut inv: Invocation,
    solo: bool,
    mut buffer: TxnBuffer,
    spawned_ns: u64,
) {
    let run_start = ctx.obs.now_ns();
    ctx.obs
        .stage_span(se_obs::Stage::SegQueueWait, txn, spawned_ns, run_start);
    ctx.segments.inc();
    let mut hop = entry_hop;
    // Mirrors `expected_hops`: entry dedup already advanced it to
    // `entry_hop + 1` on the protocol thread; local continuations advance it
    // further below.
    let mut next_hop = entry_hop + 1;
    let done = |next_hop: u32, buffer: TxnBuffer, outcome: SegmentOutcome| {
        let run_end = ctx.obs.now_ns();
        ctx.obs
            .stage_span(se_obs::Stage::SegRun, txn, run_start, run_end);
        ctx.busy_ns.add(run_end.saturating_sub(run_start));
        ctx.home.send_after(
            WorkerMsg::SegmentDone {
                gen,
                batch,
                txn,
                next_hop,
                buffer,
                outcome,
                solo,
            },
            Duration::ZERO,
        );
    };
    loop {
        if ctx.cfg.chaos.should_crash(&ctx.name, CrashPoint::Exec) {
            done(next_hop, buffer, SegmentOutcome::Crashed);
            return;
        }
        se_dataflow::burn(ctx.cfg.net.scaled(ctx.cfg.service_time));

        let target = inv.target;
        let request = inv.request;
        // O(1): copy-on-write entity state makes the committed read a
        // refcount bump under a briefly held read guard.
        let committed = ctx.store.read().get(&target).cloned();
        let Some(committed) = committed else {
            let response = Response {
                request,
                result: Err(LangError::runtime(format!("unknown entity {target}"))),
            };
            done(next_hop, buffer, SegmentOutcome::Respond(response));
            return;
        };
        let before = ctx
            .timers
            .time("state_read", || buffer.overlay_read(&target, &committed));
        let mut after = before.clone();
        // Version pinning, mirroring the serial path.
        let entry = ctx.registry.resolve(inv.version);
        let effect = ctx.timers.time("function_execution", || {
            process_invocation_with(&entry.graph.program, &*entry.runner, inv, &mut after)
        });
        ctx.body_runs.inc();
        ctx.timers.time("state_write_buffer", || {
            buffer.record_effects(&target, &before, &after)
        });

        match effect {
            StepEffect::Respond(response) => {
                done(next_hop, buffer, SegmentOutcome::Respond(response));
                return;
            }
            StepEffect::Emit(next) => {
                hop += 1;
                let owner = partition_for(next.target.key.as_str(), ctx.n_workers);
                if owner == ctx.id {
                    next_hop = hop + 1;
                    inv = next;
                    continue;
                }
                done(
                    next_hop,
                    buffer,
                    SegmentOutcome::Emit {
                        owner,
                        hop,
                        inv: next,
                    },
                );
                return;
            }
        }
    }
}
