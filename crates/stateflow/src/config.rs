//! StateFlow runtime configuration.

use std::time::Duration;

use se_aria::{CommitRule, FallbackPolicy};
use se_dataflow::{FailurePlan, NetConfig};
use se_ir::ExecBackend;

/// Tunables of the StateFlow deployment.
///
/// Defaults mirror the paper's setup (§4): "StateFlow requires a single core
/// coordinator, and the rest are used for its workers" — with 6 system cores
/// that is 1 coordinator + 5 workers.
#[derive(Debug, Clone)]
pub struct StateflowConfig {
    /// Number of worker threads (state partitions).
    pub workers: usize,
    /// Network latency model.
    pub net: NetConfig,
    /// How long the coordinator waits to fill a batch before sealing it.
    pub batch_interval: Duration,
    /// Maximum transactions per batch.
    pub max_batch: usize,
    /// Aria commit rule (the ablation knob).
    pub commit_rule: CommitRule,
    /// What happens to aborted transactions: re-enqueue into the next
    /// batch, or Aria's serial fallback (single-transaction batches run
    /// immediately, bounding hot-key retry storms).
    pub fallback: FallbackPolicy,
    /// Take a consistent snapshot every N batches (0 disables snapshots).
    pub snapshot_every_batches: u64,
    /// Complete snapshot epochs retained before older ones are pruned
    /// (0 = keep every epoch forever). Recovery always restores the latest
    /// complete epoch, which is always retained.
    pub snapshot_retention: usize,
    /// Synthetic per-invocation-step service time, modeling the work the
    /// authors' Python prototype spends per event (object construction,
    /// dispatch, bookkeeping). Burned on the worker thread, so saturation
    /// under load emerges naturally.
    pub service_time: Duration,
    /// Failure injection plan for recovery tests.
    pub failure: FailurePlan,
    /// Which execution backend runs split method bodies: tree-walking
    /// interpretation, or bytecode compiled once at deploy time and run on
    /// the `se-vm` register VM. Semantically identical; the VM trades a
    /// deploy-time lowering pass for cheaper per-invocation dispatch. The
    /// `SE_EXEC_BACKEND` env var (`interp` | `vm`) overrides the default.
    pub backend: ExecBackend,
}

impl Default for StateflowConfig {
    fn default() -> Self {
        Self {
            workers: 5,
            net: NetConfig::default(),
            batch_interval: Duration::from_millis(10),
            max_batch: 512,
            commit_rule: CommitRule::Reordering,
            fallback: FallbackPolicy::Serial,
            snapshot_every_batches: 16,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            service_time: Duration::from_micros(350),
            failure: FailurePlan::none(),
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
        }
    }
}

impl StateflowConfig {
    /// A configuration with tiny delays for fast unit tests.
    pub fn fast_test(workers: usize) -> Self {
        Self {
            workers,
            net: NetConfig::fast_test(),
            batch_interval: Duration::from_millis(2),
            max_batch: 256,
            commit_rule: CommitRule::Reordering,
            fallback: FallbackPolicy::Serial,
            snapshot_every_batches: 4,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            service_time: Duration::from_micros(10),
            failure: FailurePlan::none(),
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = StateflowConfig::default();
        assert_eq!(c.workers, 5, "6 system cores = 1 coordinator + 5 workers");
        assert_eq!(c.commit_rule, CommitRule::Reordering);
        assert!(c.snapshot_every_batches > 0);
    }
}
