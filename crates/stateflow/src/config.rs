//! StateFlow runtime configuration.

use std::path::PathBuf;
use std::time::Duration;

use se_aria::{CommitRule, FallbackPolicy};
use se_chaos::{ChaosPlan, History};
use se_dataflow::{FsyncPolicy, NetConfig};
use se_ir::ExecBackend;

/// Whether worker state survives a crash on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Volatile state only (the default): recovery restores the in-memory
    /// snapshot store's latest complete epoch. Byte-identical behavior to
    /// a build without the durable layer.
    Off,
    /// Per-partition write-ahead log + incremental snapshots: every commit
    /// is appended to a per-worker WAL, epoch cuts persist the dirty set,
    /// and recovery replays state from disk (see `se_dataflow::durable`).
    Wal,
}

/// Durable-layer configuration (see [`DurabilityMode`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Off (default) or WAL-backed.
    pub mode: DurabilityMode,
    /// Directory holding one subdirectory per worker. `None` (the default)
    /// lets the runtime create a unique temporary directory at deploy time
    /// and remove it at shutdown.
    pub dir: Option<PathBuf>,
    /// Group-commit fsync policy for the per-worker WALs.
    pub fsync: FsyncPolicy,
    /// Full base snapshots every this many epoch cuts (≥ 1); between bases
    /// an epoch costs O(dirty keys), not O(state).
    pub full_snapshot_every: u64,
    /// Test-only: skip WAL checksum verification on recovery, re-applying
    /// silently corrupted records. Exists so the chaos harness can prove
    /// the checker catches a checksum-skip bug; never enable outside tests.
    /// The `chaos_explore` driver maps `SE_CHAOS_INJECT_BUG=wal-no-crc`
    /// onto this flag.
    #[doc(hidden)]
    pub inject_wal_no_crc: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            mode: durability_mode_from_env_or(DurabilityMode::Off),
            dir: None,
            fsync: FsyncPolicy::OnEpoch,
            full_snapshot_every: 4,
            inject_wal_no_crc: false,
        }
    }
}

impl DurabilityConfig {
    /// WAL durability in a specific directory with the default knobs.
    pub fn wal_in(dir: impl Into<PathBuf>) -> Self {
        Self {
            mode: DurabilityMode::Wal,
            dir: Some(dir.into()),
            ..Self::default()
        }
    }
}

/// Tunables of the StateFlow deployment.
///
/// Defaults mirror the paper's setup (§4): "StateFlow requires a single core
/// coordinator, and the rest are used for its workers" — 1 coordinator plus
/// one worker per remaining core, never fewer than the paper's 5 (see
/// [`default_workers`]).
#[derive(Debug, Clone)]
pub struct StateflowConfig {
    /// Number of worker threads (state partitions).
    pub workers: usize,
    /// Threads in each worker's intra-partition execution pool. `1` (the
    /// default) executes on the worker's protocol thread — the exact
    /// pre-pool serial schedule. At ≥ 2 a batch's transactions execute
    /// concurrently on a work-stealing pool: Aria's deterministic batches
    /// make intra-batch execution embarrassingly parallel (every execution
    /// reads the committed snapshot plus its own buffer; writes wait for
    /// the commit phase), so the pool changes timing, never outcomes. The
    /// `SE_EXEC_THREADS` env var overrides the default.
    pub exec_threads: usize,
    /// Network latency model.
    pub net: NetConfig,
    /// How long the coordinator waits to fill a batch before sealing it.
    pub batch_interval: Duration,
    /// Maximum transactions per batch.
    pub max_batch: usize,
    /// Maximum batches in flight at the coordinator. `1` (the default) is
    /// classic stop-and-wait: a batch fully commits before the next one is
    /// sealed. At depth ≥ 2 the coordinator seals and dispatches batch
    /// *N+1* as soon as batch *N* enters its reservation round (Aria's
    /// cross-batch pipelining), workers order execution with a
    /// committed-batch watermark, and single-transaction serial-fallback
    /// batches commit at their final hop without a coordinator round trip —
    /// the big lever for contended (hot-key) workloads. The
    /// `SE_PIPELINE_DEPTH` env var overrides the default.
    pub pipeline_depth: usize,
    /// Aria commit rule (the ablation knob).
    pub commit_rule: CommitRule,
    /// What happens to aborted transactions: re-enqueue into the next
    /// batch, or Aria's serial fallback (single-transaction batches run
    /// immediately, bounding hot-key retry storms).
    pub fallback: FallbackPolicy,
    /// Take a consistent snapshot every N batches (0 disables snapshots).
    pub snapshot_every_batches: u64,
    /// Complete snapshot epochs retained before older ones are pruned
    /// (0 = keep every epoch forever). Recovery always restores the latest
    /// complete epoch, which is always retained.
    pub snapshot_retention: usize,
    /// Synthetic per-invocation-step service time, modeling the work the
    /// authors' Python prototype spends per event (object construction,
    /// dispatch, bookkeeping). Burned on the worker thread, so saturation
    /// under load emerges naturally.
    pub service_time: Duration,
    /// Fault injection: scripted crashes (per incarnation, at chosen
    /// protocol points), message faults at the coordinator/worker channel
    /// seams, or nothing (`ChaosPlan::none()`, the default). The legacy
    /// `FailurePlan` converts into a one-crash plan via `Into`.
    pub chaos: ChaosPlan,
    /// Optional execution-history recording for the serializability
    /// checker. `None` (the default) records nothing and costs one branch
    /// per protocol step.
    pub history: Option<History>,
    /// Test-only: revert the errored-transaction reservation fix (errored
    /// chains reserve their buffered writes again, knocking healthy
    /// higher-id transactions into pointless retries). Exists so the chaos
    /// harness can prove it catches a real, historical bug; never enable
    /// outside tests. The `chaos_explore` driver maps
    /// `SE_CHAOS_INJECT_BUG=reserve-errored` onto this flag.
    #[doc(hidden)]
    pub inject_reserve_bug: bool,
    /// Test-only: break the live-upgrade epoch barrier — the coordinator
    /// flips to the new version and resumes sealing batches *before* the
    /// workers acknowledge the migration pass, so post-switch transactions
    /// race the migration writes (a torn upgrade). Exists so the chaos
    /// harness can prove the history checker catches version-atomicity
    /// violations; never enable outside tests. The `chaos_explore` driver
    /// maps `SE_CHAOS_INJECT_BUG=torn-upgrade` onto this flag.
    #[doc(hidden)]
    pub inject_torn_upgrade: bool,
    /// Which execution backend runs split method bodies: tree-walking
    /// interpretation, or bytecode compiled once at deploy time and run on
    /// the `se-vm` register VM. Semantically identical; the VM trades a
    /// deploy-time lowering pass for cheaper per-invocation dispatch. The
    /// `SE_EXEC_BACKEND` env var (`interp` | `vm`) overrides the default.
    pub backend: ExecBackend,
    /// Durable storage under the workers' state stores: `Off` (default,
    /// byte-identical to no durable layer) or WAL-backed with incremental
    /// epoch snapshots and disk recovery. The `SE_DURABILITY` env var
    /// (`off` | `wal`) overrides the default mode.
    pub durability: DurabilityConfig,
    /// Observability: `SE_OBS=off|metrics|trace` (default off — byte-
    /// identical histories, ≈ zero overhead), dump directory via
    /// `SE_OBS_DIR`, periodic snapshots via `SE_OBS_SNAPSHOT_MS`. See
    /// `se_obs::ObsConfig`.
    pub obs: se_obs::ObsConfig,
}

impl Default for StateflowConfig {
    fn default() -> Self {
        Self {
            workers: default_workers(),
            exec_threads: exec_threads_from_env_or(1),
            net: NetConfig::default(),
            batch_interval: Duration::from_millis(10),
            max_batch: 512,
            pipeline_depth: pipeline_depth_from_env_or(1),
            commit_rule: CommitRule::Reordering,
            fallback: FallbackPolicy::Serial,
            snapshot_every_batches: 16,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            service_time: Duration::from_micros(350),
            chaos: ChaosPlan::none(),
            history: None,
            inject_reserve_bug: false,
            inject_torn_upgrade: false,
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
            durability: DurabilityConfig::default(),
            obs: se_obs::ObsConfig::from_env("stateflow"),
        }
    }
}

impl StateflowConfig {
    /// A configuration with tiny delays for fast unit tests.
    pub fn fast_test(workers: usize) -> Self {
        Self {
            workers,
            exec_threads: exec_threads_from_env_or(1),
            net: NetConfig::fast_test(),
            batch_interval: Duration::from_millis(2),
            max_batch: 256,
            pipeline_depth: pipeline_depth_from_env_or(1),
            commit_rule: CommitRule::Reordering,
            fallback: FallbackPolicy::Serial,
            snapshot_every_batches: 4,
            snapshot_retention: se_dataflow::DEFAULT_SNAPSHOT_RETENTION,
            service_time: Duration::from_micros(10),
            chaos: ChaosPlan::none(),
            history: None,
            inject_reserve_bug: false,
            inject_torn_upgrade: false,
            backend: ExecBackend::from_env_or(ExecBackend::Interp),
            durability: DurabilityConfig::default(),
            obs: se_obs::ObsConfig::from_env("stateflow-test"),
        }
    }
}

/// The default worker count: one per available core minus the coordinator's,
/// floored at the paper deployment's 5 workers. Derived (not hard-coded) so
/// a default deployment actually uses the machine it runs on; the floor
/// keeps partitioning behavior identical to the paper's setup on small
/// hosts, where workers time-share cores exactly as threads always have.
pub fn default_workers() -> usize {
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    available.saturating_sub(1).max(5)
}

/// Reads the `SE_DURABILITY` override (`off` | `wal`), falling back to
/// `default` when the variable is unset. An unrecognized value also falls
/// back, but warns on stderr once per process — a typo must not silently
/// void a "whole suite durable" run (mirrors `SE_EXEC_BACKEND`).
pub fn durability_mode_from_env_or(default: DurabilityMode) -> DurabilityMode {
    match std::env::var("SE_DURABILITY") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" => DurabilityMode::Off,
            "wal" => DurabilityMode::Wal,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unrecognized SE_DURABILITY={v:?} \
                         (expected \"off\" or \"wal\")"
                    );
                });
                default
            }
        },
        Err(_) => default,
    }
}

/// Reads the `SE_EXEC_THREADS` override (a positive integer), falling back
/// to `default` when the variable is unset. An unrecognized value also falls
/// back, but warns on stderr once per process (mirrors `SE_PIPELINE_DEPTH`).
pub fn exec_threads_from_env_or(default: usize) -> usize {
    match std::env::var("SE_EXEC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(threads) if threads >= 1 => threads,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unrecognized SE_EXEC_THREADS={v:?} \
                         (expected a positive integer)"
                    );
                });
                default
            }
        },
        Err(_) => default,
    }
}

/// Reads the `SE_PIPELINE_DEPTH` override (a positive integer), falling
/// back to `default` when the variable is unset. An unrecognized value also
/// falls back, but warns on stderr once per process — a typo must not
/// silently void a "whole suite pipelined" run (mirrors `SE_EXEC_BACKEND`).
pub fn pipeline_depth_from_env_or(default: usize) -> usize {
    match std::env::var("SE_PIPELINE_DEPTH") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(depth) if depth >= 1 => depth,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unrecognized SE_PIPELINE_DEPTH={v:?} \
                         (expected a positive integer)"
                    );
                });
                default
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_deployment() {
        let c = StateflowConfig::default();
        assert_eq!(
            c.workers,
            default_workers(),
            "workers default derives from available parallelism"
        );
        assert_eq!(c.commit_rule, CommitRule::Reordering);
        assert!(c.snapshot_every_batches > 0);
        // The pipeline knob may be raised via SE_PIPELINE_DEPTH (CI runs
        // the suite at depth 3), but never below stop-and-wait.
        assert!(c.pipeline_depth >= 1);
        // The exec-pool knob may be raised via SE_EXEC_THREADS (CI runs the
        // suite at 4), but never below the serial schedule.
        assert!(c.exec_threads >= 1);
    }

    #[test]
    fn default_workers_adapts_to_parallelism_with_paper_floor() {
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let w = default_workers();
        // The paper's 5-worker deployment is the floor; on bigger hosts one
        // core is reserved for the coordinator and the rest become workers.
        assert!(w >= 5);
        if available > 6 {
            assert_eq!(w, available - 1);
        } else {
            assert_eq!(w, 5);
        }
    }
}
