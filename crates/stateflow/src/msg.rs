//! Messages exchanged between the coordinator and workers.
//!
//! Every message carries a `gen`eration number: recovery increments the
//! generation, fencing off in-flight messages from before the failure (a
//! real crash would have lost them with the process).

use std::collections::BTreeSet;
use std::sync::Arc;

use se_aria::{BatchId, TxnBuffer, TxnId};
use se_dataflow::Epoch;
use se_ir::{Invocation, RequestId, Response};
use se_lang::{LangError, Value};

/// A client-issued request, as appended to the replayable request source.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRequest {
    /// Request id (used to complete the client's waiter).
    pub request: RequestId,
    /// The operation.
    pub op: ClientOp,
}

/// What the client asked for.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Create an entity.
    Create {
        /// Class to instantiate.
        class: String,
        /// Entity key.
        key: String,
        /// Attribute overrides.
        init: Vec<(String, Value)>,
    },
    /// Invoke a method (becomes one transaction).
    Invoke(Invocation),
    /// Switch the deployment to an already-registered program version at
    /// the next epoch boundary (live code upgrade). The runtime registers
    /// the recompiled version with every worker's `VersionRegistry` before
    /// appending this record, so replay after recovery finds it too.
    Redeploy {
        /// The version to activate.
        version: u64,
    },
}

/// Per-transaction conflict flags computed by one partition; the coordinator
/// ORs flags across partitions before applying the commit rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConflictFlags {
    /// Write-after-write dependency on a lower id.
    pub waw: bool,
    /// Read-after-write dependency on a lower id.
    pub raw: bool,
    /// Write-after-read dependency on a lower id.
    pub war: bool,
}

impl ConflictFlags {
    /// ORs in another partition's flags.
    pub fn merge(&mut self, other: ConflictFlags) {
        self.waw |= other.waw;
        self.raw |= other.raw;
        self.war |= other.war;
    }
}

/// Coordinator → worker messages.
#[derive(Debug, Clone)]
pub enum WorkerMsg {
    /// Create an entity in this partition.
    Create {
        /// Fencing generation.
        gen: u64,
        /// Request to acknowledge.
        request: RequestId,
        /// Class name.
        class: String,
        /// Entity key.
        key: String,
        /// Attribute overrides.
        init: Vec<(String, Value)>,
    },
    /// Execute (or continue) a transaction's invocation chain.
    ///
    /// Carries its batch id because batches overlap under pipelining: a
    /// worker defers execution of batch *B* until the commit of batch *B−1*
    /// has been applied locally (per-channel FIFO no longer orders them).
    Exec {
        /// Fencing generation.
        gen: u64,
        /// Batch this transaction was sealed into.
        batch: BatchId,
        /// Transaction id.
        txn: TxnId,
        /// Position in the transaction's invocation chain: the coordinator
        /// sends the root at hop 0, every execution step increments. A
        /// worker tracks the next hop it expects per `(batch, txn)` and
        /// drops anything below it — re-running a hop would double-apply
        /// its effects in the transaction's buffer, so duplicated or
        /// replayed `Exec` deliveries must be idempotent.
        hop: u32,
        /// The event to process.
        inv: Invocation,
        /// A single-transaction fallback batch that commits at the final
        /// hop: the executing worker decides (commit unless errored),
        /// applies its own writes, and broadcasts the commit record to its
        /// peers — no coordinator round trip. Only used at
        /// `pipeline_depth ≥ 2`; depth 1 keeps the stop-and-wait path.
        solo: bool,
    },
    /// Execute the reservation phase for a sealed batch.
    Reserve {
        /// Fencing generation.
        gen: u64,
        /// Batch id.
        batch: BatchId,
        /// All transaction ids of the batch.
        txns: Arc<Vec<TxnId>>,
        /// Transactions whose chain errored. They abort unconditionally, so
        /// they must not reserve their buffered accesses — an errored
        /// (never-committing) writer would otherwise WAW/RAW-abort healthy
        /// higher-id transactions into pointless retries.
        errors: Arc<BTreeSet<TxnId>>,
    },
    /// Install committed writes; discard aborted buffers.
    Commit {
        /// Fencing generation.
        gen: u64,
        /// Batch id.
        batch: BatchId,
        /// All transaction ids of the batch, ascending.
        txns: Arc<Vec<TxnId>>,
        /// Ids whose effects must be discarded.
        aborted: Arc<BTreeSet<TxnId>>,
    },
    /// A pool-executed chain segment finished (node-local: sent by a
    /// worker's own exec pool to its own inbox, never across the simulated
    /// network, so it is neither delayed nor chaos-faulted).
    ///
    /// With `exec_threads ≥ 2` the protocol thread checks the segment out —
    /// hop dedup, then the transaction's buffer moves into the pool task —
    /// and this message checks it back in. All protocol state transitions
    /// (buffer reinstall, expected-hop advance, remote-hop send, solo
    /// commit, `ExecDone`) happen on the protocol thread when this message
    /// is handled, which is what keeps reservation and commit handling
    /// single-writer while execution itself fans out.
    SegmentDone {
        /// Generation the segment was spawned under; fences zombie
        /// completions from before a crash/restore.
        gen: u64,
        /// Batch the transaction belongs to.
        batch: BatchId,
        /// Transaction id.
        txn: TxnId,
        /// The chain position dedup resumes at: entry hop + 1, advanced
        /// further by same-partition continuations inside the segment
        /// (mirrors the serial path's bookkeeping exactly).
        next_hop: u32,
        /// The transaction's buffer with this segment's effects recorded.
        buffer: TxnBuffer,
        /// How the segment ended.
        outcome: SegmentOutcome,
        /// Solo-batch marker, threaded through unchanged.
        solo: bool,
    },
    /// Contribute this partition's state to a consistent snapshot.
    Snapshot {
        /// Fencing generation.
        gen: u64,
        /// Epoch to contribute to.
        epoch: Epoch,
        /// Cluster durable floor: the minimum epoch every partition has
        /// made durable on disk, per the last completed snapshot round.
        /// A durable worker may compact its WAL below it — no recovery
        /// will ever target anything older. `None` with durability off or
        /// before the first durable epoch.
        durable_floor: Option<Epoch>,
    },
    /// Run the live-upgrade migration pass: with the pipeline drained and
    /// the upgrade epoch's snapshot cut, every worker runs the new
    /// version's `__migrate__` method (where defined) over its owned
    /// entities as one synthetic write batch, logs a `VersionCut` to its
    /// WAL, and acknowledges with [`CoordMsg::MigrateAck`].
    Migrate {
        /// Fencing generation.
        gen: u64,
        /// The version being activated.
        version: u64,
        /// The epoch cut immediately before this migration (the
        /// pre-upgrade snapshot recovery falls back to).
        epoch: Epoch,
    },
    /// Reset to the state of `epoch` (0 = empty) and adopt `gen`.
    Restore {
        /// New fencing generation (messages below it are dropped).
        gen: u64,
        /// Epoch to restore (`None` = initial empty state).
        epoch: Option<Epoch>,
        /// Batch id numbering resumes at: re-arms the worker's
        /// committed-batch watermark so post-recovery batches are not
        /// deferred waiting for commits that died with the old generation.
        next_batch: BatchId,
    },
    /// Stop the worker thread.
    Shutdown,
}

/// How a pool-executed chain segment ended (see [`WorkerMsg::SegmentDone`]).
#[derive(Debug, Clone)]
pub enum SegmentOutcome {
    /// The chain finished; the protocol thread reports `ExecDone` (and for
    /// solo batches decides + commits first, as the serial path does).
    Respond(Response),
    /// The chain suspended at a cross-partition call: forward `inv` to
    /// `owner` at chain position `hop`.
    Emit {
        /// Destination partition.
        owner: usize,
        /// Hop number the outgoing `Exec` carries (distinct from
        /// `next_hop`, which is this worker's dedup position).
        hop: u32,
        /// The continuation invocation.
        inv: Invocation,
    },
    /// A scripted chaos crash fired inside the segment; the protocol thread
    /// performs the actual crash (wiping state, notifying the coordinator).
    Crashed,
}

/// Worker → coordinator messages.
#[derive(Debug, Clone)]
pub enum CoordMsg {
    /// A transaction's chain finished (successfully or with an error).
    ExecDone {
        /// Fencing generation.
        gen: u64,
        /// Batch the transaction belongs to (routes the completion to the
        /// right in-flight batch when several overlap).
        batch: BatchId,
        /// Transaction id.
        txn: TxnId,
        /// The root invocation's outcome.
        response: Response,
    },
    /// This worker's conflict flags for a batch.
    Flags {
        /// Fencing generation.
        gen: u64,
        /// Batch id.
        batch: BatchId,
        /// Reporting worker.
        worker: usize,
        /// Flags for transactions with accesses on this partition.
        flags: Vec<(TxnId, ConflictFlags)>,
    },
    /// Commit phase finished on this worker.
    CommitAck {
        /// Fencing generation.
        gen: u64,
        /// Batch id.
        batch: BatchId,
        /// Acknowledging worker.
        worker: usize,
    },
    /// Snapshot contribution stored.
    SnapshotAck {
        /// Fencing generation.
        gen: u64,
        /// Epoch.
        epoch: Epoch,
        /// Acknowledging worker.
        worker: usize,
        /// Newest epoch this worker can recover from its own disk (fsynced
        /// WAL cut or base snapshot). `None` with durability off — the
        /// coordinator then skips durable-floor bookkeeping entirely.
        durable: Option<Epoch>,
    },
    /// Migration pass finished on this worker (live upgrade).
    MigrateAck {
        /// Fencing generation.
        gen: u64,
        /// The version whose migration ran.
        version: u64,
        /// Acknowledging worker.
        worker: usize,
    },
    /// Restore finished on this worker.
    RestoreAck {
        /// Adopted generation.
        gen: u64,
        /// Acknowledging worker.
        worker: usize,
        /// The epoch this worker actually restored to (`None` = initial
        /// empty state). Volatile workers always reach the requested epoch
        /// (the in-memory snapshot is complete by construction); a durable
        /// worker recovering from a damaged disk may fall short, and the
        /// coordinator then runs another restore round at the cluster
        /// minimum so every partition rejoins at the same cut.
        reached: Option<Epoch>,
    },
    /// Entity creation finished.
    CreateDone {
        /// Fencing generation.
        gen: u64,
        /// Request to acknowledge.
        request: RequestId,
        /// Result of the create.
        result: Result<(), LangError>,
    },
    /// The worker crashed (failure injection fired).
    WorkerFailed {
        /// Fencing generation at crash time.
        gen: u64,
        /// Crashed worker.
        worker: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_merge_is_or() {
        let mut f = ConflictFlags::default();
        f.merge(ConflictFlags {
            waw: false,
            raw: true,
            war: false,
        });
        f.merge(ConflictFlags {
            waw: true,
            raw: false,
            war: false,
        });
        assert_eq!(
            f,
            ConflictFlags {
                waw: true,
                raw: true,
                war: false
            }
        );
    }
}
