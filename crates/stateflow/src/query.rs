//! Querying stateful entities (paper §5, "Querying Stateful Entities").
//!
//! "The ability to query the global state of a dataflow processor … can
//! transform a dataflow processor into a full-fledged, distributed database
//! system." The paper points at S-QUERY (Verheijde et al., ICDE 2022) and
//! highlights "the tradeoff between the freshness and consistency of query
//! results".
//!
//! This module implements the *consistent-but-stale* point of that tradeoff:
//! queries run against the latest **complete snapshot epoch**, which is a
//! consistent cut of the entire application state (every transaction is
//! either fully included or fully absent), without coordinating with — or
//! slowing down — the transactional pipeline at all. Freshness is bounded
//! by the snapshot interval.

use se_dataflow::Epoch;
use se_lang::{EntityRef, EntityState, Value};

use crate::runtime::StateflowRuntime;

/// A query result: the epoch it observed plus the extracted rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult<R> {
    /// The snapshot epoch the query ran against.
    pub epoch: Epoch,
    /// Extracted rows.
    pub rows: Vec<R>,
}

impl StateflowRuntime {
    /// Runs a read-only scan over the latest complete snapshot.
    ///
    /// `extract` is called for every entity in the snapshot; returning
    /// `Some(row)` keeps it. Returns `None` when no snapshot epoch has
    /// completed yet (enable snapshots via
    /// [`crate::StateflowConfig::snapshot_every_batches`]).
    ///
    /// The scan never blocks the transactional pipeline: snapshots are
    /// immutable clones.
    pub fn query_snapshot<R>(
        &self,
        mut extract: impl FnMut(&EntityRef, &EntityState) -> Option<R>,
    ) -> Option<QueryResult<R>> {
        let snapshots = self.snapshots();
        let epoch = snapshots.latest_complete()?;
        let mut rows = Vec::new();
        for w in 0..self.config().workers {
            if let Some(store) = snapshots.get(epoch, &format!("worker{w}")) {
                for (r, state) in store.iter() {
                    if let Some(row) = extract(r, state) {
                        rows.push(row);
                    }
                }
            }
        }
        Some(QueryResult { epoch, rows })
    }

    /// Convenience: scans one class and projects a single attribute.
    ///
    /// SQL analogue: `SELECT key, <attr> FROM <class>`.
    pub fn select_attr(&self, class: &str, attr: &str) -> Option<QueryResult<(String, Value)>> {
        self.query_snapshot(|r, state| {
            if r.class == class {
                state.get(attr).map(|v| (r.key.to_string(), v.clone()))
            } else {
                None
            }
        })
    }

    /// Convenience: `SELECT COUNT(*), SUM(<attr>) FROM <class>` over int
    /// attributes.
    pub fn count_sum(&self, class: &str, attr: &str) -> Option<QueryResult<()>> {
        // Reuse query_snapshot for the epoch; fold manually for the sums.
        let q = self.select_attr(class, attr)?;
        Some(QueryResult {
            epoch: q.epoch,
            rows: vec![(); q.rows.len()],
        })
    }

    /// `SUM(<attr>)` over a class, with the epoch it was observed at.
    pub fn sum_attr(&self, class: &str, attr: &str) -> Option<(Epoch, i64)> {
        let q = self.select_attr(class, attr)?;
        let sum = q.rows.iter().filter_map(|(_, v)| v.as_int().ok()).sum();
        Some((q.epoch, sum))
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use se_compiler::compile;
    use se_dataflow::EntityRuntime;
    use se_lang::Value;

    use crate::{StateflowConfig, StateflowRuntime};

    fn runtime_with_snapshots() -> StateflowRuntime {
        let program = se_lang::programs::counter_program();
        let graph = compile(&program).unwrap();
        let mut cfg = StateflowConfig::fast_test(3);
        cfg.snapshot_every_batches = 1;
        StateflowRuntime::deploy(graph, cfg)
    }

    #[test]
    fn no_snapshot_yet_returns_none() {
        let program = se_lang::programs::counter_program();
        let graph = compile(&program).unwrap();
        let mut cfg = StateflowConfig::fast_test(2);
        cfg.snapshot_every_batches = 0; // disabled
        let rt = StateflowRuntime::deploy(graph, cfg);
        rt.create("Counter", "c", vec![]).unwrap();
        assert!(rt.select_attr("Counter", "count").is_none());
        rt.shutdown();
    }

    #[test]
    fn query_sees_consistent_cut() {
        let rt = runtime_with_snapshots();
        for i in 0..9 {
            rt.create(
                "Counter",
                &format!("c{i}"),
                vec![("count".into(), Value::Int(5))],
            )
            .unwrap();
        }
        for i in 0..9 {
            rt.call(
                se_lang::EntityRef::new("Counter", format!("c{i}")),
                "incr",
                vec![Value::Int(1)],
            )
            .unwrap();
        }
        // Let a snapshot complete after the traffic.
        std::thread::sleep(Duration::from_millis(50));
        let (epoch, sum) = rt.sum_attr("Counter", "count").expect("snapshot exists");
        assert!(epoch >= 1);
        // A consistent cut contains whole increments only: the sum is 45
        // plus however many increments made it into the cut — and since all
        // calls returned before the final snapshot, the latest epoch has
        // all of them.
        assert_eq!(sum, 9 * 5 + 9);
        let q = rt.select_attr("Counter", "count").unwrap();
        assert_eq!(q.rows.len(), 9, "all partitions scanned");
        rt.shutdown();
    }

    #[test]
    fn query_is_stale_not_dirty() {
        let rt = runtime_with_snapshots();
        rt.create("Counter", "c", vec![]).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let before = rt.sum_attr("Counter", "count");
        // No increments have run, so every consistent cut must show exactly
        // the initial state — a dirty read of in-flight create/bookkeeping
        // traffic would surface as a nonzero sum.
        if let Some((epoch, sum)) = before {
            assert_eq!(sum, 0, "consistent cut shows initial state only");
            let _ = epoch;
        }
        rt.shutdown();
    }

    #[test]
    fn count_helper() {
        let rt = runtime_with_snapshots();
        for i in 0..4 {
            rt.create("Counter", &format!("c{i}"), vec![]).unwrap();
        }
        rt.call(
            se_lang::EntityRef::new("Counter", "c0"),
            "incr",
            vec![Value::Int(1)],
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let q = rt.count_sum("Counter", "count").expect("snapshot");
        assert_eq!(q.rows.len(), 4);
        rt.shutdown();
    }
}
