//! End-to-end tests of the StateFlow runtime: functional correctness against
//! the Local oracle, transactional guarantees under contention, and
//! exactly-once state updates under injected worker failures.

use std::sync::Arc;
use std::time::Duration;

use se_chaos::{ChaosPlan, CrashFault, CrashPoint, FaultScript};
use se_compiler::compile;
use se_dataflow::EntityRuntime;
use se_lang::builder::*;
use se_lang::{EntityRef, Program, Type, Value};
use se_stateflow::{StateflowConfig, StateflowRuntime};

const WAIT: Duration = Duration::from_secs(30);

/// Bank accounts with a transactional transfer (the YCSB+T transaction:
/// two reads and two writes across two entities).
fn account_program() -> Program {
    let account = ClassBuilder::new("Account")
        .attr_default("account_id", Type::Str, Value::Str(String::new()))
        .attr_default("balance", Type::Int, Value::Int(0))
        .key("account_id")
        .method(
            MethodBuilder::new("balance")
                .returns(Type::Int)
                .body(vec![ret(attr("balance"))]),
        )
        .method(
            MethodBuilder::new("deposit")
                .param("amount", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    attr_add("balance", var("amount")),
                    ret(attr("balance")),
                ]),
        )
        .method(
            MethodBuilder::new("transfer")
                .param("other", Type::entity("Account"))
                .param("amount", Type::Int)
                .returns(Type::Bool)
                .transactional()
                .body(vec![
                    assign_ty("b", Type::Int, attr("balance")),
                    if_(lt(var("b"), var("amount")), vec![ret(lit(false))]),
                    attr_assign("balance", sub(var("b"), var("amount"))),
                    expr_stmt(call(var("other"), "deposit", vec![var("amount")])),
                    ret(lit(true)),
                ]),
        )
        .build();
    Program::new(vec![account])
}

fn deploy(program: &Program, cfg: StateflowConfig) -> StateflowRuntime {
    let graph = compile(program).expect("program compiles");
    StateflowRuntime::deploy(graph, cfg)
}

fn get_balance(rt: &StateflowRuntime, key: &str) -> i64 {
    rt.call(EntityRef::new("Account", key), "balance", vec![])
        .unwrap_or_else(|e| panic!("balance({key}): {e}"))
        .as_int()
        .unwrap()
}

#[test]
fn counter_single_entity() {
    let program = se_lang::programs::counter_program();
    let rt = deploy(&program, StateflowConfig::fast_test(3));
    let c = rt.create("Counter", "c1", vec![]).unwrap();
    for i in 1..=10 {
        let v = rt.call(c, "incr", vec![Value::Int(1)]).unwrap();
        assert_eq!(v, Value::Int(i));
    }
    assert_eq!(rt.call(c, "get", vec![]).unwrap(), Value::Int(10));
    rt.shutdown();
}

#[test]
fn figure1_buy_item_matches_local_oracle() {
    let program = se_lang::programs::figure1_program();
    let rt = deploy(&program, StateflowConfig::fast_test(3));
    let user = rt
        .create("User", "alice", vec![("balance".into(), Value::Int(100))])
        .unwrap();
    let item = rt
        .create(
            "Item",
            "laptop",
            vec![
                ("price".into(), Value::Int(30)),
                ("stock".into(), Value::Int(5)),
            ],
        )
        .unwrap();

    let ok = rt
        .call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
        .unwrap();
    assert_eq!(ok, Value::Bool(true));
    assert_eq!(rt.call(user, "balance", vec![]).unwrap(), Value::Int(40));

    // Insufficient balance: rejected, nothing changes.
    let ok = rt
        .call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
        .unwrap();
    assert_eq!(ok, Value::Bool(false));
    assert_eq!(rt.call(user, "balance", vec![]).unwrap(), Value::Int(40));
    rt.shutdown();
}

#[test]
fn unknown_method_and_entity_error() {
    let program = account_program();
    let rt = deploy(&program, StateflowConfig::fast_test(2));
    rt.create("Account", "a", vec![]).unwrap();
    let err = rt
        .call(EntityRef::new("Account", "a"), "no_such", vec![])
        .unwrap_err();
    assert!(err.to_string().contains("no method"), "{err}");
    let err = rt
        .call(EntityRef::new("Account", "ghost"), "balance", vec![])
        .unwrap_err();
    assert!(err.to_string().contains("unknown entity"), "{err}");
    rt.shutdown();
}

#[test]
fn concurrent_transfers_conserve_total_balance() {
    let program = account_program();
    let rt = Arc::new(deploy(&program, StateflowConfig::fast_test(4)));
    let n_accounts = 8;
    for i in 0..n_accounts {
        rt.create(
            "Account",
            &format!("a{i}"),
            vec![("balance".into(), Value::Int(1000))],
        )
        .unwrap();
    }

    // Fire 200 concurrent transfers between random-ish pairs.
    let waiters: Vec<_> = (0..200)
        .map(|i| {
            let from = EntityRef::new("Account", format!("a{}", i % n_accounts));
            let to = EntityRef::new("Account", format!("a{}", (i * 7 + 3) % n_accounts));
            rt.call_async(
                from,
                "transfer",
                vec![Value::Ref(to), Value::Int((i % 13) as i64 + 1)],
            )
        })
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("transfer must complete")
            .expect("no runtime error");
    }

    let total: i64 = (0..n_accounts)
        .map(|i| get_balance(&rt, &format!("a{i}")))
        .sum();
    assert_eq!(total, 1000 * n_accounts as i64, "money is conserved");
    rt.shutdown();
}

#[test]
fn contention_causes_aborts_but_everything_commits() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(4);
    cfg.batch_interval = Duration::from_millis(5); // let batches fill up
    let rt = Arc::new(deploy(&program, cfg));
    // Everyone hammers the same two accounts: WAW conflicts guaranteed.
    rt.create(
        "Account",
        "hot",
        vec![("balance".into(), Value::Int(1_000_000))],
    )
    .unwrap();
    rt.create("Account", "cold", vec![("balance".into(), Value::Int(0))])
        .unwrap();

    let waiters: Vec<_> = (0..100)
        .map(|_| {
            rt.call_async(
                EntityRef::new("Account", "hot"),
                "transfer",
                vec![Value::Ref(EntityRef::new("Account", "cold")), Value::Int(1)],
            )
        })
        .collect();
    for w in waiters {
        assert_eq!(
            w.wait_timeout(WAIT).expect("completes").expect("no error"),
            Value::Bool(true)
        );
    }
    assert_eq!(get_balance(&rt, "hot"), 1_000_000 - 100);
    assert_eq!(get_balance(&rt, "cold"), 100);
    let aborts = rt.stats().aborts.get();
    assert!(
        aborts > 0,
        "same-key transfers in one batch must conflict (got {aborts} aborts)"
    );
    rt.shutdown();
}

/// Regression: an errored chain can never commit, so its buffered writes
/// must not reserve — an errored writer used to WAW-abort healthy higher-id
/// transactions on the same key into a pointless retry round.
#[test]
fn errored_chain_does_not_abort_healthy_transactions() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(3);
    // Generous interval so both transactions land in one batch.
    cfg.batch_interval = Duration::from_millis(30);
    let rt = deploy(&program, cfg);
    rt.create("Account", "src", vec![("balance".into(), Value::Int(100))])
        .unwrap();
    // t0 (lower id): withdraws from src (a buffered write), then errors on
    // the unknown transfer target. t1 (higher id): deposits into src — a
    // WAW on src against the errored t0.
    let w0 = rt.call_async(
        EntityRef::new("Account", "src"),
        "transfer",
        vec![
            Value::Ref(EntityRef::new("Account", "ghost")),
            Value::Int(5),
        ],
    );
    let w1 = rt.call_async(
        EntityRef::new("Account", "src"),
        "deposit",
        vec![Value::Int(7)],
    );
    let err = w0.wait_timeout(WAIT).expect("completes").unwrap_err();
    assert!(err.to_string().contains("unknown entity"), "{err}");
    assert_eq!(
        w1.wait_timeout(WAIT).expect("completes").expect("no error"),
        Value::Int(107),
        "the deposit must see src untouched by the errored withdraw"
    );
    let stats = rt.stats();
    assert_eq!(
        stats.aborts.get(),
        0,
        "an errored writer must not conflict-abort healthy transactions"
    );
    assert_eq!(stats.failed.get(), 1, "the errored chain counts as failed");
    assert_eq!(
        stats.commits.get(),
        1,
        "only the deposit commits — hard failures must not inflate commits"
    );
    rt.shutdown();
}

/// Hot-key contention at pipeline depth 4: aborted transactions drain
/// through solo fallback batches (committed at their final hop, pipelined
/// by the coordinator) and must still apply exactly once, in order.
#[test]
fn pipelined_hot_key_contention_commits_exactly_once() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(4);
    cfg.pipeline_depth = 4;
    cfg.batch_interval = Duration::from_millis(5); // let batches fill up
    let rt = Arc::new(deploy(&program, cfg));
    rt.create(
        "Account",
        "hot",
        vec![("balance".into(), Value::Int(1_000_000))],
    )
    .unwrap();
    rt.create("Account", "cold", vec![("balance".into(), Value::Int(0))])
        .unwrap();
    let waiters: Vec<_> = (0..100)
        .map(|_| {
            rt.call_async(
                EntityRef::new("Account", "hot"),
                "transfer",
                vec![Value::Ref(EntityRef::new("Account", "cold")), Value::Int(1)],
            )
        })
        .collect();
    for w in waiters {
        assert_eq!(
            w.wait_timeout(WAIT).expect("completes").expect("no error"),
            Value::Bool(true)
        );
    }
    assert_eq!(get_balance(&rt, "hot"), 1_000_000 - 100);
    assert_eq!(get_balance(&rt, "cold"), 100);
    let aborts = rt.stats().aborts.get();
    assert!(aborts > 0, "hot-key batches must conflict (got {aborts})");
    rt.shutdown();
}

#[test]
fn snapshots_are_taken_periodically() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(2);
    cfg.snapshot_every_batches = 1;
    let rt = deploy(&program, cfg);
    rt.create("Account", "a", vec![("balance".into(), Value::Int(10))])
        .unwrap();
    for _ in 0..5 {
        rt.call(
            EntityRef::new("Account", "a"),
            "deposit",
            vec![Value::Int(1)],
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        rt.stats().snapshots.get() >= 1,
        "periodic snapshots must complete"
    );
    assert!(rt.snapshots().latest_complete().is_some());
    rt.shutdown();
}

/// The exactly-once experiment: kill a worker mid-stream and verify that
/// post-recovery state reflects every request exactly once.
fn exactly_once_scenario(snapshot_every: u64, fail_after: u64) {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.snapshot_every_batches = snapshot_every;
    cfg.chaos = ChaosPlan::single_crash("worker0", fail_after);
    let rt = Arc::new(deploy(&program, cfg.clone()));

    let n_accounts = 6usize;
    for i in 0..n_accounts {
        rt.create(
            "Account",
            &format!("a{i}"),
            vec![("balance".into(), Value::Int(0))],
        )
        .unwrap();
    }

    // Deterministic, commutative workload: deposits only, so the expected
    // final state is independent of commit order — any lost or duplicated
    // effect is detectable.
    let mut expected = vec![0i64; n_accounts];
    let mut waiters = Vec::new();
    for i in 0..120 {
        let acct = i % n_accounts;
        let amount = (i % 9 + 1) as i64;
        expected[acct] += amount;
        waiters.push(rt.call_async(
            EntityRef::new("Account", format!("a{acct}")),
            "deposit",
            vec![Value::Int(amount)],
        ));
        // Spread arrivals across batches so the failure lands mid-stream.
        if i % 10 == 0 {
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("deposit must complete after recovery")
            .expect("no error");
    }

    assert_eq!(
        cfg.chaos.crashes_fired(),
        1,
        "the injected failure must actually fire"
    );
    assert_eq!(rt.stats().recoveries.get(), 1);

    for (i, want) in expected.iter().enumerate() {
        let got = get_balance(&rt, &format!("a{i}"));
        assert_eq!(
            got, *want,
            "a{i}: exactly-once violated (lost or duplicated deposits)"
        );
    }
    rt.shutdown();
}

#[test]
fn exactly_once_failure_before_any_snapshot() {
    // Recovery falls back to full replay from offset 0 (creates included).
    exactly_once_scenario(1_000_000, 20);
}

#[test]
fn exactly_once_failure_after_snapshots() {
    // worker0 owns 2 of the 6 accounts (40 root executions); the trigger
    // must sit well below that so it fires at every pipeline depth — deeper
    // pipelines seal smaller batches, which legitimately produces fewer
    // conflict re-executions to pad the count.
    exactly_once_scenario(2, 25);
}

#[test]
fn transfers_survive_failure_with_conservation() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.snapshot_every_batches = 3;
    cfg.chaos = ChaosPlan::single_crash("worker1", 25);
    let rt = Arc::new(deploy(&program, cfg.clone()));
    for i in 0..4 {
        rt.create(
            "Account",
            &format!("a{i}"),
            vec![("balance".into(), Value::Int(10_000))],
        )
        .unwrap();
    }
    let waiters: Vec<_> = (0..80)
        .map(|i| {
            let from = EntityRef::new("Account", format!("a{}", i % 4));
            let to = EntityRef::new("Account", format!("a{}", (i + 1) % 4));
            rt.call_async(from, "transfer", vec![Value::Ref(to), Value::Int(5)])
        })
        .collect();
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("transfer completes")
            .expect("no error");
    }
    assert_eq!(cfg.chaos.crashes_fired(), 1);
    let total: i64 = (0..4).map(|i| get_balance(&rt, &format!("a{i}"))).sum();
    assert_eq!(total, 40_000, "conservation across failure + replay");
    // Every account sent 20×5 and received 20×5: net zero.
    for i in 0..4 {
        assert_eq!(get_balance(&rt, &format!("a{i}")), 10_000);
    }
    rt.shutdown();
}

/// A multi-crash script kills the *same* worker twice: the first recovery
/// must not exhaust the plan (the old one-shot `FailurePlan` semantics), and
/// the second incarnation's countdown starts from zero. Exactly-once must
/// hold across both replays.
#[test]
fn same_worker_crashes_twice_and_recovers_twice() {
    let program = account_program();
    let mut cfg = StateflowConfig::fast_test(3);
    cfg.snapshot_every_batches = 2;
    cfg.chaos = ChaosPlan::from_script(FaultScript {
        crashes: vec![
            CrashFault {
                node: "worker0".into(),
                point: CrashPoint::Exec,
                after_events: 15,
            },
            CrashFault {
                node: "worker0".into(),
                point: CrashPoint::Exec,
                after_events: 10,
            },
        ],
        ..FaultScript::default()
    });
    let rt = Arc::new(deploy(&program, cfg.clone()));

    let n_accounts = 6usize;
    for i in 0..n_accounts {
        rt.create("Account", &format!("a{i}"), vec![]).unwrap();
    }
    let mut expected = vec![0i64; n_accounts];
    let mut waiters = Vec::new();
    for i in 0..150 {
        let acct = i % n_accounts;
        let amount = (i % 9 + 1) as i64;
        expected[acct] += amount;
        waiters.push(rt.call_async(
            EntityRef::new("Account", format!("a{acct}")),
            "deposit",
            vec![Value::Int(amount)],
        ));
        if i % 10 == 0 {
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    for w in waiters {
        w.wait_timeout(WAIT)
            .expect("deposit must complete after both recoveries")
            .expect("no error");
    }
    assert_eq!(
        cfg.chaos.crashes_fired(),
        2,
        "both scripted crashes of worker0 must fire"
    );
    assert_eq!(rt.stats().recoveries.get(), 2);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            get_balance(&rt, &format!("a{i}")),
            *want,
            "a{i}: exactly-once violated across a double crash"
        );
    }
    rt.shutdown();
}

#[test]
fn overhead_timers_populated() {
    let program = account_program();
    let rt = deploy(&program, StateflowConfig::fast_test(2));
    rt.create("Account", "a", vec![("balance".into(), Value::Int(1))])
        .unwrap();
    rt.call(EntityRef::new("Account", "a"), "balance", vec![])
        .unwrap();
    let report = rt.timers().report();
    let names: Vec<&str> = report.iter().map(|(n, _, _)| *n).collect();
    assert!(names.contains(&"function_execution"), "{names:?}");
    assert!(names.contains(&"state_read"), "{names:?}");
    rt.shutdown();
}
