//! Key-based partition routing.
//!
//! "This key() function is used by a routing and translation mechanism to
//! partition and distribute the load among parallel instances of that entity
//! within a cluster" (§2.2). The hash must be *stable across processes and
//! runs* — replay-based recovery re-routes the same events and must land
//! them on the same partitions — so we use FNV-1a rather than the std
//! `RandomState` hasher.

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The partition (0-based) that owns entity key `key` among `partitions`.
///
/// # Panics
/// Panics if `partitions == 0`.
pub fn partition_for(key: &str, partitions: usize) -> usize {
    assert!(partitions > 0, "partition count must be positive");
    (fnv1a(key.as_bytes()) % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(partition_for("alice", 4), partition_for("alice", 4));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn in_range_and_spread() {
        let n = 7;
        let mut seen = vec![0usize; n];
        for i in 0..1000 {
            let p = partition_for(&format!("key{i}"), n);
            assert!(p < n);
            seen[p] += 1;
        }
        // Every partition receives a reasonable share of 1000 uniform keys.
        for (p, count) in seen.iter().enumerate() {
            assert!(*count > 50, "partition {p} got only {count}/1000 keys");
        }
    }

    #[test]
    fn known_vector() {
        // FNV-1a test vector: fnv1a("") == offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partitions_panics() {
        partition_for("x", 0);
    }
}
