//! Split-function blocks: the unit the compiler produces and runtimes run.
//!
//! The paper (§2.4) splits an imperative method at every remote call and at
//! control-flow constructs, producing multiple function definitions
//! (`buy_item_0`, `buy_item_1`, …) where each split function "takes as
//! arguments the variables it references in its body and returns the
//! variables it defines". We represent the result as a control-flow graph of
//! [`Block`]s:
//!
//! * a block's `params` are exactly its live-in variables (the "arguments");
//! * a block body is straight-line code containing **no** remote calls;
//! * remote calls appear only as the block [`Terminator`], which names the
//!   continuation block (`resume`) — continuation-passing style at the
//!   block level.

use serde::{Deserialize, Serialize};

use se_lang::{Expr, Stmt, Symbol, Type};

/// Index of a block within its method's CFG; block 0 is the entry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// How control leaves a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Return `expr` to the caller (or the external client at the root).
    Return(Expr),
    /// Unconditionally continue at another block of the same method — a
    /// same-entity transition, executed without any network hop.
    Jump(BlockId),
    /// Conditional transition.
    Branch {
        /// Condition to evaluate.
        cond: Expr,
        /// Block for the true path (paper: the "'true' path" function).
        then_blk: BlockId,
        /// Block for the false path.
        else_blk: BlockId,
    },
    /// Suspend this method and invoke `method` on a remote entity; when the
    /// remote call's value arrives back, execution resumes at `resume` with
    /// the value bound to `result_var`.
    RemoteCall {
        /// Expression evaluating to the callee entity reference. After
        /// normalization this is always a `Var` or `Attr` read.
        target: Expr,
        /// Callee method name.
        method: Symbol,
        /// Argument expressions, evaluated before suspension (the paper's
        /// `buy_item_0` evaluates `update_stock_arg = amount` up front).
        args: Vec<Expr>,
        /// Variable to bind the returned value to, if used.
        result_var: Option<Symbol>,
        /// Continuation block.
        resume: BlockId,
    },
}

impl Terminator {
    /// Blocks this terminator can transfer control to (within the method).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Return(_) => vec![],
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::RemoteCall { resume, .. } => vec![*resume],
        }
    }
}

/// One split function: straight-line statements plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Live-in variables — the "arguments" of the split function. Runtimes
    /// carry exactly these in the event environment when entering the block.
    pub params: Vec<Symbol>,
    /// Straight-line statements (no control flow, no remote calls).
    pub stmts: Vec<Stmt>,
    /// How control leaves the block.
    pub terminator: Terminator,
}

impl Block {
    /// Whether this block suspends on a remote call.
    pub fn is_suspension_point(&self) -> bool {
        matches!(self.terminator, Terminator::RemoteCall { .. })
    }
}

/// A compiled method: its CFG of blocks plus the original signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMethod {
    /// Method name.
    pub name: Symbol,
    /// Parameter names and types, in order.
    pub params: Vec<(Symbol, Type)>,
    /// Declared return type.
    pub ret: Type,
    /// `@transactional` marker carried from the source.
    pub transactional: bool,
    /// All blocks; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<Block>,
    /// Entry block (always `BlockId(0)`).
    pub entry: BlockId,
}

impl CompiledMethod {
    /// Looks up a block by id.
    ///
    /// # Panics
    /// Panics if the id is out of range — ids are produced by the compiler
    /// and an unknown id is a compiler bug, not a runtime condition.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Number of remote-call suspension points (how many times the original
    /// function was split due to calls).
    pub fn suspension_points(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.is_suspension_point())
            .count()
    }

    /// Whether the method runs in a single block (no splitting happened —
    /// "for simple functions that do not call other remote functions, both
    /// the translation and the execution is straightforward", §2.3).
    pub fn is_simple(&self) -> bool {
        self.blocks.len() == 1
    }

    /// Validates internal consistency: successor ids in range, entry in
    /// range, and no remote call inside block bodies.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.0 as usize >= self.blocks.len() {
            return Err(format!(
                "method {}: entry {} out of range",
                self.name, self.entry
            ));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.0 as usize != i {
                return Err(format!("method {}: block #{i} has id {}", self.name, b.id));
            }
            for s in &b.stmts {
                if s.contains_call() {
                    return Err(format!(
                        "method {}: block {} body contains a remote call",
                        self.name, b.id
                    ));
                }
            }
            if let Terminator::Branch { cond, .. } = &b.terminator {
                if cond.contains_call() {
                    return Err(format!(
                        "method {}: block {} branch condition contains a remote call",
                        self.name, b.id
                    ));
                }
            }
            for succ in b.terminator.successors() {
                if succ.0 as usize >= self.blocks.len() {
                    return Err(format!(
                        "method {}: block {} references unknown block {succ}",
                        self.name, b.id
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_lang::builder::*;

    fn simple_method() -> CompiledMethod {
        CompiledMethod {
            name: "get".into(),
            params: vec![],
            ret: Type::Int,
            transactional: false,
            blocks: vec![Block {
                id: BlockId(0),
                params: vec![],
                stmts: vec![],
                terminator: Terminator::Return(attr("n")),
            }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn simple_method_properties() {
        let m = simple_method();
        assert!(m.is_simple());
        assert_eq!(m.suspension_points(), 0);
        m.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_successor() {
        let mut m = simple_method();
        m.blocks[0].terminator = Terminator::Jump(BlockId(9));
        assert!(m.validate().unwrap_err().contains("unknown block"));
    }

    #[test]
    fn validate_rejects_call_in_body() {
        let mut m = simple_method();
        m.blocks[0]
            .stmts
            .push(expr_stmt(call(var("x"), "m", vec![])));
        assert!(m.validate().unwrap_err().contains("contains a remote call"));
    }

    #[test]
    fn successors_enumerated() {
        let t = Terminator::Branch {
            cond: lit(true),
            then_blk: BlockId(1),
            else_blk: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Return(int(0)).successors().is_empty());
        let rc = Terminator::RemoteCall {
            target: var("item"),
            method: "price".into(),
            args: vec![],
            result_var: Some("p".into()),
            resume: BlockId(3),
        };
        assert_eq!(rc.successors(), vec![BlockId(3)]);
    }
}
