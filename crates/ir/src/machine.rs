//! The execution state machine derived from a split method.
//!
//! The paper (§2.5): "For every split function we maintain an execution
//! graph that tracks the execution stage of a given stateful entity's
//! function invocation. … The process of deriving the state machine consists
//! of unrolling the control flow graph of the program."
//!
//! The CFG of blocks *is* the state machine — this module materializes it in
//! an inspectable form (states, labeled transitions, reachability) and can
//! render Graphviz for documentation and debugging.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use se_lang::Symbol;

use crate::block::{BlockId, CompiledMethod, Terminator};

/// A labeled transition between execution stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// Unconditional fall-through.
    Jump {
        /// Target stage.
        to: BlockId,
    },
    /// Conditional, true arm.
    BranchTrue {
        /// Target stage.
        to: BlockId,
    },
    /// Conditional, false arm.
    BranchFalse {
        /// Target stage.
        to: BlockId,
    },
    /// Suspension on a remote call; taken when the callee's return value
    /// arrives. Each call site maps to its own transition so that "calls to
    /// the same method may result in a different state in the automata,
    /// ensuring each state has as a next state the correct return point"
    /// (paper §5, Program Analysis).
    CallReturn {
        /// Callee method name.
        method: Symbol,
        /// Target stage (the continuation block).
        to: BlockId,
    },
    /// Terminal: the invocation returns to its caller.
    Return,
}

impl Transition {
    /// The target stage, if the transition is not terminal.
    pub fn target(&self) -> Option<BlockId> {
        match self {
            Transition::Jump { to }
            | Transition::BranchTrue { to }
            | Transition::BranchFalse { to }
            | Transition::CallReturn { to, .. } => Some(*to),
            Transition::Return => None,
        }
    }
}

/// The state machine of one method: one state per block, with labeled edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachine {
    /// Owning method name (for display).
    pub method: Symbol,
    /// Per-state outgoing transitions, indexed by `BlockId.0`.
    pub transitions: Vec<Vec<Transition>>,
    /// Entry state.
    pub entry: BlockId,
}

impl StateMachine {
    /// Derives the state machine of a compiled method.
    pub fn from_method(m: &CompiledMethod) -> Self {
        let transitions = m
            .blocks
            .iter()
            .map(|b| match &b.terminator {
                Terminator::Return(_) => vec![Transition::Return],
                Terminator::Jump(to) => vec![Transition::Jump { to: *to }],
                Terminator::Branch {
                    then_blk, else_blk, ..
                } => vec![
                    Transition::BranchTrue { to: *then_blk },
                    Transition::BranchFalse { to: *else_blk },
                ],
                Terminator::RemoteCall { method, resume, .. } => {
                    vec![Transition::CallReturn {
                        method: *method,
                        to: *resume,
                    }]
                }
            })
            .collect();
        Self {
            method: m.name,
            transitions,
            entry: m.entry,
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// States reachable from the entry.
    pub fn reachable(&self) -> BTreeSet<BlockId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.entry];
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            for t in &self.transitions[s.0 as usize] {
                if let Some(to) = t.target() {
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// Whether every state is reachable from the entry (the compiler should
    /// never emit dead states).
    pub fn fully_reachable(&self) -> bool {
        self.reachable().len() == self.state_count()
    }

    /// Whether any state can reach itself again — i.e. the method contains a
    /// loop. Loop iterations are tracked by extra environment state (§2.5).
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.state_count();
        let mut color = vec![Color::White; n];
        // Explicit stack of (node, next-transition-index).
        let mut stack: Vec<(usize, usize)> = vec![(self.entry.0 as usize, 0)];
        color[self.entry.0 as usize] = Color::Gray;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let ts = &self.transitions[node];
            if *idx < ts.len() {
                let i = *idx;
                *idx += 1;
                if let Some(to) = ts[i].target() {
                    let to = to.0 as usize;
                    match color[to] {
                        Color::Gray => return true,
                        Color::White => {
                            color[to] = Color::Gray;
                            stack.push((to, 0));
                        }
                        Color::Black => {}
                    }
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        false
    }

    /// Graphviz `dot` rendering of the execution graph.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.method);
        let _ = writeln!(out, "  rankdir=LR; node [shape=box, fontname=monospace];");
        for (i, ts) in self.transitions.iter().enumerate() {
            let _ = writeln!(out, "  b{i} [label=\"{}_{i}\"];", self.method);
            for t in ts {
                match t {
                    Transition::Jump { to } => {
                        let _ = writeln!(out, "  b{i} -> b{};", to.0);
                    }
                    Transition::BranchTrue { to } => {
                        let _ = writeln!(out, "  b{i} -> b{} [label=\"true\"];", to.0);
                    }
                    Transition::BranchFalse { to } => {
                        let _ = writeln!(out, "  b{i} -> b{} [label=\"false\"];", to.0);
                    }
                    Transition::CallReturn { method, to } => {
                        let _ = writeln!(
                            out,
                            "  b{i} -> b{} [label=\"call {method}()\", style=dashed];",
                            to.0
                        );
                    }
                    Transition::Return => {
                        let _ = writeln!(out, "  b{i} -> ret;");
                    }
                }
            }
        }
        let _ = writeln!(out, "  ret [shape=doublecircle, label=\"return\"];");
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use se_lang::builder::*;
    use se_lang::Type;

    fn method_with(blocks: Vec<Block>) -> CompiledMethod {
        CompiledMethod {
            name: "m".into(),
            params: vec![],
            ret: Type::Unit,
            transactional: false,
            blocks,
            entry: BlockId(0),
        }
    }

    fn blk(id: u32, terminator: Terminator) -> Block {
        Block {
            id: BlockId(id),
            params: vec![],
            stmts: vec![],
            terminator,
        }
    }

    #[test]
    fn derives_transitions() {
        let m = method_with(vec![
            blk(
                0,
                Terminator::RemoteCall {
                    target: var("item"),
                    method: "price".into(),
                    args: vec![],
                    result_var: Some("p".into()),
                    resume: BlockId(1),
                },
            ),
            blk(
                1,
                Terminator::Branch {
                    cond: lit(true),
                    then_blk: BlockId(2),
                    else_blk: BlockId(3),
                },
            ),
            blk(2, Terminator::Return(int(1))),
            blk(3, Terminator::Return(int(0))),
        ]);
        let sm = StateMachine::from_method(&m);
        assert_eq!(sm.state_count(), 4);
        assert!(sm.fully_reachable());
        assert!(!sm.has_cycle());
        assert_eq!(
            sm.transitions[0],
            vec![Transition::CallReturn {
                method: "price".into(),
                to: BlockId(1)
            }]
        );
    }

    #[test]
    fn cycle_detected_for_loops() {
        let m = method_with(vec![
            blk(
                0,
                Terminator::Branch {
                    cond: lit(true),
                    then_blk: BlockId(1),
                    else_blk: BlockId(2),
                },
            ),
            blk(1, Terminator::Jump(BlockId(0))),
            blk(2, Terminator::Return(int(0))),
        ]);
        let sm = StateMachine::from_method(&m);
        assert!(sm.has_cycle());
        assert!(sm.fully_reachable());
    }

    #[test]
    fn unreachable_state_detected() {
        let m = method_with(vec![
            blk(0, Terminator::Return(int(0))),
            blk(1, Terminator::Return(int(1))),
        ]);
        let sm = StateMachine::from_method(&m);
        assert!(!sm.fully_reachable());
    }

    #[test]
    fn dot_contains_states_and_edges() {
        let m = method_with(vec![
            blk(0, Terminator::Jump(BlockId(1))),
            blk(1, Terminator::Return(int(0))),
        ]);
        let dot = StateMachine::from_method(&m).to_dot();
        assert!(dot.contains("b0 -> b1"));
        assert!(dot.contains("doublecircle"));
    }
}
