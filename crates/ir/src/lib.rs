//! # se-ir — the stateful dataflow-graph intermediate representation
//!
//! The paper's central design decision: "the dataflow model should be used
//! as a low-level intermediate representation for the modeling and execution
//! of distributed applications, but not as a programmer-facing model" (§1).
//!
//! This crate defines that IR and its engine-independent execution core:
//!
//! * [`block`] — split-function blocks and compiled methods (the output of
//!   the paper's function-splitting transformation, §2.4);
//! * [`machine`] — the execution state machine derived per method (§2.5);
//! * [`graph`] — the enriched stateful dataflow graph: operators, routers,
//!   call and loopback edges (§2.3, Figure 2);
//! * [`event`] — invocation events carrying continuation frames (the
//!   "execution graph inserted into the function-calling event", §2.5);
//! * [`exec`] — block execution and the invocation-event protocol shared by
//!   every runtime;
//! * [`route`] — stable key-based partition routing.

#![warn(missing_docs)]

pub mod block;
pub mod event;
pub mod exec;
pub mod graph;
pub mod machine;
pub mod route;
pub mod version;

pub use block::{Block, BlockId, CompiledMethod, Terminator};
pub use event::{
    EntityOp, Frame, Invocation, InvocationKind, RequestId, Response, INITIAL_VERSION,
};
pub use exec::{
    drive_chain, drive_chain_with, process_invocation, process_invocation_with, run_from_block,
    Activation, BlockOutcome, BodyOutcome, BodyRunner, ExecBackend, InterpBody, StepEffect,
};
pub use graph::{
    CompiledClass, CompiledProgram, DataflowGraph, EdgeKind, EdgeSpec, NodeRef, OperatorId,
    OperatorSpec,
};
pub use machine::{StateMachine, Transition};
pub use route::{fnv1a, partition_for};
pub use version::{VersionEntry, VersionRegistry};
