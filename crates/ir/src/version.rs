//! The live-upgrade version registry shared by both engines.
//!
//! A deployment starts with one `(graph, runner)` pair at
//! [`crate::event::INITIAL_VERSION`]. A redeploy inserts the next version's
//! pair *before* the engine's switchover protocol runs, so execution sites
//! (workers, remote function workers) can resolve any in-flight
//! [`crate::Invocation`] by its pinned `version` — v1 continuations keep
//! draining on v1 code while new roots already route to v2.
//!
//! Eviction is drain-based: once the engine knows no event pinned below the
//! active version can still exist (for StateFlow, the first snapshot after
//! an upgrade commits — the pipeline fully drained to cut it), it calls
//! [`VersionRegistry::evict_below`] and the superseded program text and
//! bytecode are dropped.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::event::INITIAL_VERSION;
use crate::exec::BodyRunner;
use crate::graph::DataflowGraph;

/// One deployed program version: the compiled graph and the body runner
/// (interpreter or bytecode) that executes it.
#[derive(Clone)]
pub struct VersionEntry {
    /// The compiled dataflow graph of this version.
    pub graph: Arc<DataflowGraph>,
    /// Executes this version's method bodies.
    pub runner: Arc<dyn BodyRunner>,
}

/// All live program versions of one deployment, keyed by version number.
///
/// Shared (`Arc`) between the client-facing runtime, which inserts new
/// versions and advances `active`, and every execution site, which resolves
/// events by their pinned version.
pub struct VersionRegistry {
    entries: RwLock<BTreeMap<u64, VersionEntry>>,
    /// The version new root invocations are stamped with. Only the engine's
    /// switchover protocol advances this (at its epoch/batch boundary).
    active: AtomicU64,
}

impl VersionRegistry {
    /// A registry holding `graph`/`runner` as the initial active version.
    pub fn new(graph: Arc<DataflowGraph>, runner: Arc<dyn BodyRunner>) -> Arc<Self> {
        let mut entries = BTreeMap::new();
        entries.insert(INITIAL_VERSION, VersionEntry { graph, runner });
        Arc::new(VersionRegistry {
            entries: RwLock::new(entries),
            active: AtomicU64::new(INITIAL_VERSION),
        })
    }

    /// The currently active version number.
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::SeqCst)
    }

    /// Marks `version` active: new roots route to it from now on.
    pub fn set_active(&self, version: u64) {
        self.active.store(version, Ordering::SeqCst);
    }

    /// The entry for `version`, if still registered.
    pub fn get(&self, version: u64) -> Option<VersionEntry> {
        self.entries.read().get(&version).cloned()
    }

    /// The active version's entry (always registered).
    pub fn active_entry(&self) -> VersionEntry {
        self.get(self.active()).expect("active version registered")
    }

    /// Resolves `version`, falling back to the active entry when the version
    /// was already evicted (a drained version can only be referenced by
    /// stale duplicates, which the engines fence elsewhere).
    pub fn resolve(&self, version: u64) -> VersionEntry {
        self.get(version).unwrap_or_else(|| self.active_entry())
    }

    /// Registers a new version (does not activate it).
    pub fn insert(&self, version: u64, graph: Arc<DataflowGraph>, runner: Arc<dyn BodyRunner>) {
        self.entries
            .write()
            .insert(version, VersionEntry { graph, runner });
    }

    /// Drops every version strictly below `floor` (drained-version
    /// eviction). Returns how many entries were removed.
    pub fn evict_below(&self, floor: u64) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|v, _| *v >= floor);
        before - entries.len()
    }

    /// Number of registered versions.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty (never true in a live deployment).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered version numbers, ascending.
    pub fn versions(&self) -> Vec<u64> {
        self.entries.read().keys().copied().collect()
    }
}

impl std::fmt::Debug for VersionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionRegistry")
            .field("versions", &self.versions())
            .field("active", &self.active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::InterpBody;
    use crate::graph::CompiledProgram;

    fn graph(version: u64) -> Arc<DataflowGraph> {
        Arc::new(DataflowGraph {
            program: CompiledProgram { classes: vec![] },
            operators: vec![],
            edges: vec![],
            version,
        })
    }

    #[test]
    fn insert_activate_evict() {
        let reg = VersionRegistry::new(graph(1), Arc::new(InterpBody));
        assert_eq!(reg.active(), 1);
        reg.insert(2, graph(2), Arc::new(InterpBody));
        assert_eq!(reg.versions(), vec![1, 2]);
        // v1 still resolves while registered.
        assert_eq!(reg.resolve(1).graph.version, 1);
        reg.set_active(2);
        assert_eq!(reg.active_entry().graph.version, 2);
        assert_eq!(reg.evict_below(2), 1);
        assert_eq!(reg.versions(), vec![2]);
        // Evicted versions fall back to the active entry.
        assert_eq!(reg.resolve(1).graph.version, 2);
    }
}
