//! Events that flow through the dataflow graph.
//!
//! "An operator cannot be 'called' directly, like a function of an object.
//! Instead, an event has to enter the dataflow and reach the operator
//! holding the code of that entity" (§2.3). [`Invocation`] is that event.
//!
//! When a split function suspends on a remote call, "the state machine is
//! inserted into the function-calling event; as the event flows through the
//! system the execution graph is traversed and the proper functions are
//! called; the execution graph stores intermediate results" (§2.5). The
//! [`Frame`] stack carries exactly that: per-caller continuation block and
//! environment (the intermediate results).

use serde::{Deserialize, Serialize};

use se_lang::{ClassName, EntityRef, Env, LangError, Symbol, Value};

use crate::block::BlockId;

/// Identifier of a root request (a client-issued invocation). Also serves as
/// the transaction id on transactional runtimes — one root invocation is one
/// transaction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A suspended caller waiting for a remote call to return.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Entity whose method is suspended.
    pub entity: EntityRef,
    /// Suspended method name.
    pub method: Symbol,
    /// Block to resume at when the callee returns.
    pub resume: BlockId,
    /// Live variables at the suspension point — pruned to exactly the
    /// resume block's parameters ("the variables it references").
    pub env: Env,
    /// Variable to bind the callee's return value to.
    pub result_var: Option<Symbol>,
}

/// How an invocation enters an operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InvocationKind {
    /// Fresh call of a method with evaluated arguments.
    Start {
        /// Evaluated argument values, positionally matching the signature.
        args: Vec<Value>,
    },
    /// Resumption of a previously suspended method: re-enter at `block` with
    /// the saved environment and the remote call's `result` bound to
    /// `result_var`.
    Resume {
        /// Continuation block.
        block: BlockId,
        /// Saved live variables.
        env: Env,
        /// The remote call's return value.
        result: Value,
        /// Name to bind `result` to (if the call's value is used).
        result_var: Option<Symbol>,
    },
}

/// The program version every deployment starts at.
pub const INITIAL_VERSION: u64 = 1;

/// A function-invocation event traversing the dataflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invocation {
    /// Root request this event belongs to.
    pub request: RequestId,
    /// Entity the event is routed to (partitioned on `target.key`).
    pub target: EntityRef,
    /// Method to run (or resume) on the target.
    pub method: Symbol,
    /// Start or resume.
    pub kind: InvocationKind,
    /// Suspended callers, innermost last.
    pub stack: Vec<Frame>,
    /// Program version this event is pinned to. Stamped at the root by the
    /// engine's active version and inherited by every continuation, so a
    /// chain in flight across a live upgrade drains on the version it
    /// started under.
    pub version: u64,
}

impl Invocation {
    /// A root invocation as issued by a client.
    pub fn root(
        request: RequestId,
        target: EntityRef,
        method: impl Into<Symbol>,
        args: Vec<Value>,
    ) -> Self {
        Self {
            request,
            target,
            method: method.into(),
            kind: InvocationKind::Start { args },
            stack: Vec::new(),
            version: INITIAL_VERSION,
        }
    }

    /// The same invocation pinned to `version`.
    pub fn at_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Approximate wire size in bytes; the network simulation charges
    /// per-KB cost on this.
    pub fn approx_size(&self) -> usize {
        let env_size = |env: &Env| -> usize {
            env.iter()
                .map(|(k, v)| k.len() + v.approx_size())
                .sum::<usize>()
        };
        let kind = match &self.kind {
            InvocationKind::Start { args } => args.iter().map(Value::approx_size).sum::<usize>(),
            InvocationKind::Resume { env, result, .. } => env_size(env) + result.approx_size(),
        };
        let stack: usize = self
            .stack
            .iter()
            .map(|f| 32 + f.entity.key.len() + f.method.len() + env_size(&f.env))
            .sum();
        32 + self.target.key.len() + self.method.len() + kind + stack
    }
}

/// Terminal outcome of a root request, delivered to the egress router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Root request this responds to.
    pub request: RequestId,
    /// The method's return value, or the error that aborted the chain.
    pub result: Result<Value, LangError>,
}

/// A client-facing operation: either create an entity or invoke a method.
///
/// Entity creation is modeled as a routed operation (it must reach the
/// partition that will own the key) rather than compiling `__init__`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EntityOp {
    /// Create an instance of `class` with key `key`; `init` overrides
    /// declared attribute defaults.
    Create {
        /// Class to instantiate.
        class: ClassName,
        /// Partitioning key of the new entity.
        key: Symbol,
        /// Attribute overrides.
        init: Vec<(String, Value)>,
    },
    /// Invoke (or resume) a method.
    Invoke(Invocation),
}

impl EntityOp {
    /// The entity this operation must be routed to.
    pub fn routing_target(&self) -> EntityRef {
        match self {
            EntityOp::Create { class, key, .. } => EntityRef {
                class: *class,
                key: *key,
            },
            EntityOp::Invoke(inv) => inv.target,
        }
    }

    /// Approximate wire size in bytes.
    pub fn approx_size(&self) -> usize {
        match self {
            EntityOp::Create { class, key, init } => {
                16 + class.len()
                    + key.len()
                    + init
                        .iter()
                        .map(|(k, v)| k.len() + v.approx_size())
                        .sum::<usize>()
            }
            EntityOp::Invoke(inv) => inv.approx_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_invocation_shape() {
        let inv = Invocation::root(
            RequestId(7),
            EntityRef::new("User", "alice"),
            "buy_item",
            vec![Value::Int(2)],
        );
        assert_eq!(inv.stack.len(), 0);
        assert!(matches!(inv.kind, InvocationKind::Start { ref args } if args.len() == 1));
        assert_eq!(inv.request.to_string(), "req7");
    }

    #[test]
    fn approx_size_grows_with_stack_and_env() {
        let mut inv = Invocation::root(
            RequestId(1),
            EntityRef::new("User", "alice"),
            "buy_item",
            vec![Value::Int(2)],
        );
        let base = inv.approx_size();
        inv.stack.push(Frame {
            entity: EntityRef::new("User", "alice"),
            method: "buy_item".into(),
            resume: BlockId(1),
            env: Env::from([("total".to_string(), Value::Int(60))]),
            result_var: Some("ok".into()),
        });
        assert!(inv.approx_size() > base);
    }

    #[test]
    fn routing_target_for_ops() {
        let c = EntityOp::Create {
            class: "Item".into(),
            key: "laptop".into(),
            init: vec![],
        };
        assert_eq!(c.routing_target(), EntityRef::new("Item", "laptop"));
        let i = EntityOp::Invoke(Invocation::root(
            RequestId(1),
            EntityRef::new("User", "u"),
            "m",
            vec![],
        ));
        assert_eq!(i.routing_target(), EntityRef::new("User", "u"));
    }
}
