//! The enriched stateful dataflow graph — the paper's IR (§2.5).
//!
//! "Each Python class translates to an operator (also called a vertex) in
//! the dataflow graph" (§2.3). After static analysis "each dataflow operator
//! is enriched with the entity/method names that it can run, their
//! input/return types, as well as their method body" — here, the
//! [`CompiledClass`] with its split [`CompiledMethod`]s and state machines.

use serde::{Deserialize, Serialize};

use se_lang::{ClassName, EntityClass, LangError, Symbol};

use crate::block::CompiledMethod;
use crate::machine::StateMachine;

/// Index of an operator in the dataflow graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OperatorId(pub usize);

/// A compiled entity class: the original class definition enriched with the
/// split methods and their state machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledClass {
    /// The source class (attributes, key, original bodies).
    pub class: EntityClass,
    /// Compiled (split) methods, one per source method.
    pub methods: Vec<CompiledMethod>,
    /// State machines, parallel to `methods`.
    pub machines: Vec<StateMachine>,
}

impl CompiledClass {
    /// Class name.
    pub fn name(&self) -> ClassName {
        self.class.name
    }

    /// Looks up a compiled method by name.
    pub fn method(&self, name: impl Into<Symbol>) -> Option<&CompiledMethod> {
        let name = name.into();
        self.methods.iter().find(|m| m.name == name)
    }

    /// Looks up a state machine by method name.
    pub fn machine(&self, name: impl Into<Symbol>) -> Option<&StateMachine> {
        let name = name.into();
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| &self.machines[i])
    }
}

/// A compiled program: every class compiled, ready for graph assembly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// Compiled classes in declaration order.
    pub classes: Vec<CompiledClass>,
}

impl CompiledProgram {
    /// Looks up a compiled class by name.
    pub fn class(&self, name: impl Into<Symbol>) -> Option<&CompiledClass> {
        let name = name.into();
        self.classes.iter().find(|c| c.class.name == name)
    }

    /// Looks up a compiled class, erroring if absent.
    pub fn class_or_err(&self, name: impl Into<Symbol>) -> Result<&CompiledClass, LangError> {
        let name = name.into();
        self.class(name)
            .ok_or_else(|| LangError::UndefinedClass(name.to_string()))
    }

    /// Looks up a compiled method, erroring if absent.
    pub fn method_or_err(
        &self,
        class: impl Into<Symbol>,
        method: impl Into<Symbol>,
    ) -> Result<&CompiledMethod, LangError> {
        let (class, method) = (class.into(), method.into());
        self.class_or_err(class)?
            .method(method)
            .ok_or_else(|| LangError::UndefinedMethod {
                class: class.to_string(),
                method: method.to_string(),
            })
    }

    /// Total number of split-function blocks across the program.
    pub fn total_blocks(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.blocks.len())
            .sum()
    }
}

/// A node of the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRef {
    /// The ingress router: partitions incoming events by entity key.
    Ingress,
    /// The egress router: returns responses to clients or loops
    /// continuations back into the dataflow.
    Egress,
    /// A stateful entity operator.
    Operator(OperatorId),
}

/// Why an edge exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Client events entering the dataflow.
    Ingress,
    /// Responses leaving the dataflow.
    Egress,
    /// Entity-to-entity method call discovered by call-graph analysis.
    Call {
        /// Caller method (`Class.method` at the source operator).
        caller: String,
        /// Callee method at the destination operator.
        callee: String,
    },
    /// Feedback edge re-inserting continuation events (the Kafka loopback on
    /// engines without cyclic dataflows, or an internal cycle on StateFlow).
    Loopback,
}

/// A directed edge of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Source node.
    pub from: NodeRef,
    /// Destination node.
    pub to: NodeRef,
    /// Edge label.
    pub kind: EdgeKind,
}

/// Deployment descriptor of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSpec {
    /// Operator id (index into [`DataflowGraph::operators`]).
    pub id: OperatorId,
    /// Entity class this operator hosts.
    pub class_name: ClassName,
    /// Number of parallel partitions.
    pub parallelism: usize,
}

/// The full IR: compiled classes plus graph topology.
///
/// "That dataflow graph can then be compiled and deployed to a variety of
/// distributed systems" — runtimes consume this structure and nothing else,
/// which is what makes applications portable across engines (§1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    /// The compiled program.
    pub program: CompiledProgram,
    /// One operator per entity class.
    pub operators: Vec<OperatorSpec>,
    /// Topology edges.
    pub edges: Vec<EdgeSpec>,
    /// Program version: 1 for an initial deploy, incremented by each
    /// incremental redeploy (see `se_compiler::compile_upgrade`).
    pub version: u64,
}

impl DataflowGraph {
    /// The operator hosting `class`, if any.
    pub fn operator_for(&self, class: impl Into<Symbol>) -> Option<&OperatorSpec> {
        let class = class.into();
        self.operators.iter().find(|o| o.class_name == class)
    }

    /// Graphviz rendering of the logical dataflow (Figure 2 of the paper).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph dataflow {{");
        let _ = writeln!(out, "  rankdir=LR; node [fontname=monospace];");
        let _ = writeln!(out, "  ingress [shape=cds, label=\"ingress router\"];");
        let _ = writeln!(out, "  egress [shape=cds, label=\"egress router\"];");
        for op in &self.operators {
            let methods = self
                .program
                .class(op.class_name)
                .map(|c| {
                    c.methods
                        .iter()
                        .map(|m| format!("{}({} blocks)", m.name, m.blocks.len()))
                        .collect::<Vec<_>>()
                        .join("\\n")
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  op{} [shape=record, label=\"{{{} x{}|{}}}\"];",
                op.id.0, op.class_name, op.parallelism, methods
            );
        }
        let name = |n: &NodeRef| match n {
            NodeRef::Ingress => "ingress".to_string(),
            NodeRef::Egress => "egress".to_string(),
            NodeRef::Operator(id) => format!("op{}", id.0),
        };
        for e in &self.edges {
            let style = match &e.kind {
                EdgeKind::Call { callee, .. } => format!(" [label=\"{callee}\", style=dashed]"),
                EdgeKind::Loopback => " [style=dotted, label=\"loopback\"]".to_string(),
                _ => String::new(),
            };
            let _ = writeln!(out, "  {} -> {}{};", name(&e.from), name(&e.to), style);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockId, Terminator};
    use se_lang::builder::*;
    use se_lang::{Type, Value};

    fn tiny_graph() -> DataflowGraph {
        let class = se_lang::builder::ClassBuilder::new("Counter")
            .attr_default("id", Type::Str, Value::Str(String::new()))
            .attr_default("n", Type::Int, Value::Int(0))
            .key("id")
            .build();
        let method = CompiledMethod {
            name: "get".into(),
            params: vec![],
            ret: Type::Int,
            transactional: false,
            blocks: vec![Block {
                id: BlockId(0),
                params: vec![],
                stmts: vec![],
                terminator: Terminator::Return(attr("n")),
            }],
            entry: BlockId(0),
        };
        let machine = StateMachine::from_method(&method);
        let compiled = CompiledClass {
            class,
            methods: vec![method],
            machines: vec![machine],
        };
        DataflowGraph {
            program: CompiledProgram {
                classes: vec![compiled],
            },
            version: 1,
            operators: vec![OperatorSpec {
                id: OperatorId(0),
                class_name: "Counter".into(),
                parallelism: 2,
            }],
            edges: vec![
                EdgeSpec {
                    from: NodeRef::Ingress,
                    to: NodeRef::Operator(OperatorId(0)),
                    kind: EdgeKind::Ingress,
                },
                EdgeSpec {
                    from: NodeRef::Operator(OperatorId(0)),
                    to: NodeRef::Egress,
                    kind: EdgeKind::Egress,
                },
            ],
        }
    }

    #[test]
    fn lookups() {
        let g = tiny_graph();
        assert!(g.operator_for("Counter").is_some());
        assert!(g.operator_for("Nope").is_none());
        assert!(g.program.method_or_err("Counter", "get").is_ok());
        assert!(g.program.method_or_err("Counter", "missing").is_err());
        assert!(g.program.method_or_err("Nope", "get").is_err());
        assert_eq!(g.program.total_blocks(), 1);
    }

    #[test]
    fn dot_render() {
        let dot = tiny_graph().to_dot();
        assert!(dot.contains("ingress -> op0"));
        assert!(dot.contains("Counter x2"));
    }
}
