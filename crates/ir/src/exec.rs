//! Execution of split methods: the engine-independent core both runtimes
//! share.
//!
//! [`run_from_block`] executes a method's CFG from a given block until it
//! either returns or suspends on a remote call. [`process_invocation`] wraps
//! that with the event-level protocol: building environments from
//! [`InvocationKind`], pushing/popping continuation [`Frame`]s, and
//! producing the next event to route. Runtimes differ only in *how* they
//! transport the produced events (broker round trips vs. internal channels)
//! and in their consistency protocol — exactly the paper's claim that the
//! choice of runtime is independent of the application layer.

use se_lang::interp::{DenyRemoteCalls, Flow, Interpreter};
use se_lang::{ClassName, EntityState, Env, LangError, Symbol, Value};
use serde::{Deserialize, Serialize};

use crate::block::{BlockId, CompiledMethod, Terminator};
use crate::event::{Frame, Invocation, InvocationKind, Response};
use crate::graph::CompiledProgram;

/// Which engine-independent execution backend runs split method bodies.
///
/// Both engines (`se-statefun`, `se-stateflow`) expose this as a config
/// knob; the environment variable `SE_EXEC_BACKEND` (`interp` | `vm`)
/// overrides the default so a whole test/bench run can be flipped without
/// touching code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecBackend {
    /// Tree-walk the block statements/terminators with the
    /// [`se_lang::Interpreter`] — the reference semantics.
    #[default]
    Interp,
    /// Execute bodies pre-compiled to `se-vm` register bytecode. Compiled
    /// once at deploy time; byte-identical effects to [`ExecBackend::Interp`].
    Vm,
}

impl ExecBackend {
    /// Reads the `SE_EXEC_BACKEND` override (case-insensitive), falling
    /// back to `default` when the variable is unset. An unrecognized value
    /// also falls back, but warns on stderr once per process — a typo must
    /// not silently void a "whole suite on the VM backend" run.
    pub fn from_env_or(default: ExecBackend) -> ExecBackend {
        match std::env::var("SE_EXEC_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("vm") => ExecBackend::Vm,
            Ok(v) if v.eq_ignore_ascii_case("interp") => ExecBackend::Interp,
            Ok(other) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring unrecognized SE_EXEC_BACKEND={other:?} \
                         (expected \"interp\" or \"vm\")"
                    );
                });
                default
            }
            Err(_) => default,
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Interp => write!(f, "interp"),
            ExecBackend::Vm => write!(f, "vm"),
        }
    }
}

/// One method activation, as handed to a [`BodyRunner`].
///
/// Built by the invocation-event protocol from [`InvocationKind`]; the
/// runner owns turning it into whatever activation record it executes
/// against (an environment map for the interpreter, a register file for the
/// VM) — which is what lets the VM skip building a name-keyed map per hop.
#[derive(Debug, Clone, PartialEq)]
pub enum Activation {
    /// A fresh call with evaluated positional arguments. The protocol has
    /// already checked arity against the method signature.
    Start {
        /// Argument values, positionally matching the parameters.
        args: Vec<Value>,
    },
    /// Resumption of a suspended method.
    Resume {
        /// Block to resume at.
        block: BlockId,
        /// The saved (pruned) continuation environment.
        env: Env,
        /// The remote call's return value.
        result: Value,
        /// Variable to bind `result` to, if used.
        result_var: Option<Symbol>,
    },
}

/// Why body execution stopped — the runner-level analogue of
/// [`BlockOutcome`] that also carries the pruned continuation environment on
/// suspension.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyOutcome {
    /// The method returned a value.
    Return(Value),
    /// The method suspended on a remote call.
    Call {
        /// Callee entity.
        target: se_lang::EntityRef,
        /// Callee method.
        method: Symbol,
        /// Evaluated arguments.
        args: Vec<Value>,
        /// Variable receiving the return value.
        result_var: Option<Symbol>,
        /// Block to resume at.
        resume: BlockId,
        /// Exactly the resume block's live-ins that are defined at the
        /// suspension point — the environment that travels in the event.
        saved_env: Env,
    },
}

/// Executes the body of one split method between suspension points.
///
/// This is the seam between the invocation-event protocol (frames, stacks,
/// arity checks — shared by every runtime) and the machinery that actually
/// runs straight-line code. [`InterpBody`] tree-walks the AST; the `se-vm`
/// crate provides a bytecode VM implementation. Both must produce
/// byte-identical return values, state effects and suspension frames.
pub trait BodyRunner: Send + Sync {
    /// Runs one activation of `method` of `class` until it returns or
    /// suspends on a remote call.
    fn run_body(
        &self,
        class: ClassName,
        method: &CompiledMethod,
        activation: Activation,
        state: &mut EntityState,
    ) -> Result<BodyOutcome, LangError>;
}

/// The reference [`BodyRunner`]: tree-walking interpretation via
/// [`run_from_block`].
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpBody;

impl BodyRunner for InterpBody {
    fn run_body(
        &self,
        _class: ClassName,
        method: &CompiledMethod,
        activation: Activation,
        state: &mut EntityState,
    ) -> Result<BodyOutcome, LangError> {
        let (mut env, start) = match activation {
            Activation::Start { args } => {
                let env: Env = method.params.iter().map(|(n, _)| *n).zip(args).collect();
                (env, method.entry)
            }
            Activation::Resume {
                block,
                mut env,
                result,
                result_var,
            } => {
                if let Some(var) = result_var {
                    env.insert(var, result);
                }
                (env, block)
            }
        };
        match run_from_block(method, start, &mut env, state)? {
            BlockOutcome::Return(v) => Ok(BodyOutcome::Return(v)),
            BlockOutcome::Call {
                target,
                method,
                args,
                result_var,
                resume,
            } => Ok(BodyOutcome::Call {
                target,
                method,
                args,
                result_var,
                resume,
                saved_env: env,
            }),
        }
    }
}

/// Why block execution stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockOutcome {
    /// The method returned a value.
    Return(Value),
    /// The method suspended on a remote call.
    Call {
        /// Callee entity.
        target: se_lang::EntityRef,
        /// Callee method.
        method: Symbol,
        /// Evaluated arguments.
        args: Vec<Value>,
        /// Variable receiving the return value.
        result_var: Option<Symbol>,
        /// Block to resume at.
        resume: BlockId,
    },
}

/// Executes `method` starting at `start` until return or suspension.
///
/// Same-entity transitions (`Jump`, `Branch`) are followed locally — only
/// remote calls hop through the dataflow. On suspension the environment is
/// pruned to the resume block's live-ins, mirroring the paper's split
/// functions that pass along only referenced variables.
pub fn run_from_block(
    method: &CompiledMethod,
    start: BlockId,
    env: &mut Env,
    state: &mut EntityState,
) -> Result<BlockOutcome, LangError> {
    let mut interp = Interpreter::new();
    let mut cur = start;
    loop {
        let block = method.block(cur);
        match interp.exec_stmts(&block.stmts, env, state, &mut DenyRemoteCalls)? {
            Flow::Normal => {}
            Flow::Return(v) => return Ok(BlockOutcome::Return(v)),
        }
        match &block.terminator {
            Terminator::Return(e) => {
                let v = interp.eval(e, env, state, &mut DenyRemoteCalls)?;
                return Ok(BlockOutcome::Return(v));
            }
            Terminator::Jump(next) => cur = *next,
            Terminator::Branch {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = interp.eval(cond, env, state, &mut DenyRemoteCalls)?;
                cur = if c.truthy() { *then_blk } else { *else_blk };
            }
            Terminator::RemoteCall {
                target,
                method: callee,
                args,
                result_var,
                resume,
            } => {
                let target_val = interp.eval(target, env, state, &mut DenyRemoteCalls)?;
                let target_ref = *target_val.as_ref()?;
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(interp.eval(a, env, state, &mut DenyRemoteCalls)?);
                }
                // Prune the saved environment to the continuation's live-ins.
                let live = &method.block(*resume).params;
                env.retain(|k, _| live.contains(k));
                return Ok(BlockOutcome::Call {
                    target: target_ref,
                    method: *callee,
                    args: arg_vals,
                    result_var: *result_var,
                    resume: *resume,
                });
            }
        }
    }
}

/// What an operator does with the result of processing one invocation event.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEffect {
    /// Route this follow-up invocation onward (a remote call, or the
    /// resumption of a suspended caller).
    Emit(Invocation),
    /// The root request finished; deliver to the egress router.
    Respond(Response),
}

/// Processes one invocation event against the target entity's state.
///
/// This is the body of the paper's stateful operator: "the system
/// reconstructs the object using the operator's code and the function's
/// state and executes the function" (§2.3). Errors abort the whole chain and
/// are delivered to the egress as a failed [`Response`].
pub fn process_invocation(
    program: &CompiledProgram,
    inv: Invocation,
    state: &mut EntityState,
) -> StepEffect {
    process_invocation_with(program, &InterpBody, inv, state)
}

/// [`process_invocation`] parameterized by the [`BodyRunner`] that executes
/// block bodies — the hook through which the `se-vm` bytecode backend plugs
/// into every runtime without touching the event protocol.
pub fn process_invocation_with(
    program: &CompiledProgram,
    runner: &dyn BodyRunner,
    inv: Invocation,
    state: &mut EntityState,
) -> StepEffect {
    // Copy the request id up front so the error path needs no clone of the
    // whole event (frames and environments included).
    let request = inv.request;
    match process_inner(program, runner, inv, state) {
        Ok(effect) => effect,
        Err(e) => StepEffect::Respond(Response {
            request,
            result: Err(e),
        }),
    }
}

fn process_inner(
    program: &CompiledProgram,
    runner: &dyn BodyRunner,
    inv: Invocation,
    state: &mut EntityState,
) -> Result<StepEffect, LangError> {
    let method = program.method_or_err(inv.target.class, inv.method)?;
    let activation = match inv.kind {
        InvocationKind::Start { args } => {
            if args.len() != method.params.len() {
                return Err(LangError::ArityMismatch {
                    method: format!("{}.{}", inv.target.class, inv.method),
                    expected: method.params.len(),
                    actual: args.len(),
                });
            }
            Activation::Start { args }
        }
        InvocationKind::Resume {
            block,
            env,
            result,
            result_var,
        } => Activation::Resume {
            block,
            env,
            result,
            result_var,
        },
    };

    match runner.run_body(inv.target.class, method, activation, state)? {
        BodyOutcome::Return(value) => {
            let mut stack = inv.stack;
            match stack.pop() {
                None => Ok(StepEffect::Respond(Response {
                    request: inv.request,
                    result: Ok(value),
                })),
                Some(frame) => Ok(StepEffect::Emit(Invocation {
                    request: inv.request,
                    target: frame.entity,
                    method: frame.method,
                    kind: InvocationKind::Resume {
                        block: frame.resume,
                        env: frame.env,
                        result: value,
                        result_var: frame.result_var,
                    },
                    stack,
                    version: inv.version,
                })),
            }
        }
        BodyOutcome::Call {
            target,
            method: callee,
            args,
            result_var,
            resume,
            saved_env,
        } => {
            let mut stack = inv.stack;
            stack.push(Frame {
                entity: inv.target,
                method: inv.method,
                resume,
                env: saved_env,
                result_var,
            });
            Ok(StepEffect::Emit(Invocation {
                request: inv.request,
                target,
                method: callee,
                kind: InvocationKind::Start { args },
                stack,
                version: inv.version,
            }))
        }
    }
}

/// Drives a whole invocation chain to completion against a state-lookup
/// closure, hopping between entities synchronously.
///
/// This is the reference semantics used by tests and by the Aria execute
/// phase (which runs a transaction's chain against snapshot state): route
/// each emitted event to its target's state and continue until a response.
pub fn drive_chain(
    program: &CompiledProgram,
    root: Invocation,
    state_of: impl FnMut(&se_lang::EntityRef) -> Result<EntityState, LangError>,
    store_back: impl FnMut(&se_lang::EntityRef, EntityState),
    max_hops: usize,
) -> Response {
    drive_chain_with(program, &InterpBody, root, state_of, store_back, max_hops)
}

/// [`drive_chain`] parameterized by the [`BodyRunner`] executing bodies.
pub fn drive_chain_with(
    program: &CompiledProgram,
    runner: &dyn BodyRunner,
    root: Invocation,
    mut state_of: impl FnMut(&se_lang::EntityRef) -> Result<EntityState, LangError>,
    mut store_back: impl FnMut(&se_lang::EntityRef, EntityState),
    max_hops: usize,
) -> Response {
    let request = root.request;
    let mut current = root;
    for _ in 0..max_hops {
        let target = current.target;
        let mut state = match state_of(&target) {
            Ok(s) => s,
            Err(e) => {
                return Response {
                    request,
                    result: Err(e),
                }
            }
        };
        let effect = process_invocation_with(program, runner, current, &mut state);
        store_back(&target, state);
        match effect {
            StepEffect::Respond(r) => return r,
            StepEffect::Emit(next) => current = next,
        }
    }
    Response {
        request,
        result: Err(LangError::runtime(format!(
            "invocation chain exceeded {max_hops} hops"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::event::RequestId;
    use crate::graph::{CompiledClass, CompiledProgram};
    use crate::machine::StateMachine;
    use se_lang::builder::*;
    use se_lang::{EntityRef, Type, Value};

    /// Hand-compiled two-class program: `A.double_price(item)` calls
    /// `B.price()` and returns twice the result.
    fn hand_program() -> CompiledProgram {
        let b_class = ClassBuilder::new("B")
            .attr_default("id", Type::Str, Value::Str(String::new()))
            .attr_default("price", Type::Int, Value::Int(21))
            .key("id")
            .build();
        let b_price = CompiledMethod {
            name: "price".into(),
            params: vec![],
            ret: Type::Int,
            transactional: false,
            blocks: vec![Block {
                id: BlockId(0),
                params: vec![],
                stmts: vec![],
                terminator: Terminator::Return(attr("price")),
            }],
            entry: BlockId(0),
        };

        let a_class = ClassBuilder::new("A")
            .attr_default("id", Type::Str, Value::Str(String::new()))
            .key("id")
            .build();
        let a_double = CompiledMethod {
            name: "double_price".into(),
            params: vec![("item".into(), Type::entity("B"))],
            ret: Type::Int,
            transactional: false,
            blocks: vec![
                Block {
                    id: BlockId(0),
                    params: vec!["item".into()],
                    stmts: vec![],
                    terminator: Terminator::RemoteCall {
                        target: var("item"),
                        method: "price".into(),
                        args: vec![],
                        result_var: Some("p".into()),
                        resume: BlockId(1),
                    },
                },
                Block {
                    id: BlockId(1),
                    params: vec!["p".into()],
                    stmts: vec![],
                    terminator: Terminator::Return(mul(int(2), var("p"))),
                },
            ],
            entry: BlockId(0),
        };

        let mk = |class, methods: Vec<CompiledMethod>| {
            let machines = methods.iter().map(StateMachine::from_method).collect();
            CompiledClass {
                class,
                methods,
                machines,
            }
        };
        CompiledProgram {
            classes: vec![mk(a_class, vec![a_double]), mk(b_class, vec![b_price])],
        }
    }

    #[test]
    fn start_suspends_and_resume_completes() {
        let p = hand_program();
        let a = EntityRef::new("A", "a1");
        let b = EntityRef::new("B", "b1");
        let root = Invocation::root(RequestId(1), a, "double_price", vec![Value::Ref(b)]);

        let mut a_state = p.class("A").unwrap().class.initial_state("a1", []);
        let effect = process_invocation(&p, root, &mut a_state);
        let StepEffect::Emit(call_event) = effect else {
            panic!("expected Emit")
        };
        assert_eq!(call_event.target, b);
        assert_eq!(call_event.method, "price");
        assert_eq!(call_event.stack.len(), 1);
        // The frame's env was pruned to the resume block's live-ins: only `p`
        // is live, and `p` is the result var, so nothing else is carried.
        assert!(call_event.stack[0].env.is_empty());

        let mut b_state = p.class("B").unwrap().class.initial_state("b1", []);
        let effect = process_invocation(&p, call_event, &mut b_state);
        let StepEffect::Emit(resume_event) = effect else {
            panic!("expected Emit")
        };
        assert_eq!(resume_event.target, a);
        assert!(matches!(
            resume_event.kind,
            InvocationKind::Resume {
                result: Value::Int(21),
                ..
            }
        ));

        let effect = process_invocation(&p, resume_event, &mut a_state);
        let StepEffect::Respond(resp) = effect else {
            panic!("expected Respond")
        };
        assert_eq!(resp.result.unwrap(), Value::Int(42));
    }

    #[test]
    fn arity_error_responds() {
        let p = hand_program();
        let a = EntityRef::new("A", "a1");
        let root = Invocation::root(RequestId(2), a, "double_price", vec![]);
        let mut st = p.class("A").unwrap().class.initial_state("a1", []);
        let StepEffect::Respond(resp) = process_invocation(&p, root, &mut st) else {
            panic!("expected Respond")
        };
        assert!(matches!(resp.result, Err(LangError::ArityMismatch { .. })));
    }

    #[test]
    fn drive_chain_end_to_end() {
        let p = hand_program();
        let a = EntityRef::new("A", "a1");
        let b = EntityRef::new("B", "b1");
        let mut store = std::collections::HashMap::new();
        store.insert(a, p.class("A").unwrap().class.initial_state("a1", []));
        store.insert(b, p.class("B").unwrap().class.initial_state("b1", []));

        let root = Invocation::root(RequestId(3), a, "double_price", vec![Value::Ref(b)]);
        let store_cell = std::cell::RefCell::new(store);
        let resp = drive_chain(
            &p,
            root,
            |r| {
                store_cell
                    .borrow()
                    .get(r)
                    .cloned()
                    .ok_or_else(|| LangError::runtime(format!("no entity {r}")))
            },
            |r, s| {
                store_cell.borrow_mut().insert(*r, s);
            },
            16,
        );
        assert_eq!(resp.result.unwrap(), Value::Int(42));
    }

    #[test]
    fn drive_chain_hop_limit() {
        let p = hand_program();
        let a = EntityRef::new("A", "a1");
        let b = EntityRef::new("B", "b1");
        let root = Invocation::root(RequestId(4), a, "double_price", vec![Value::Ref(b)]);
        let p2 = p.clone();
        let resp = drive_chain(
            &p2,
            root,
            |r| Ok(p.class(r.class).unwrap().class.initial_state(r.key, [])),
            |_, _| {},
            1, // too few hops for the 3-hop chain
        );
        assert!(resp.result.unwrap_err().to_string().contains("exceeded"));
    }
}
