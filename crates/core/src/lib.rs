//! # se-core — stateful entities, end to end
//!
//! The public facade of the repository: author entity programs with the
//! [`builder`] DSL, [`compile`] them into the stateful dataflow IR, and
//! [`deploy`] the IR unchanged on any supported engine — the portability
//! claim at the heart of the paper ("the choice of a runtime system is
//! completely independent of the application layer", §1).
//!
//! ```
//! use se_core::prelude::*;
//!
//! let program = se_core::programs::figure1_program();
//! let rt = se_core::deploy(&program, RuntimeChoice::Local).unwrap();
//! let user = rt.create("User", "alice", vec![("balance".into(), Value::Int(100))]).unwrap();
//! let item = rt.create("Item", "laptop", vec![
//!     ("price".into(), Value::Int(30)),
//!     ("stock".into(), Value::Int(5)),
//! ]).unwrap();
//! let ok = rt.call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)]).unwrap();
//! assert_eq!(ok, Value::Bool(true));
//! ```
//!
//! Four environment knobs flip a whole run without touching code:
//! `SE_EXEC_BACKEND` (`interp` | `vm`) selects the body-execution backend on
//! every engine, `SE_PIPELINE_DEPTH` (positive integer, default 1) selects
//! how many Aria batches the StateFlow coordinator keeps in flight
//! ([`pipeline_depth_from_env_or`]), `SE_EXEC_THREADS` (positive integer,
//! default 1) sizes each StateFlow worker's intra-partition execution pool
//! ([`exec_threads_from_env_or`]), and `SE_DURABILITY` (`off` | `wal`,
//! default `off`) puts a per-partition write-ahead log and incremental
//! snapshots under StateFlow state ([`durability_mode_from_env_or`]).

#![warn(missing_docs)]

pub mod local_runtime;

use se_lang::{LangError, Program};

pub use local_runtime::LocalRuntime;
pub use se_aria::{CommitRule, FallbackPolicy};
pub use se_chaos::{
    check_history, check_statefun_history, serial_order, ChaosPlan, CheckError, CheckSummary,
    DiskFault, DiskFaultKind, FaultScript, FsyncFaultAction, History, ScriptConfig, SerialOp,
};
pub use se_compiler::{compile, compile_with, stats, CompileOptions, CompileStats};
pub use se_dataflow::{
    DurableOptions, DurableStore, EntityRuntime, FsyncPolicy, NetConfig, ResponseWaiter,
};
pub use se_ir::{DataflowGraph, ExecBackend, StateMachine};
pub use se_lang::{builder, programs, typecheck, EntityRef, Type, Value};
pub use se_stateflow::{
    default_workers, durability_mode_from_env_or, exec_threads_from_env_or,
    pipeline_depth_from_env_or, DurabilityConfig, DurabilityMode, StateflowConfig,
    StateflowRuntime,
};
pub use se_statefun::{CheckpointMode, StatefunConfig, StatefunRuntime};
pub use se_vm::VmProgram;

/// Everything an application author needs.
pub mod prelude {
    pub use se_dataflow::EntityRuntime;
    pub use se_lang::builder::*;
    pub use se_lang::{EntityRef, Program, Type, Value};

    pub use crate::{deploy, RuntimeChoice};
}

/// Which engine to deploy on.
pub enum RuntimeChoice {
    /// Synchronous single-process execution (development, tests, oracles).
    Local,
    /// The Flink-StateFun-style runtime (broker round trips, remote
    /// function runtime, no transactions).
    Statefun(StatefunConfig),
    /// The StateFlow transactional dataflow runtime.
    Stateflow(StateflowConfig),
}

/// Compiles `program` and deploys it on the chosen engine.
///
/// The same compiled [`DataflowGraph`] feeds every engine — switching
/// engines never touches application code.
pub fn deploy(
    program: &Program,
    choice: RuntimeChoice,
) -> Result<Box<dyn EntityRuntime>, Vec<LangError>> {
    Ok(match choice {
        RuntimeChoice::Local => Box::new(LocalRuntime::deploy(program)?),
        RuntimeChoice::Statefun(cfg) => {
            let graph = compile(program)?;
            Box::new(StatefunRuntime::deploy(graph, cfg))
        }
        RuntimeChoice::Stateflow(cfg) => {
            let graph = compile(program)?;
            Box::new(StateflowRuntime::deploy(graph, cfg))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_lang::Value;

    /// The portability test: the same program, unchanged, on all three
    /// engines, producing identical results.
    #[test]
    fn same_program_all_engines_same_results() {
        let program = se_lang::programs::figure1_program();
        for choice in [
            RuntimeChoice::Local,
            RuntimeChoice::Statefun(StatefunConfig::fast_test(2)),
            RuntimeChoice::Stateflow(StateflowConfig::fast_test(2)),
        ] {
            let rt = deploy(&program, choice).unwrap();
            let user = rt
                .create("User", "u", vec![("balance".into(), Value::Int(100))])
                .unwrap();
            let item = rt
                .create(
                    "Item",
                    "i",
                    vec![
                        ("price".into(), Value::Int(30)),
                        ("stock".into(), Value::Int(5)),
                    ],
                )
                .unwrap();
            let ok = rt
                .call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
                .unwrap();
            assert_eq!(ok, Value::Bool(true), "engine {}", rt.name());
            assert_eq!(
                rt.call(user, "balance", vec![]).unwrap(),
                Value::Int(40),
                "engine {}",
                rt.name()
            );
            rt.shutdown();
        }
    }
}
