//! The Local runtime behind the common [`EntityRuntime`] API.
//!
//! "A StateFlow dataflow graph can execute all its components in a local
//! environment. The only difference is that the state is kept in a local
//! HashMap data structure… Local execution allows developers to debug, unit
//! test, and validate a StateFlow program as they would do for an arbitrary
//! application. Afterward, they can simply deploy the program to one of the
//! supported runtime systems." (§3)

use parking_lot::Mutex;

use se_dataflow::{EntityRuntime, ResponseWaiter};
use se_lang::{EntityRef, LangError, LocalExecutor, LocalStore, Program, Value};

/// Synchronous, single-process execution of an entity program.
pub struct LocalRuntime {
    program: Program,
    store: Mutex<LocalStore>,
}

impl LocalRuntime {
    /// Deploys a program locally. The program is type-checked first so the
    /// Local runtime rejects exactly what the distributed runtimes reject.
    pub fn deploy(program: &Program) -> Result<Self, Vec<LangError>> {
        se_lang::typecheck::check_program(program)?;
        Ok(Self {
            program: program.clone(),
            store: Mutex::new(LocalStore::new()),
        })
    }

    /// Runs `f` with read access to the underlying store (tests, oracles).
    pub fn with_store<R>(&self, f: impl FnOnce(&LocalStore) -> R) -> R {
        f(&self.store.lock())
    }
}

impl EntityRuntime for LocalRuntime {
    fn name(&self) -> &str {
        "local"
    }

    fn create(
        &self,
        class: &str,
        key: &str,
        init: Vec<(String, Value)>,
    ) -> Result<EntityRef, LangError> {
        self.store.lock().create(&self.program, class, key, init)
    }

    fn call_async(&self, target: EntityRef, method: &str, args: Vec<Value>) -> ResponseWaiter {
        let mut guard = self.store.lock();
        let store = std::mem::take(&mut *guard);
        let mut exec = LocalExecutor::with_store(&self.program, store);
        let result = exec.invoke(&target, method, args);
        *guard = exec.into_store();
        ResponseWaiter::ready(result)
    }

    fn supports_transactions(&self) -> bool {
        // Synchronous depth-first execution is trivially serial.
        true
    }

    fn shutdown(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_runtime_runs_figure1() {
        let program = se_lang::programs::figure1_program();
        let rt = LocalRuntime::deploy(&program).unwrap();
        let user = rt
            .create("User", "alice", vec![("balance".into(), Value::Int(100))])
            .unwrap();
        let item = rt
            .create(
                "Item",
                "laptop",
                vec![
                    ("price".into(), Value::Int(30)),
                    ("stock".into(), Value::Int(5)),
                ],
            )
            .unwrap();
        let ok = rt
            .call(user, "buy_item", vec![Value::Int(2), Value::Ref(item)])
            .unwrap();
        assert_eq!(ok, Value::Bool(true));
        rt.with_store(|s| {
            assert_eq!(s.state(&user).unwrap()["balance"], Value::Int(40));
        });
    }

    #[test]
    fn rejects_ill_typed_programs() {
        let mut program = se_lang::programs::figure1_program();
        program.classes[0].key_attr = "missing".into();
        assert!(LocalRuntime::deploy(&program).is_err());
    }
}
