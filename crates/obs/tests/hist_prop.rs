//! Property: merging two histograms is indistinguishable from recording
//! the union of both sample streams into one histogram — bucket-for-bucket,
//! plus count/sum/min/max and therefore every percentile.

use proptest::prelude::*;

use se_obs::Histogram;

/// Sample values spanning every magnitude regime the bucketing handles:
/// exact low buckets, mid octaves, and the top of the u64 range.
fn arb_value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..5).prop_map(|(raw, regime)| match regime {
        0 => raw % 16,                // exact buckets
        1 => raw % 4096,              // low octaves
        2 => raw % 10_000_000,        // typical latencies (ns)
        3 => raw % (1u64 << 40),      // large
        _ => u64::MAX - (raw % 1024), // near the ceiling
    })
}

proptest! {
    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(arb_value(), 0..200),
        b in proptest::collection::vec(arb_value(), 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let union = Histogram::new();
        for &v in &a {
            ha.record(v);
            union.record(v);
        }
        for &v in &b {
            hb.record(v);
            union.record(v);
        }
        ha.merge(&hb);

        prop_assert_eq!(ha.nonzero_buckets(), union.nonzero_buckets());
        prop_assert_eq!(ha.count(), union.count());
        prop_assert_eq!(ha.sum(), union.sum());
        let (sa, su) = (ha.summary(), union.summary());
        prop_assert_eq!(sa.min, su.min);
        prop_assert_eq!(sa.max, su.max);
        prop_assert_eq!(sa.p50, su.p50);
        prop_assert_eq!(sa.p90, su.p90);
        prop_assert_eq!(sa.p99, su.p99);
    }

    #[test]
    fn merge_is_commutative_on_buckets(
        a in proptest::collection::vec(arb_value(), 0..100),
        b in proptest::collection::vec(arb_value(), 0..100),
    ) {
        let (h1a, h1b) = (Histogram::new(), Histogram::new());
        let (h2a, h2b) = (Histogram::new(), Histogram::new());
        for &v in &a {
            h1a.record(v);
            h2a.record(v);
        }
        for &v in &b {
            h1b.record(v);
            h2b.record(v);
        }
        h1a.merge(&h1b); // a ← b
        h2b.merge(&h2a); // b ← a
        prop_assert_eq!(h1a.nonzero_buckets(), h2b.nonzero_buckets());
    }
}
