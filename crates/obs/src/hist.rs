//! Log-bucketed HDR-style histogram with O(1) lock-free recording.
//!
//! Values (nanoseconds, bytes, depths — any `u64`) are binned into
//! [`SUB_BUCKETS`] sub-buckets per power of two, giving a bounded relative
//! error of `1/SUB_BUCKETS` (≈6%) at every magnitude while the whole table
//! stays a fixed 976-slot atomic array: `record` is one index computation
//! plus one `fetch_add`, with no allocation and no locking, so it is safe
//! to call from the coordinator decide loop, exec-pool workers, and the WAL
//! fsync path alike. `merge` adds another histogram bucket-wise, which is
//! exactly recording the union of both sample streams (see the property
//! test in `tests/hist_prop.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power of two.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact low values + 60 octaves × 16 sub-buckets.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index. Values below [`SUB_BUCKETS`] get exact
/// buckets; everything else shares an octave split into 16 linear slices.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let sub = ((v >> (top - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        ((top - SUB_BITS) as usize + 1) * SUB_BUCKETS + sub
    }
}

/// Smallest value that lands in bucket `idx` (inverse of [`bucket_index`]).
#[inline]
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let top = (idx / SUB_BUCKETS - 1) as u32 + SUB_BITS;
        let sub = (idx % SUB_BUCKETS) as u64;
        (1u64 << top) + (sub << (top - SUB_BITS))
    }
}

/// Largest value that lands in bucket `idx`.
#[inline]
pub fn bucket_ceil(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_floor(idx + 1) - 1
    }
}

/// Summary statistics extracted from a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median (bucket-quantized, clamped to observed min/max).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistSummary {
    /// Mean of the recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Lock-free log-bucketed histogram. All methods take `&self`; recording is
/// a single relaxed `fetch_add` per sample plus min/max maintenance.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. O(1), lock-free, callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self`, bucket-wise. Equivalent to
    /// having recorded the union of both sample streams.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..NUM_BUCKETS {
            let c = other.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank over buckets; the
    /// bucket midpoint is reported, clamped to the observed min/max so a
    /// single-sample histogram reports that sample, not a bucket edge).
    pub fn value_at(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..NUM_BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let floor = bucket_floor(i);
                let ceil = bucket_ceil(i);
                let mid = floor + (ceil - floor) / 2;
                return mid.clamp(
                    self.min.load(Ordering::Relaxed),
                    self.max.load(Ordering::Relaxed),
                );
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Snapshot of count/sum/min/max and the standard percentiles.
    pub fn summary(&self) -> HistSummary {
        let count = self.count();
        HistSummary {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.value_at(0.50),
            p90: self.value_at(0.90),
            p99: self.value_at(0.99),
        }
    }

    /// Non-empty buckets as `(bucket_floor, count)` pairs, in value order.
    /// This is the merge-stable wire representation used by the exporters.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..NUM_BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_floor(i), c))
            })
            .collect()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_invertible() {
        // Every bucket's floor maps back to that bucket, and floors are
        // strictly increasing — no gaps, no overlaps.
        let mut prev = None;
        for idx in 0..NUM_BUCKETS {
            let floor = bucket_floor(idx);
            assert_eq!(bucket_index(floor), idx, "floor of bucket {idx}");
            if let Some(p) = prev {
                assert!(floor > p, "bucket {idx} floor {floor} <= previous {p}");
                // The value just below this floor belongs to the previous bucket.
                assert_eq!(bucket_index(floor - 1), idx - 1);
            }
            prev = Some(floor);
        }
    }

    #[test]
    fn powers_of_two_open_new_octaves() {
        for top in SUB_BITS..63 {
            let v = 1u64 << top;
            let idx = bucket_index(v);
            assert_eq!(bucket_floor(idx), v, "2^{top} should start its bucket");
            assert_eq!(idx % SUB_BUCKETS, 0, "2^{top} should be sub-bucket 0");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / floor <= 1/SUB_BUCKETS for all values >= SUB_BUCKETS.
        for &v in &[16u64, 100, 1_000, 65_535, 1 << 30, u64::MAX / 3] {
            let idx = bucket_index(v);
            let width = bucket_ceil(idx) - bucket_floor(idx) + 1;
            assert!(
                width as f64 / bucket_floor(idx) as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "value {v}: width {width} floor {}",
                bucket_floor(idx)
            );
        }
    }

    #[test]
    fn max_value_fits() {
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn percentiles_track_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // Bucket quantization bounds: within one sub-bucket (~6%).
        assert!((s.p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 {}", s.p50);
        assert!((s.p99 as f64 - 990.0).abs() / 990.0 < 0.07, "p99 {}", s.p99);
    }

    #[test]
    fn single_sample_reports_itself() {
        let h = Histogram::new();
        h.record(777);
        assert_eq!(h.value_at(0.5), 777);
        assert_eq!(h.value_at(0.99), 777);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p99),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 100, 100, 4096] {
            a.record(v);
        }
        for v in [2u64, 100, 1 << 20] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 8);
        assert_eq!(a.sum(), 1 + 5 + 100 + 100 + 4096 + 2 + 100 + (1 << 20));
        let s = a.summary();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1 << 20);
    }
}
