//! Lightweight span tracing: fixed-size events in bounded per-thread rings.
//!
//! A span is a `(stage, id, start_ns, end_ns)` record — no allocation, no
//! string formatting on the hot path. Each recording thread lazily registers
//! one bounded ring with the tracer (oldest events are overwritten on
//! overflow, so a long run cannot exhaust memory) and from then on records
//! under an uncontended per-thread lock. Timestamps are nanoseconds from a
//! process-wide monotonic epoch, so spans from the coordinator, workers,
//! exec pool, and WAL threads all line up on one timeline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Nanoseconds since the process-wide monotonic epoch (first use).
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The instrumented stages. Batch-lifecycle stages carry the batch id,
/// segment stages the transaction/segment id, WAL stages the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Batch accumulation: first transaction enqueued → batch sealed.
    BatchSeal,
    /// Sealed batch executing on the workers (includes exec-pool time).
    BatchExec,
    /// Reservation aggregation + commit/abort decision on the coordinator.
    BatchDecide,
    /// Decision broadcast → all workers applied/confirmed the batch.
    BatchCommit,
    /// Exec-pool segment: spawned → picked up by a pool thread.
    SegQueueWait,
    /// Exec-pool segment: running a transaction segment.
    SegRun,
    /// WAL frame append (buffered write, excludes fsync).
    WalAppend,
    /// WAL fsync (group-commit flush).
    WalFsync,
    /// Durable epoch cut: snapshot delta + WAL mark.
    EpochCut,
    /// Backend (VM/interp) program compilation at deploy.
    VmCompile,
    /// One function invocation end-to-end (StateFun engine).
    Invoke,
    /// Live-upgrade migration pass: a worker running `__migrate__` over its
    /// owned entities at a version switch (id = the new version).
    UpgradeMigrate,
}

/// All stages, in declaration order (index = `stage as usize`).
pub const STAGES: [Stage; 12] = [
    Stage::BatchSeal,
    Stage::BatchExec,
    Stage::BatchDecide,
    Stage::BatchCommit,
    Stage::SegQueueWait,
    Stage::SegRun,
    Stage::WalAppend,
    Stage::WalFsync,
    Stage::EpochCut,
    Stage::VmCompile,
    Stage::Invoke,
    Stage::UpgradeMigrate,
];

impl Stage {
    /// Stable snake_case name used in dumps and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::BatchSeal => "batch_seal",
            Stage::BatchExec => "batch_exec",
            Stage::BatchDecide => "batch_decide",
            Stage::BatchCommit => "batch_commit",
            Stage::SegQueueWait => "seg_queue_wait",
            Stage::SegRun => "seg_run",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::EpochCut => "epoch_cut",
            Stage::VmCompile => "vm_compile",
            Stage::Invoke => "invoke",
            Stage::UpgradeMigrate => "upgrade_migrate",
        }
    }

    /// Inverse of [`Stage::as_str`].
    pub fn parse(s: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|st| st.as_str() == s)
    }
}

/// One completed span. Fixed-size and `Copy` so ring writes are a memcpy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which stage this span measured.
    pub stage: Stage,
    /// Correlation id: batch id, segment id, or epoch (stage-dependent).
    pub id: u64,
    /// Start, ns since the process monotonic epoch.
    pub start_ns: u64,
    /// End, ns since the process monotonic epoch.
    pub end_ns: u64,
    /// Small integer identifying the recording thread's ring.
    pub tid: u32,
}

impl SpanEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Bounded per-thread event buffer; overwrites oldest on overflow.
struct Ring {
    tid: u32,
    inner: Mutex<RingInner>,
}

struct RingInner {
    buf: Vec<SpanEvent>,
    next: usize,
    dropped: u64,
}

impl Ring {
    fn record(&self, cap: usize, ev: SpanEvent) {
        let mut r = self.inner.lock();
        if r.buf.len() < cap {
            r.buf.push(ev);
        } else {
            let next = r.next;
            r.buf[next] = ev;
            r.dropped += 1;
        }
        r.next = (r.next + 1) % cap.max(1);
    }
}

/// Collects spans from all threads into per-thread rings; drained at dump.
pub struct Tracer {
    /// Distinguishes tracers when several runtimes live in one process.
    id: u64,
    cap: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU32,
}

thread_local! {
    /// (tracer id, this thread's ring in that tracer); linear scan — a
    /// thread talks to one or two tracers in practice.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// Creates a tracer whose per-thread rings hold `cap` events each.
    pub fn new(cap: usize) -> Tracer {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Tracer {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            cap: cap.max(16),
            rings: Mutex::new(Vec::new()),
            next_tid: AtomicU32::new(0),
        }
    }

    fn thread_ring(&self) -> Arc<Ring> {
        THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, r)) = rings.iter().find(|(id, _)| *id == self.id) {
                return r.clone();
            }
            let ring = Arc::new(Ring {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                inner: Mutex::new(RingInner {
                    buf: Vec::new(),
                    next: 0,
                    dropped: 0,
                }),
            });
            self.rings.lock().push(ring.clone());
            rings.push((self.id, ring.clone()));
            ring
        })
    }

    /// Records one span into the calling thread's ring.
    pub fn record(&self, stage: Stage, id: u64, start_ns: u64, end_ns: u64) {
        let ring = self.thread_ring();
        let ev = SpanEvent {
            stage,
            id,
            start_ns,
            end_ns,
            tid: ring.tid,
        };
        ring.record(self.cap, ev);
    }

    /// Drains every ring into one start-time-ordered event list. Returns the
    /// events plus the number of events lost to ring overflow.
    pub fn drain(&self) -> (Vec<SpanEvent>, u64) {
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in self.rings.lock().iter() {
            let r = ring.inner.lock();
            events.extend_from_slice(&r.buf);
            dropped += r.dropped;
        }
        events.sort_by_key(|e| (e.start_ns, e.end_ns, e.tid));
        (events, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for st in STAGES {
            assert_eq!(Stage::parse(st.as_str()), Some(st));
        }
        assert_eq!(Stage::parse("nope"), None);
    }

    #[test]
    fn records_and_drains_in_time_order() {
        let t = Tracer::new(64);
        t.record(Stage::BatchExec, 2, 100, 200);
        t.record(Stage::BatchSeal, 1, 10, 90);
        let (evs, dropped) = t.drain();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].stage, Stage::BatchSeal);
        assert_eq!(evs[1].duration_ns(), 100);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::new(16);
        for i in 0..40u64 {
            t.record(Stage::SegRun, i, i, i + 1);
        }
        let (evs, dropped) = t.drain();
        assert_eq!(evs.len(), 16);
        assert_eq!(dropped, 24);
        // The newest events survive.
        assert!(evs.iter().any(|e| e.id == 39));
        assert!(!evs.iter().any(|e| e.id == 0));
    }

    #[test]
    fn threads_get_distinct_rings() {
        let t = Arc::new(Tracer::new(64));
        let t2 = t.clone();
        std::thread::spawn(move || t2.record(Stage::SegRun, 1, 1, 2))
            .join()
            .unwrap();
        t.record(Stage::SegRun, 2, 3, 4);
        let (evs, _) = t.drain();
        assert_eq!(evs.len(), 2);
        assert_ne!(evs[0].tid, evs[1].tid);
    }

    #[test]
    fn monotonic_ns_is_monotonic() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }
}
