//! Renders a dumped obs run (`metrics.json` + `trace.jsonl`) into a
//! human-readable timeline: per-batch stage waterfall, stage-latency
//! p50/p99 table, and the counter roll-up. Shared by the `obs_report` bin
//! and `chaos_explore`'s failure reports, so a red nightly is diagnosable
//! from artifacts alone.

use std::collections::BTreeMap;
use std::path::Path;

use crate::span::{SpanEvent, Stage};

/// A parsed obs run directory.
#[derive(Debug, Default)]
pub struct RunData {
    /// Run label from `metrics.json`.
    pub label: String,
    /// Mode string from `metrics.json`.
    pub mode: String,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → (count, mean_ns, p50_ns, p90_ns, p99_ns, max_ns).
    pub hists: BTreeMap<String, HistRow>,
    /// Span events from `trace.jsonl` (empty for metrics-only runs).
    pub events: Vec<SpanEvent>,
}

/// One histogram's summary as read back from `metrics.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistRow {
    /// Sample count.
    pub count: u64,
    /// Mean in nanoseconds.
    pub mean_ns: f64,
    /// Median in nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile in nanoseconds.
    pub p99_ns: u64,
    /// Maximum in nanoseconds.
    pub max_ns: u64,
}

fn get_u64(v: &serde::Json, key: &str) -> u64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64
}

impl RunData {
    /// Loads `metrics.json` (required) and `trace.jsonl` (optional) from a
    /// run directory produced by [`crate::Obs::dump`].
    pub fn load(dir: &Path) -> Result<RunData, String> {
        let metrics_path = dir.join("metrics.json");
        let text = std::fs::read_to_string(&metrics_path)
            .map_err(|e| format!("read {}: {e}", metrics_path.display()))?;
        let mut run = RunData::parse_metrics(&text)?;
        let trace_path = dir.join("trace.jsonl");
        if let Ok(trace) = std::fs::read_to_string(&trace_path) {
            run.events = RunData::parse_trace(&trace)?;
        }
        Ok(run)
    }

    /// Parses a `metrics.json` document.
    pub fn parse_metrics(text: &str) -> Result<RunData, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("metrics.json: {e}"))?;
        let mut run = RunData {
            label: v
                .get("label")
                .and_then(|x| x.as_str())
                .unwrap_or("")
                .to_string(),
            mode: v
                .get("mode")
                .and_then(|x| x.as_str())
                .unwrap_or("")
                .to_string(),
            ..RunData::default()
        };
        if let Some(serde::Json::Obj(entries)) = v.get("counters") {
            for (name, val) in entries {
                run.counters
                    .insert(name.clone(), val.as_f64().unwrap_or(0.0) as u64);
            }
        }
        if let Some(serde::Json::Obj(entries)) = v.get("gauges") {
            for (name, val) in entries {
                run.gauges
                    .insert(name.clone(), val.as_f64().unwrap_or(0.0) as i64);
            }
        }
        if let Some(serde::Json::Obj(entries)) = v.get("hists") {
            for (name, h) in entries {
                let count = get_u64(h, "count");
                let sum = get_u64(h, "sum");
                run.hists.insert(
                    name.clone(),
                    HistRow {
                        count,
                        mean_ns: if count == 0 {
                            0.0
                        } else {
                            sum as f64 / count as f64
                        },
                        p50_ns: get_u64(h, "p50"),
                        p90_ns: get_u64(h, "p90"),
                        p99_ns: get_u64(h, "p99"),
                        max_ns: get_u64(h, "max"),
                    },
                );
            }
        }
        Ok(run)
    }

    /// Parses a `trace.jsonl` document (one span event per line).
    pub fn parse_trace(text: &str) -> Result<Vec<SpanEvent>, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
            let stage_name = v
                .get("stage")
                .and_then(|s| s.as_str())
                .ok_or_else(|| format!("trace line {}: missing stage", i + 1))?;
            let Some(stage) = Stage::parse(stage_name) else {
                // Forward-compat: skip stages this binary doesn't know.
                continue;
            };
            events.push(SpanEvent {
                stage,
                id: get_u64(&v, "id"),
                start_ns: get_u64(&v, "start_ns"),
                end_ns: get_u64(&v, "end_ns"),
                tid: get_u64(&v, "tid") as u32,
            });
        }
        Ok(events)
    }
}

fn fmt_ns(ns: u64) -> String {
    fmt_ns_f(ns as f64)
}

fn fmt_ns_f(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The four batch-lifecycle stages, waterfall column order.
const BATCH_STAGES: [Stage; 4] = [
    Stage::BatchSeal,
    Stage::BatchExec,
    Stage::BatchDecide,
    Stage::BatchCommit,
];

/// One batch's reconstructed lifecycle (from trace events).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchLane {
    /// Batch id.
    pub id: u64,
    /// `[seal, exec, decide, commit]` as `(start_ns, end_ns)`; 0,0 = absent.
    pub stages: [(u64, u64); 4],
}

impl BatchLane {
    /// Earliest stage start (lane sort key).
    pub fn start_ns(&self) -> u64 {
        self.stages
            .iter()
            .filter(|(s, e)| *s != 0 || *e != 0)
            .map(|(s, _)| *s)
            .min()
            .unwrap_or(0)
    }

    /// Latest stage end.
    pub fn end_ns(&self) -> u64 {
        self.stages.iter().map(|(_, e)| *e).max().unwrap_or(0)
    }
}

/// Groups batch-lifecycle spans by batch id, ordered by first activity.
pub fn batch_lanes(events: &[SpanEvent]) -> Vec<BatchLane> {
    let mut lanes: BTreeMap<u64, BatchLane> = BTreeMap::new();
    for ev in events {
        let Some(col) = BATCH_STAGES.iter().position(|s| *s == ev.stage) else {
            continue;
        };
        let lane = lanes.entry(ev.id).or_insert_with(|| BatchLane {
            id: ev.id,
            ..BatchLane::default()
        });
        // A batch id appears once per run; last write wins if replayed.
        lane.stages[col] = (ev.start_ns, ev.end_ns);
    }
    let mut out: Vec<BatchLane> = lanes.into_values().collect();
    out.sort_by_key(|l| (l.start_ns(), l.id));
    out
}

/// Renders the stage-latency table (count/mean/p50/p90/p99/max per stage
/// histogram, plus any other histograms in the registry).
pub fn render_stage_table(run: &RunData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "stage", "count", "mean", "p50", "p90", "p99", "max"
    ));
    for (name, h) in &run.hists {
        if h.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            name,
            h.count,
            fmt_ns_f(h.mean_ns),
            fmt_ns(h.p50_ns),
            fmt_ns(h.p90_ns),
            fmt_ns(h.p99_ns),
            fmt_ns(h.max_ns),
        ));
    }
    out
}

/// Renders the counter/gauge roll-up.
pub fn render_counters(run: &RunData) -> String {
    let mut out = String::new();
    for (name, v) in &run.counters {
        out.push_str(&format!("{name:<32} {v}\n"));
    }
    for (name, v) in &run.gauges {
        out.push_str(&format!("{name:<32} {v} (gauge)\n"));
    }
    out
}

/// Renders the per-batch waterfall from trace events. Each batch is one
/// row; stage segments are drawn proportionally on a shared time axis.
/// `last_batches` limits to the most recent N batches (0 = all).
pub fn render_waterfall(run: &RunData, last_batches: usize, width: usize) -> String {
    let mut lanes = batch_lanes(&run.events);
    if lanes.is_empty() {
        return "(no batch-lifecycle spans in trace — run with SE_OBS=trace)\n".to_string();
    }
    if last_batches > 0 && lanes.len() > last_batches {
        lanes = lanes.split_off(lanes.len() - last_batches);
    }
    let t0 = lanes.iter().map(|l| l.start_ns()).min().unwrap_or(0);
    // Upgrade markers: every worker's migration pass for one switchover
    // shares the new version as its span id — merge them into one
    // cluster-wide interval per version, drawn on the batch axis so the
    // epoch-boundary switchover is visible between the batches it
    // separates. Markers that end before the shown window are dropped.
    let mut upgrades: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ev in &run.events {
        if ev.stage != Stage::UpgradeMigrate || ev.end_ns < t0 {
            continue;
        }
        let slot = upgrades.entry(ev.id).or_insert((ev.start_ns, ev.end_ns));
        slot.0 = slot.0.min(ev.start_ns);
        slot.1 = slot.1.max(ev.end_ns);
    }
    let t1 = lanes
        .iter()
        .map(|l| l.end_ns())
        .chain(upgrades.values().map(|(_, e)| *e))
        .max()
        .unwrap_or(t0 + 1);
    let span = (t1 - t0).max(1) as f64;
    let width = width.max(20);
    let glyphs = ['s', 'x', 'd', 'c']; // seal, exec, decide, commit
    let mut out = String::new();
    out.push_str(&format!(
        "batch waterfall — {} batches over {} (s=seal x=exec d=decide c=commit, U=migration)\n",
        lanes.len(),
        fmt_ns(t1 - t0)
    ));
    for lane in &lanes {
        let mut row = vec!['·'; width];
        for (col, (s, e)) in lane.stages.iter().enumerate() {
            if *s == 0 && *e == 0 {
                continue;
            }
            let a = (((s - t0) as f64 / span) * width as f64) as usize;
            let b = (((e - t0) as f64 / span) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                *cell = glyphs[col];
            }
        }
        let total = lane.end_ns().saturating_sub(lane.start_ns());
        out.push_str(&format!(
            "batch {:>5} |{}| {}\n",
            lane.id,
            row.iter().collect::<String>(),
            fmt_ns(total)
        ));
    }
    for (version, (s, e)) in &upgrades {
        let mut row = vec!['·'; width];
        let a = ((s.saturating_sub(t0) as f64 / span) * width as f64) as usize;
        let b = ((e.saturating_sub(t0) as f64 / span) * width as f64).ceil() as usize;
        for cell in row
            .iter_mut()
            .take(b.max(a + 1).min(width))
            .skip(a.min(width - 1))
        {
            *cell = 'U';
        }
        out.push_str(&format!(
            "upg v{:>6} |{}| {}\n",
            version,
            row.iter().collect::<String>(),
            fmt_ns(e.saturating_sub(*s))
        ));
    }
    out
}

/// Full text report: header, waterfall (if trace), stage table, counters.
pub fn render_text(run: &RunData, last_batches: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "obs run {:?} (mode {})\n\n",
        run.label,
        if run.mode.is_empty() {
            "unknown"
        } else {
            &run.mode
        }
    ));
    if !run.events.is_empty() {
        out.push_str(&render_waterfall(run, last_batches, 64));
        out.push('\n');
    }
    out.push_str(&render_stage_table(run));
    out.push('\n');
    out.push_str(&render_counters(run));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> RunData {
        let metrics = r#"{"label":"t","mode":"trace",
            "counters":{"coord.commits":10,"coord.failed":2},
            "gauges":{"coord.inflight":1},
            "hists":{"stage.batch_exec":{"count":4,"sum":4000,"min":500,
                "max":1500,"p50":900,"p90":1400,"p99":1500,"buckets":[[896,4]]}}}"#;
        let mut run = RunData::parse_metrics(metrics).unwrap();
        run.events = RunData::parse_trace(concat!(
            "{\"stage\":\"batch_seal\",\"id\":1,\"start_ns\":0,\"end_ns\":10,\"tid\":0}\n",
            "{\"stage\":\"batch_exec\",\"id\":1,\"start_ns\":10,\"end_ns\":80,\"tid\":0}\n",
            "{\"stage\":\"batch_decide\",\"id\":1,\"start_ns\":80,\"end_ns\":90,\"tid\":0}\n",
            "{\"stage\":\"batch_commit\",\"id\":1,\"start_ns\":90,\"end_ns\":100,\"tid\":0}\n",
            "{\"stage\":\"batch_exec\",\"id\":2,\"start_ns\":120,\"end_ns\":200,\"tid\":1}\n",
        ))
        .unwrap();
        run
    }

    #[test]
    fn parses_metrics_and_trace() {
        let run = sample_run();
        assert_eq!(run.counters["coord.commits"], 10);
        assert_eq!(run.gauges["coord.inflight"], 1);
        assert_eq!(run.hists["stage.batch_exec"].count, 4);
        assert_eq!(run.events.len(), 5);
    }

    #[test]
    fn lanes_group_by_batch_in_time_order() {
        let run = sample_run();
        let lanes = batch_lanes(&run.events);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].id, 1);
        assert_eq!(lanes[0].stages[0], (0, 10));
        assert_eq!(lanes[0].end_ns(), 100);
        assert_eq!(lanes[1].id, 2);
    }

    #[test]
    fn renders_without_panicking_and_mentions_batches() {
        let run = sample_run();
        let text = render_text(&run, 8);
        assert!(text.contains("batch waterfall"));
        assert!(text.contains("batch     1"));
        assert!(text.contains("stage.batch_exec"));
        assert!(text.contains("coord.commits"));
    }

    #[test]
    fn last_batches_limits_lanes() {
        let run = sample_run();
        let text = render_waterfall(&run, 1, 40);
        assert!(!text.contains("batch     1 |"));
        assert!(text.contains("batch     2 |"));
    }

    #[test]
    fn upgrade_markers_merge_workers_and_share_the_axis() {
        let mut run = sample_run();
        // Three workers' migration passes for the v2 switchover, plus a
        // marker that ended before the window (dropped when trimming).
        run.events.extend(
            RunData::parse_trace(concat!(
                "{\"stage\":\"upgrade_migrate\",\"id\":2,\"start_ns\":100,\"end_ns\":110,\"tid\":0}\n",
                "{\"stage\":\"upgrade_migrate\",\"id\":2,\"start_ns\":102,\"end_ns\":118,\"tid\":1}\n",
                "{\"stage\":\"upgrade_migrate\",\"id\":2,\"start_ns\":101,\"end_ns\":112,\"tid\":2}\n",
            ))
            .unwrap(),
        );
        let text = render_waterfall(&run, 0, 40);
        assert!(text.contains("U=migration"), "legend names the marker");
        assert!(text.contains("upg v     2 |"), "one row per version");
        assert!(text.contains('U'), "marker glyph drawn");
        assert_eq!(
            text.matches("upg v").count(),
            1,
            "per-worker spans merge into one cluster-wide row"
        );
        // 18ns merged interval (min start 100, max end 118).
        assert!(
            text.contains("| 18ns"),
            "row labelled with merged duration:\n{text}"
        );
        // Trimming to the last batch (starts at 120) drops the marker.
        let trimmed = render_waterfall(&run, 1, 40);
        assert!(
            !trimmed.contains("upg v"),
            "stale markers trimmed:\n{trimmed}"
        );
    }

    #[test]
    fn unknown_stage_lines_are_skipped() {
        let evs = RunData::parse_trace(
            "{\"stage\":\"future_thing\",\"id\":1,\"start_ns\":0,\"end_ns\":1,\"tid\":0}\n",
        )
        .unwrap();
        assert!(evs.is_empty());
    }
}
