//! # se-obs — unified observability for both engines
//!
//! One registry, one tracer, one snapshot path. The engines, the durable
//! layer, and the benches all publish through an [`Obs`] handle:
//!
//! * **Metrics** — lock-free counters/gauges plus log-bucketed HDR-style
//!   histograms ([`Histogram`]), O(1) to record from any thread.
//! * **Spans** — per-batch lifecycle (seal → exec → decide → commit),
//!   per-segment exec-pool spans (queue wait vs run), WAL spans (append,
//!   fsync, epoch cut), VM compile — fixed-size events in bounded
//!   per-thread rings with monotonic timestamps.
//! * **Exporters** — periodic JSON snapshot + end-of-run dump
//!   (`metrics.json` + `trace.jsonl`), rendered by the `obs_report` bin.
//!
//! Modes (`SE_OBS=off|metrics|trace`, see [`ObsConfig::from_env`]):
//! `off` (default) records nothing and adds one predicted branch per probe —
//! histories are byte-identical and overhead is noise; `metrics` feeds the
//! registry + stage histograms; `trace` additionally records span events.
//! Counters obtained via [`Obs::counter`] are live in every mode — they
//! replace the engines' always-on ad-hoc stats structs — but nothing is
//! written to disk unless the mode is not `off`.

#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod report;
pub mod span;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

pub use hist::{HistSummary, Histogram};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use span::{monotonic_ns, SpanEvent, Stage, Tracer, STAGES};

/// How much the observability layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// Record nothing, dump nothing. The provably-free default.
    #[default]
    Off,
    /// Counters, gauges, and stage histograms.
    Metrics,
    /// Metrics plus span events into per-thread rings.
    Trace,
}

impl ObsMode {
    /// Parses `off` / `metrics` / `trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<ObsMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ObsMode::Off),
            "metrics" => Some(ObsMode::Metrics),
            "trace" => Some(ObsMode::Trace),
            _ => None,
        }
    }

    /// Stable name, inverse of [`ObsMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Metrics => "metrics",
            ObsMode::Trace => "trace",
        }
    }
}

/// Reads `SE_OBS`, falling back to `default` (warning once on junk values,
/// matching the workspace's other env knobs).
pub fn obs_mode_from_env_or(default: ObsMode) -> ObsMode {
    match std::env::var("SE_OBS") {
        Ok(v) => match ObsMode::parse(&v) {
            Some(mode) => mode,
            None => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: SE_OBS={v:?} is not one of off|metrics|trace; \
                         using {}",
                        default.as_str()
                    );
                });
                default
            }
        },
        Err(_) => default,
    }
}

/// Observability configuration carried by both engine configs.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Recording mode; [`ObsMode::Off`] by default.
    pub mode: ObsMode,
    /// Directory that end-of-run dumps and periodic snapshots land in.
    /// Each run creates a unique subdirectory under it.
    pub dir: PathBuf,
    /// Run label used in the dump subdirectory name and `metrics.json`.
    pub label: String,
    /// Periodic `metrics.json` snapshot interval; 0 disables the thread.
    pub snapshot_every_ms: u64,
    /// Per-thread span ring capacity (events) in trace mode.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            mode: ObsMode::Off,
            dir: PathBuf::from("obs_results"),
            label: "run".to_string(),
            snapshot_every_ms: 0,
            ring_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// Defaults overridden by `SE_OBS` (mode), `SE_OBS_DIR` (dump dir), and
    /// `SE_OBS_SNAPSHOT_MS` (periodic snapshot interval).
    pub fn from_env(label: &str) -> ObsConfig {
        let mut cfg = ObsConfig {
            mode: obs_mode_from_env_or(ObsMode::Off),
            label: label.to_string(),
            ..ObsConfig::default()
        };
        if let Ok(dir) = std::env::var("SE_OBS_DIR") {
            if !dir.trim().is_empty() {
                cfg.dir = PathBuf::from(dir);
            }
        }
        if let Ok(ms) = std::env::var("SE_OBS_SNAPSHOT_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                cfg.snapshot_every_ms = ms;
            }
        }
        cfg
    }

    /// Same config with a different mode (builder-style convenience).
    pub fn with_mode(mut self, mode: ObsMode) -> ObsConfig {
        self.mode = mode;
        self
    }
}

struct ObsInner {
    mode: ObsMode,
    registry: MetricsRegistry,
    tracer: Tracer,
    stage_hists: Vec<Arc<Histogram>>,
    run_dir: Option<PathBuf>,
    label: String,
    snapshot_every_ms: u64,
}

/// Cheap-to-clone handle threaded through an engine's coordinator, workers,
/// exec pool, and durable layer. All recording goes through this.
#[derive(Clone)]
pub struct Obs(Arc<ObsInner>);

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Obs(mode={})", self.0.mode.as_str())
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

/// Distinguishes concurrent runs dumping under the same parent directory.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

impl Obs {
    /// Builds a handle from config. Dumps (if any) go to a unique
    /// subdirectory of `cfg.dir`; nothing is created until dump time.
    pub fn new(cfg: &ObsConfig) -> Obs {
        let run_dir = (cfg.mode != ObsMode::Off).then(|| {
            let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
            cfg.dir
                .join(format!("{}-{}-{seq}", cfg.label, std::process::id()))
        });
        let registry = MetricsRegistry::new();
        let stage_hists = STAGES
            .iter()
            .map(|st| registry.histogram(&format!("stage.{}", st.as_str())))
            .collect();
        Obs(Arc::new(ObsInner {
            mode: cfg.mode,
            registry,
            tracer: Tracer::new(cfg.ring_capacity),
            stage_hists,
            run_dir,
            label: cfg.label.clone(),
            snapshot_every_ms: cfg.snapshot_every_ms,
        }))
    }

    /// A disabled handle: every probe is a single predicted branch.
    pub fn noop() -> Obs {
        Obs::new(&ObsConfig::default())
    }

    /// The active mode.
    pub fn mode(&self) -> ObsMode {
        self.0.mode
    }

    /// True unless the mode is [`ObsMode::Off`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.mode != ObsMode::Off
    }

    /// True when span events are being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.0.mode == ObsMode::Trace
    }

    /// Monotonic timestamp for span endpoints — 0 when disabled, so hot
    /// paths skip the clock read entirely in `off` mode.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.enabled() {
            monotonic_ns()
        } else {
            0
        }
    }

    /// Records a completed stage span: feeds the per-stage duration
    /// histogram (metrics+), and the span ring (trace only). No-op when off.
    #[inline]
    pub fn stage_span(&self, stage: Stage, id: u64, start_ns: u64, end_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.0.stage_hists[stage as usize].record(end_ns.saturating_sub(start_ns));
        if self.tracing() {
            self.0.tracer.record(stage, id, start_ns, end_ns);
        }
    }

    /// The duration histogram behind a stage (for report/bench readers).
    pub fn stage_hist(&self, stage: Stage) -> &Arc<Histogram> {
        &self.0.stage_hists[stage as usize]
    }

    /// Live-in-every-mode counter handle (see module docs).
    pub fn counter(&self, name: &str) -> Counter {
        self.0.registry.counter(name)
    }

    /// Live-in-every-mode gauge handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.0.registry.gauge(name)
    }

    /// Named histogram handle. Callers should gate recording on
    /// [`Obs::enabled`] when the value computation itself has a cost.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.0.registry.histogram(name)
    }

    /// Direct registry access (snapshot paths, tests).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.0.registry
    }

    /// The unique directory this handle dumps into (`None` when off).
    pub fn run_dir(&self) -> Option<&Path> {
        self.0.run_dir.as_deref()
    }

    /// Renders the full metrics snapshot as a JSON object string.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"label\":{},\"mode\":\"{}\"",
            serde::Json::Str(self.0.label.clone()).render_compact(),
            self.0.mode.as_str()
        ));
        out.push_str(",\"counters\":{");
        let counters = self.0.registry.counter_values();
        for (i, (name, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{v}",
                serde::Json::Str(name.clone()).render_compact()
            ));
        }
        out.push_str("},\"gauges\":{");
        let gauges = self.0.registry.gauge_values();
        for (i, (name, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{v}",
                serde::Json::Str(name.clone()).render_compact()
            ));
        }
        out.push_str("},\"hists\":{");
        let mut first = true;
        for (name, h) in self.0.registry.histograms() {
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let s = h.summary();
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                serde::Json::Str(name.clone()).render_compact(),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.p50,
                s.p90,
                s.p99
            ));
            for (i, (floor, count)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{floor},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// End-of-run dump: writes `metrics.json` (always when not off) and
    /// `trace.jsonl` (trace mode) into the run directory. Returns the run
    /// directory, or `None` when the mode is off. Idempotent — callable
    /// both periodically and at shutdown.
    pub fn dump(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.0.run_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("metrics.json"), self.snapshot_json())?;
        if self.tracing() {
            let (events, dropped) = self.0.tracer.drain();
            let mut out = String::new();
            for ev in &events {
                out.push_str(&format!(
                    "{{\"stage\":\"{}\",\"id\":{},\"start_ns\":{},\"end_ns\":{},\"tid\":{}}}\n",
                    ev.stage.as_str(),
                    ev.id,
                    ev.start_ns,
                    ev.end_ns,
                    ev.tid
                ));
            }
            std::fs::write(dir.join("trace.jsonl"), out)?;
            if dropped > 0 {
                // Surfaced in metrics.json on the next dump / report path.
                let c = self.counter("obs.trace_dropped");
                let cur = c.get();
                if dropped > cur {
                    c.add(dropped - cur);
                }
            }
        }
        Ok(Some(dir.clone()))
    }

    /// Starts the periodic `metrics.json` snapshot thread if configured
    /// (`snapshot_every_ms > 0` and mode not off). The returned guard stops
    /// and joins the thread on drop.
    pub fn spawn_periodic_snapshots(&self) -> Option<PeriodicSnapshots> {
        if !self.enabled() || self.0.snapshot_every_ms == 0 {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let obs = self.clone();
        let flag = stop.clone();
        let every = std::time::Duration::from_millis(self.0.snapshot_every_ms);
        let handle = std::thread::Builder::new()
            .name("se-obs-snapshot".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(every);
                    let _ = obs.dump();
                }
            })
            .ok()?;
        Some(PeriodicSnapshots {
            stop,
            handle: Some(handle),
        })
    }
}

/// Guard for the periodic snapshot thread; stops it on drop.
pub struct PeriodicSnapshots {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for PeriodicSnapshots {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(ObsMode::parse("off"), Some(ObsMode::Off));
        assert_eq!(ObsMode::parse(" Metrics "), Some(ObsMode::Metrics));
        assert_eq!(ObsMode::parse("TRACE"), Some(ObsMode::Trace));
        assert_eq!(ObsMode::parse("bogus"), None);
        for m in [ObsMode::Off, ObsMode::Metrics, ObsMode::Trace] {
            assert_eq!(ObsMode::parse(m.as_str()), Some(m));
        }
    }

    #[test]
    fn off_mode_records_nothing_and_dumps_nothing() {
        let obs = Obs::noop();
        assert_eq!(obs.now_ns(), 0);
        obs.stage_span(Stage::BatchExec, 1, 0, 100);
        assert_eq!(obs.stage_hist(Stage::BatchExec).count(), 0);
        assert_eq!(obs.dump().unwrap(), None);
        // Counters stay live even when off: they back the engine stats.
        obs.counter("coord.commits").inc();
        assert_eq!(obs.counter("coord.commits").get(), 1);
    }

    #[test]
    fn metrics_mode_feeds_histograms_not_rings() {
        let cfg = ObsConfig {
            mode: ObsMode::Metrics,
            dir: std::env::temp_dir().join("se-obs-test-metrics"),
            ..ObsConfig::default()
        };
        let obs = Obs::new(&cfg);
        let t0 = obs.now_ns();
        obs.stage_span(Stage::WalFsync, 7, t0, t0 + 1_000);
        assert_eq!(obs.stage_hist(Stage::WalFsync).count(), 1);
        assert!(!obs.tracing());
    }

    #[test]
    fn trace_dump_is_parseable_json() {
        let dir = std::env::temp_dir().join(format!("se-obs-test-dump-{}", std::process::id()));
        let cfg = ObsConfig {
            mode: ObsMode::Trace,
            dir: dir.clone(),
            label: "unit".to_string(),
            ..ObsConfig::default()
        };
        let obs = Obs::new(&cfg);
        obs.counter("coord.commits").add(3);
        obs.stage_span(Stage::BatchSeal, 1, 10, 20);
        obs.stage_span(Stage::BatchExec, 1, 20, 90);
        let run = obs.dump().unwrap().expect("trace mode dumps");
        let metrics = std::fs::read_to_string(run.join("metrics.json")).unwrap();
        let v = serde_json::from_str(&metrics).expect("metrics.json parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("coord.commits"))
                .and_then(|x| x.as_i64()),
            Some(3)
        );
        assert!(v
            .get("hists")
            .and_then(|h| h.get("stage.batch_exec"))
            .is_some());
        let trace = std::fs::read_to_string(run.join("trace.jsonl")).unwrap();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let ev = serde_json::from_str(line).expect("trace line parses");
            assert!(ev.get("stage").and_then(|s| s.as_str()).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_config_defaults_off() {
        // Don't set SE_OBS here (env is process-global and tests race);
        // just check the default-path shape.
        let cfg = ObsConfig::default();
        assert_eq!(cfg.mode, ObsMode::Off);
        assert_eq!(cfg.dir, PathBuf::from("obs_results"));
    }
}
