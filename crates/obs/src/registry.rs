//! Named metrics registry with typed lock-free handles.
//!
//! Registration (name → handle) takes a short mutex once; the returned
//! [`Counter`] / [`Gauge`] / [`Histogram`] handles are `Arc`-backed atomics,
//! so the hot path never touches the registry again. Re-registering a name
//! returns the same underlying metric, which is what lets the coordinator,
//! workers, and benches all publish into one snapshot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::Histogram;

/// Monotonically increasing event counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all ops still work).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Point-in-time signed level (queue depths, in-flight batches).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Name → metric tables. One registry per [`crate::Obs`] handle.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.hists
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// All counters as `(name, value)`, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges as `(name, level)`, name-sorted.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as `(name, handle)`, name-sorted.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);

        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge("depth").get(), 3);

        let h = r.histogram("lat");
        h.record(10);
        assert_eq!(r.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_lists_are_name_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        let names: Vec<String> = r.counter_values().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }
}
