//! Open-loop benchmark client.
//!
//! The paper's setup dedicates 4 CPUs to benchmark clients issuing requests
//! at a target rate (§4). This driver issues operations open-loop (arrival
//! times independent of completions — the right model for latency-under-load
//! experiments), sweeps completions without blocking the arrival process,
//! and reports unscaled latency statistics.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use se_dataflow::{EntityRuntime, LatencySummary, ResponseWaiter};
use se_lang::{EntityRef, Value};

use crate::dist::Distribution;
use crate::ycsb::{key_name, OpGenerator, WorkloadSpec};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Offered load in requests per second (before time scaling).
    pub rps: f64,
    /// Number of requests to issue.
    pub requests: usize,
    /// RNG seed (operation sequence is deterministic given the seed).
    pub seed: u64,
    /// Payload size of update operations, bytes.
    pub value_size: usize,
    /// Time scale: inter-arrival gaps are multiplied by this, matching the
    /// runtime's `NetConfig::time_scale`, so offered load relative to
    /// service capacity is scale-invariant.
    pub time_scale: f64,
    /// Loop turns of generated `spin` operations (workload C cells).
    pub spin_iters: i64,
    /// Histogram that accumulates every completion latency (scaled
    /// nanoseconds) across runs sharing this config. Defaults to a private
    /// histogram; benches pass a registry histogram (e.g.
    /// `obs.histogram("driver.latency")`) so the run dump carries the full
    /// distribution, not just the summary. Per-run statistics are computed
    /// from a fresh histogram and merged in, so reuse never skews a run's
    /// own percentiles.
    pub latency_hist: std::sync::Arc<se_obs::Histogram>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            rps: 100.0,
            requests: 1_000,
            seed: 0xC0FFEE,
            value_size: 1024,
            time_scale: 1.0,
            spin_iters: 256,
            latency_hist: std::sync::Arc::new(se_obs::Histogram::new()),
        }
    }
}

/// Outcome of one driver run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Latency statistics, un-scaled (comparable across time scales).
    pub latency: LatencySummary,
    /// Requests that completed with an application/runtime error.
    pub errors: usize,
    /// Requests issued.
    pub issued: usize,
    /// Requests that never completed before the drain timeout.
    pub timed_out: usize,
    /// Wall-clock duration of the issue phase (scaled time).
    pub elapsed: Duration,
    /// Wall-clock duration from the first issue to the last completion
    /// (issue phase plus drain), un-scaled like `latency` — the divisor for
    /// completion throughput.
    pub total_elapsed: Duration,
}

impl RunReport {
    /// Requests that completed (with a result or an error).
    pub fn completed(&self) -> usize {
        self.issued - self.timed_out
    }

    /// Completion throughput in requests per second of un-scaled time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.total_elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }
}

/// Creates the `n` YCSB account entities with `value_size`-byte payloads and
/// a starting balance, in parallel for setup speed.
pub fn load_accounts(rt: &dyn EntityRuntime, n: usize, value_size: usize, balance: i64) {
    let threads = 16.min(n.max(1));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rt = &rt;
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    rt.create(
                        "Account",
                        &key_name(i),
                        vec![
                            ("balance".to_string(), Value::Int(balance)),
                            ("data".to_string(), Value::Bytes(vec![0u8; value_size])),
                        ],
                    )
                    .expect("create account");
                    i += threads;
                }
            });
        }
    });
}

/// Runs `spec` against `rt` open-loop and reports latency statistics.
pub fn run_open_loop(
    rt: &dyn EntityRuntime,
    spec: WorkloadSpec,
    dist: Distribution,
    n_keys: usize,
    cfg: &DriverConfig,
) -> RunReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut gen = OpGenerator::new(spec, dist.chooser(n_keys), cfg.value_size)
        .with_spin_iters(cfg.spin_iters);
    let interval = Duration::from_secs_f64(1.0 / cfg.rps).mul_f64(cfg.time_scale.max(1e-9));

    let mut pending: Vec<(Instant, ResponseWaiter)> = Vec::with_capacity(cfg.requests);
    // Latencies go straight into a log-bucketed histogram (O(1) record, no
    // end-of-run sort); this run's percentiles come from a fresh histogram,
    // merged into `cfg.latency_hist` afterwards for the obs dump.
    let hist = se_obs::Histogram::new();
    let mut errors = 0usize;

    let start = Instant::now();
    let mut next_issue = start;
    for _ in 0..cfg.requests {
        // Open loop: hold the arrival schedule regardless of completions.
        let now = Instant::now();
        if next_issue > now {
            std::thread::sleep(next_issue - now);
        }
        let (key, method, args) = gen.next_op(&mut rng).to_invocation();
        let target = EntityRef::new("Account", key_name(key));
        let issued = Instant::now();
        let waiter = rt.call_async(target, method, args);
        pending.push((issued, waiter));
        next_issue += interval;

        // Sweep completions without blocking the schedule.
        sweep(&mut pending, &hist, &mut errors);
    }
    let elapsed = start.elapsed();

    // Drain stragglers.
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    while !pending.is_empty() && Instant::now() < drain_deadline {
        sweep(&mut pending, &hist, &mut errors);
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let timed_out = pending.len();
    let total = start.elapsed();

    cfg.latency_hist.merge(&hist);
    let summary = LatencySummary::from_hist(&hist).unscale(cfg.time_scale);
    let total_elapsed = if cfg.time_scale > 0.0 {
        total.div_f64(cfg.time_scale)
    } else {
        total
    };
    RunReport {
        latency: summary,
        errors,
        issued: cfg.requests,
        timed_out,
        elapsed,
        total_elapsed,
    }
}

fn sweep(
    pending: &mut Vec<(Instant, ResponseWaiter)>,
    hist: &se_obs::Histogram,
    errors: &mut usize,
) {
    pending.retain(|(issued, waiter)| match waiter.try_wait() {
        None => true,
        Some(result) => {
            hist.record(issued.elapsed().as_nanos() as u64);
            if result.is_err() {
                *errors += 1;
            }
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::ycsb_program;
    use se_core::{RuntimeChoice, StateflowConfig};

    #[test]
    fn driver_runs_workload_a_on_stateflow() {
        let program = ycsb_program();
        let rt = se_core::deploy(
            &program,
            RuntimeChoice::Stateflow(StateflowConfig::fast_test(3)),
        )
        .unwrap();
        load_accounts(rt.as_ref(), 20, 64, 100);
        let cfg = DriverConfig {
            rps: 2000.0,
            requests: 200,
            ..Default::default()
        };
        let report = run_open_loop(
            rt.as_ref(),
            WorkloadSpec::A,
            Distribution::Zipfian,
            20,
            &cfg,
        );
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(report.timed_out, 0);
        assert_eq!(report.latency.count, 200);
        assert!(report.latency.p99 > Duration::ZERO);
        rt.shutdown();
    }

    #[test]
    fn driver_transfer_workload_conserves_money() {
        let program = ycsb_program();
        let rt = se_core::deploy(
            &program,
            RuntimeChoice::Stateflow(StateflowConfig::fast_test(3)),
        )
        .unwrap();
        let n = 10;
        load_accounts(rt.as_ref(), n, 16, 1000);
        let cfg = DriverConfig {
            rps: 3000.0,
            requests: 150,
            ..Default::default()
        };
        let report = run_open_loop(rt.as_ref(), WorkloadSpec::T, Distribution::Uniform, n, &cfg);
        assert_eq!(report.errors, 0);
        let total: i64 = (0..n)
            .map(|i| {
                rt.call(EntityRef::new("Account", key_name(i)), "balance", vec![])
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 1000 * n as i64, "transfers conserve total balance");
        rt.shutdown();
    }

    #[test]
    fn open_loop_holds_schedule() {
        // With a fast runtime, issuing 100 requests at 10 kRPS should take
        // ~10ms of schedule time, not be gated on completions.
        let program = ycsb_program();
        let rt = se_core::deploy(&program, RuntimeChoice::Local).unwrap();
        load_accounts(rt.as_ref(), 5, 16, 0);
        let cfg = DriverConfig {
            rps: 10_000.0,
            requests: 100,
            ..Default::default()
        };
        let report = run_open_loop(rt.as_ref(), WorkloadSpec::B, Distribution::Uniform, 5, &cfg);
        assert!(report.elapsed < Duration::from_secs(2));
        assert_eq!(report.latency.count, 100);
    }
}
