//! # se-workloads — benchmark workloads over stateful entities
//!
//! The evaluation workloads of the paper (§4), authored *in the entity DSL*
//! and compiled through the full pipeline:
//!
//! * [`ycsb`] — YCSB A (50r/50u), B (95r/5u), YCSB+T's transactional T
//!   (atomic two-account transfer: 2 reads + 2 writes) and the paper's
//!   mixed M (45r/45u/10t);
//! * [`dist`] — uniform and Zipfian (θ = 0.99) key-popularity
//!   distributions;
//! * [`driver`] — an open-loop client issuing operations at a target rate;
//! * [`tpcc`] — the "partly TPC-C" the paper mentions: Payment and a
//!   simplified NewOrder.

#![warn(missing_docs)]

pub mod dist;
pub mod driver;
pub mod tpcc;
pub mod ycsb;

pub use dist::{Distribution, KeyChooser, Uniform, Zipfian};
pub use driver::{load_accounts, run_open_loop, DriverConfig, RunReport};
pub use ycsb::{key_name, ycsb_program, ycsb_program_v2, OpGenerator, Operation, WorkloadSpec};
