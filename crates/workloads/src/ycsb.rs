//! YCSB and YCSB+T workloads over stateful entities.
//!
//! "We are using workloads A and B from the original YCSB benchmark. A is
//! update-heavy — 50% reads 50% updates — and B is read-heavy — 95% reads
//! 5% updates. In addition, we use the transactional workload T from YCSB+T,
//! which atomically transfers an amount from one entity's bank account to
//! another (2 reads and 2 writes). For the throughput test, we defined a
//! mixed workload M (45% reads 45% updates 10% transfers)." (§4)
//!
//! Records are **entities** compiled through the full pipeline — YCSB here
//! measures the system the paper builds, not a raw key-value store (the
//! paper's "Baseline" paragraph makes exactly this point).

use rand::Rng;

use se_lang::builder::*;
use se_lang::{Program, Type, Value};

use crate::dist::KeyChooser;

/// The YCSB+T account entity: a record with a payload (for reads/updates)
/// and a balance (for transfers).
pub fn ycsb_program() -> Program {
    let account = ClassBuilder::new("Account")
        .attr_default("account_id", Type::Str, Value::Str(String::new()))
        .attr_default("balance", Type::Int, Value::Int(0))
        .attr_default("data", Type::Bytes, Value::Bytes(Vec::new()))
        .key("account_id")
        // read(): return the record payload.
        .method(
            MethodBuilder::new("read")
                .returns(Type::Bytes)
                .body(vec![ret(attr("data"))]),
        )
        // update(v): overwrite the record payload.
        .method(
            MethodBuilder::new("update")
                .param("value", Type::Bytes)
                .returns(Type::Bool)
                .body(vec![attr_assign("data", var("value")), ret(lit(true))]),
        )
        .method(
            MethodBuilder::new("balance")
                .returns(Type::Int)
                .body(vec![ret(attr("balance"))]),
        )
        .method(
            MethodBuilder::new("deposit")
                .param("amount", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    attr_add("balance", var("amount")),
                    ret(attr("balance")),
                ]),
        )
        // spin(iters): a compute-bound body — `iters` arithmetic loop turns,
        // one attribute read, no writes, no remote calls. Workload C uses it
        // for scaling benches where per-event CPU (not state movement or
        // coordination) dominates, the regime where the intra-partition exec
        // pool should show its parallel speedup.
        .method(
            MethodBuilder::new("spin")
                .param("iters", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    assign_ty("acc", Type::Int, attr("balance")),
                    assign_ty("i", Type::Int, lit(0)),
                    while_(
                        lt(var("i"), var("iters")),
                        vec![
                            assign(
                                "acc",
                                modulo(add(mul(var("acc"), lit(31)), var("i")), lit(1000003)),
                            ),
                            assign("i", add(var("i"), lit(1))),
                        ],
                    ),
                    ret(var("acc")),
                ]),
        )
        // transfer: the YCSB+T transaction — 2 reads + 2 writes across two
        // accounts, atomically.
        .method(
            MethodBuilder::new("transfer")
                .param("other", Type::entity("Account"))
                .param("amount", Type::Int)
                .returns(Type::Bool)
                .transactional()
                .body(vec![
                    assign_ty("b", Type::Int, attr("balance")),
                    if_(lt(var("b"), var("amount")), vec![ret(lit(false))]),
                    attr_assign("balance", sub(var("b"), var("amount"))),
                    expr_stmt(call(var("other"), "deposit", vec![var("amount")])),
                    ret(lit(true)),
                ]),
        )
        .build();
    Program::new(vec![account])
}

/// Version 2 of the YCSB+T account entity, for live-upgrade scenarios: every
/// v1 method is byte-identical (so an incremental redeploy reuses all of
/// them), plus a new `audit_epoch` attribute whose `__migrate__` body bumps
/// it once per applied upgrade and an `audits` probe reading it back.
/// Workload semantics are untouched, so a run that upgrades mid-stream must
/// still replay cleanly through the v1 Local oracle.
pub fn ycsb_program_v2() -> Program {
    let Program { mut classes, .. } = ycsb_program();
    let account = classes.remove(0);
    let account = ClassBuilder::from_class(account)
        .attr_default("audit_epoch", Type::Int, Value::Int(0))
        .method(
            MethodBuilder::new("audits")
                .returns(Type::Int)
                .body(vec![ret(attr("audit_epoch"))]),
        )
        .migration(vec![attr_assign(
            "audit_epoch",
            add(attr("audit_epoch"), int(1)),
        )])
        .build();
    Program::new(vec![account])
}

/// Key name of record `i`.
pub fn key_name(i: usize) -> String {
    format!("user{i}")
}

/// Operation mix of a workload, in percent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Short name ("A", "B", "T", "M", "C").
    pub name: &'static str,
    /// Percent reads.
    pub read_pct: u8,
    /// Percent updates.
    pub update_pct: u8,
    /// Percent transfers (YCSB+T transactions).
    pub transfer_pct: u8,
    /// Percent compute-bound spins (workload C; not part of the paper's
    /// mixes, used by the scaling bench).
    pub spin_pct: u8,
}

impl WorkloadSpec {
    /// YCSB A: update-heavy (50/50).
    pub const A: WorkloadSpec = WorkloadSpec {
        name: "A",
        read_pct: 50,
        update_pct: 50,
        transfer_pct: 0,
        spin_pct: 0,
    };
    /// YCSB B: read-heavy (95/5).
    pub const B: WorkloadSpec = WorkloadSpec {
        name: "B",
        read_pct: 95,
        update_pct: 5,
        transfer_pct: 0,
        spin_pct: 0,
    };
    /// YCSB+T T: transfers only.
    pub const T: WorkloadSpec = WorkloadSpec {
        name: "T",
        read_pct: 0,
        update_pct: 0,
        transfer_pct: 100,
        spin_pct: 0,
    };
    /// The paper's mixed workload M (45/45/10).
    pub const M: WorkloadSpec = WorkloadSpec {
        name: "M",
        read_pct: 45,
        update_pct: 45,
        transfer_pct: 10,
        spin_pct: 0,
    };
    /// C: compute-bound spins only — single-entity, read-only, loop-heavy
    /// bodies. With uniform keys it is conflict-free, the regime where
    /// intra-partition exec-pool scaling is purest.
    pub const C: WorkloadSpec = WorkloadSpec {
        name: "C",
        read_pct: 0,
        update_pct: 0,
        transfer_pct: 0,
        spin_pct: 100,
    };

    /// Whether the mix contains multi-entity transactions.
    pub fn is_transactional(&self) -> bool {
        self.transfer_pct > 0
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Read record `key`'s payload.
    Read {
        /// Record index.
        key: usize,
    },
    /// Overwrite record `key`'s payload.
    Update {
        /// Record index.
        key: usize,
        /// New payload.
        value: Vec<u8>,
    },
    /// Transfer `amount` from one account to another.
    Transfer {
        /// Source record index.
        from: usize,
        /// Destination record index (≠ `from`).
        to: usize,
        /// Amount.
        amount: i64,
    },
    /// Run record `key`'s compute-bound spin loop for `iters` turns.
    Spin {
        /// Record index.
        key: usize,
        /// Loop turns.
        iters: i64,
    },
}

impl Operation {
    /// The entity method invocation this operation maps to:
    /// `(target key index, method name, args)`.
    pub fn to_invocation(&self) -> (usize, &'static str, Vec<Value>) {
        match self {
            Operation::Read { key } => (*key, "read", vec![]),
            Operation::Update { key, value } => (*key, "update", vec![Value::Bytes(value.clone())]),
            Operation::Transfer { from, to, amount } => (
                *from,
                "transfer",
                vec![
                    Value::Ref(se_lang::EntityRef::new("Account", key_name(*to))),
                    Value::Int(*amount),
                ],
            ),
            Operation::Spin { key, iters } => (*key, "spin", vec![Value::Int(*iters)]),
        }
    }
}

/// Generates operations of a workload mix over a key chooser.
pub struct OpGenerator {
    spec: WorkloadSpec,
    chooser: Box<dyn KeyChooser>,
    value_size: usize,
    spin_iters: i64,
}

impl OpGenerator {
    /// A generator for `spec` drawing keys from `chooser`; updates write
    /// payloads of `value_size` bytes (YCSB default: 1 KiB rows).
    pub fn new(spec: WorkloadSpec, chooser: Box<dyn KeyChooser>, value_size: usize) -> Self {
        Self {
            spec,
            chooser,
            value_size,
            spin_iters: 256,
        }
    }

    /// Sets the loop-turn count of generated spins (default 256).
    pub fn with_spin_iters(mut self, iters: i64) -> Self {
        self.spin_iters = iters;
        self
    }

    /// Draws the next operation.
    pub fn next_op(&mut self, rng: &mut dyn rand::RngCore) -> Operation {
        let roll = rng.gen_range(0..100u8);
        if roll < self.spec.read_pct {
            Operation::Read {
                key: self.chooser.next_key(rng),
            }
        } else if roll < self.spec.read_pct + self.spec.update_pct {
            let fill = rng.gen::<u8>();
            Operation::Update {
                key: self.chooser.next_key(rng),
                value: vec![fill; self.value_size],
            }
        } else if roll < self.spec.read_pct + self.spec.update_pct + self.spec.transfer_pct {
            let from = self.chooser.next_key(rng);
            let mut to = self.chooser.next_key(rng);
            if to == from {
                to = (to + 1) % self.chooser.key_count().max(2);
            }
            Operation::Transfer {
                from,
                to,
                amount: rng.gen_range(1..10),
            }
        } else {
            Operation::Spin {
                key: self.chooser.next_key(rng),
                iters: self.spin_iters,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_typechecks_and_compiles() {
        let p = ycsb_program();
        se_lang::typecheck::check_program(&p).unwrap();
        let g = se_compiler_compile(&p);
        // transfer splits at its one remote call.
        assert_eq!(g, 1);
    }

    // Avoid a dev-dependency cycle: call through a tiny shim.
    fn se_compiler_compile(p: &Program) -> usize {
        // The workloads crate depends on se-core which re-exports compile.
        let graph = se_core::compile(p).unwrap();
        graph
            .program
            .method_or_err("Account", "transfer")
            .unwrap()
            .suspension_points()
    }

    #[test]
    fn mixes_match_spec() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = OpGenerator::new(WorkloadSpec::M, Distribution::Uniform.chooser(100), 64);
        let (mut r, mut u, mut t) = (0, 0, 0);
        let n = 20_000;
        for _ in 0..n {
            match gen.next_op(&mut rng) {
                Operation::Read { .. } => r += 1,
                Operation::Update { .. } => u += 1,
                Operation::Transfer { .. } => t += 1,
                Operation::Spin { .. } => panic!("M generates no spins"),
            }
        }
        let pct = |c: i32| c as f64 / n as f64 * 100.0;
        assert!((pct(r) - 45.0).abs() < 2.0, "reads {}%", pct(r));
        assert!((pct(u) - 45.0).abs() < 2.0, "updates {}%", pct(u));
        assert!((pct(t) - 10.0).abs() < 2.0, "transfers {}%", pct(t));
    }

    #[test]
    fn transfer_never_self_targets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = OpGenerator::new(WorkloadSpec::T, Box::new(Uniform::new(4)), 64);
        for _ in 0..5_000 {
            if let Operation::Transfer { from, to, .. } = gen.next_op(&mut rng) {
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn update_respects_value_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut gen = OpGenerator::new(WorkloadSpec::A, Box::new(Uniform::new(10)), 1024);
        loop {
            if let Operation::Update { value, .. } = gen.next_op(&mut rng) {
                assert_eq!(value.len(), 1024);
                break;
            }
        }
    }

    #[test]
    fn spec_constants() {
        assert!(!WorkloadSpec::A.is_transactional());
        assert!(WorkloadSpec::T.is_transactional());
        assert!(WorkloadSpec::M.is_transactional());
        assert!(!WorkloadSpec::C.is_transactional());
        for spec in [
            WorkloadSpec::A,
            WorkloadSpec::B,
            WorkloadSpec::T,
            WorkloadSpec::M,
            WorkloadSpec::C,
        ] {
            assert_eq!(
                spec.read_pct + spec.update_pct + spec.transfer_pct + spec.spin_pct,
                100,
                "workload {} mix must sum to 100%",
                spec.name
            );
        }
    }

    #[test]
    fn workload_c_generates_only_spins_with_requested_iters() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen =
            OpGenerator::new(WorkloadSpec::C, Box::new(Uniform::new(50)), 64).with_spin_iters(512);
        for _ in 0..1_000 {
            match gen.next_op(&mut rng) {
                Operation::Spin { key, iters } => {
                    assert!(key < 50);
                    assert_eq!(iters, 512);
                }
                other => panic!("workload C generated {other:?}"),
            }
        }
    }

    /// The spin body must be single-entity (no suspension points: it never
    /// leaves its partition, which is what makes workload C conflict-free
    /// under uniform keys) and deterministic in its result.
    #[test]
    fn spin_method_is_local_and_deterministic() {
        let p = ycsb_program();
        se_lang::typecheck::check_program(&p).unwrap();
        let graph = se_core::compile(&p).unwrap();
        assert_eq!(
            graph
                .program
                .method_or_err("Account", "spin")
                .unwrap()
                .suspension_points(),
            0,
            "spin must not suspend"
        );
        let rt = se_core::deploy(&p, se_core::RuntimeChoice::Local).unwrap();
        let acct = rt
            .create("Account", "a0", vec![("balance".into(), Value::Int(7))])
            .unwrap();
        let one = rt.call(acct, "spin", vec![Value::Int(300)]).unwrap();
        let two = rt.call(acct, "spin", vec![Value::Int(300)]).unwrap();
        assert_eq!(one, two, "spin is read-only and deterministic");
        assert!(one.as_int().unwrap() >= 0);
    }
}
