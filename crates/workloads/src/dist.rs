//! Key-popularity distributions: uniform and Zipfian.
//!
//! "For the latency tests, we use Zipfian and uniform key distributions"
//! (§4). The Zipfian sampler is the YCSB/Gray et al. generator ("Quickly
//! generating billion-record synthetic databases", SIGMOD '94), with the
//! usual zeta-function precomputation and default skew θ = 0.99.

use rand::Rng;

/// Chooses keys in `0..n`.
pub trait KeyChooser: Send {
    /// Draws the next key index.
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> usize;
    /// Size of the key space.
    fn key_count(&self) -> usize;
}

/// Uniform distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: usize,
}

impl Uniform {
    /// Uniform over `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "key space must be non-empty");
        Self { n }
    }
}

impl KeyChooser for Uniform {
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        rng.gen_range(0..self.n)
    }

    fn key_count(&self) -> usize {
        self.n
    }
}

/// Zipfian distribution over `0..n` (YCSB's `ZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew (θ = 0.99).
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Zipfian over `0..n` with skew `theta` ∈ (0, 1) ∪ (1, ∞).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not positive or equals 1.
    pub fn with_theta(n: usize, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be positive and ≠ 1"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Zipfian with the YCSB default skew.
    pub fn new(n: usize) -> Self {
        Self::with_theta(n, Self::DEFAULT_THETA)
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }
}

impl KeyChooser for Zipfian {
    fn next_key(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        // Gray et al. inverse-CDF approximation.
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        // `spread` hits exactly 1.0 for draws near the top of the unit
        // interval (η·(u−1) underflows below half an ulp of 1.0), which
        // maps to index n. YCSB clamps to the last key; reducing `% n`
        // instead would silently wrap the overflow onto key 0, inflating
        // the hottest key's popularity.
        (((self.n as f64) * spread) as usize).min(self.n - 1)
    }

    fn key_count(&self) -> usize {
        self.n
    }
}

/// Which distribution a benchmark cell uses (for labeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform.
    Uniform,
    /// Zipfian with the default θ.
    Zipfian,
}

impl Distribution {
    /// Builds the chooser.
    pub fn chooser(self, n: usize) -> Box<dyn KeyChooser> {
        match self {
            Distribution::Uniform => Box::new(Uniform::new(n)),
            Distribution::Zipfian => Box::new(Zipfian::new(n)),
        }
    }

    /// Label used in reports ("zipfian"/"uniform").
    pub fn label(self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Zipfian => "zipfian",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(chooser: &mut dyn KeyChooser, samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0usize; chooser.key_count()];
        for _ in 0..samples {
            let k = chooser.next_key(&mut rng);
            h[k] += 1;
        }
        h
    }

    #[test]
    fn uniform_in_range_and_flat() {
        let mut u = Uniform::new(100);
        let h = histogram(&mut u, 100_000);
        assert_eq!(h.len(), 100);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            *max < 2 * *min,
            "uniform histogram too skewed: min={min} max={max}"
        );
    }

    #[test]
    fn zipfian_in_range() {
        let mut z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100_000 {
            let k = z.next_key(&mut rng);
            assert!(k < 1000);
        }
    }

    /// An rng pinned to the top of the unit interval: `gen::<f64>()` yields
    /// `(2^53 − 1) / 2^53`, the largest drawable `u`.
    struct MaxRng;
    impl rand::RngCore for MaxRng {
        fn next_u32(&mut self) -> u32 {
            u32::MAX
        }
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn zipfian_top_of_unit_interval_clamps_to_last_key() {
        // At u = 1 − 2⁻⁵³ the inverse-CDF spread computes as exactly 1.0
        // (η·(u−1) underflows below half an ulp of 1.0), i.e. index n. The
        // sampler must clamp to the last key, YCSB-style — the old `% n`
        // wrapped the edge case onto key 0 and silently inflated the
        // hottest key's popularity.
        for n in [2usize, 10, 100, 1000] {
            let mut z = Zipfian::new(n);
            assert_eq!(
                z.next_key(&mut MaxRng),
                n - 1,
                "u→1 must map to the coldest key, not wrap (n = {n})"
            );
        }
    }

    #[test]
    fn zipfian_is_head_heavy() {
        let mut z = Zipfian::new(1000);
        let h = histogram(&mut z, 200_000);
        let head: usize = h[..10].iter().sum();
        let tail: usize = h[990..].iter().sum();
        assert!(
            head > 20 * tail.max(1),
            "zipfian head must dominate tail: head={head} tail={tail}"
        );
        // Rank 0 is the single most popular key.
        let max_idx = h.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(max_idx, 0);
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let skew_of = |theta: f64| {
            let mut z = Zipfian::with_theta(500, theta);
            let h = histogram(&mut z, 100_000);
            h[0] as f64 / 100_000.0
        };
        assert!(skew_of(1.2) > skew_of(0.99));
        assert!(skew_of(0.99) > skew_of(0.6));
    }

    #[test]
    fn deterministic_with_seed() {
        let draw = || {
            let mut z = Zipfian::new(100);
            let mut rng = StdRng::seed_from_u64(1);
            (0..50).map(|_| z.next_key(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_keyspace_panics() {
        Uniform::new(0);
    }
}
