//! A partial TPC-C authored in the entity DSL.
//!
//! "StateFlow is already able to execute transactional workloads (YCSB-T and
//! partly TPC-C)" (§3). This module implements that "partly": the
//! **Payment** and a simplified **NewOrder** transaction over Warehouse /
//! District / Customer / Stock entities. NewOrder iterates a list of stock
//! entities with a remote call inside the loop body — the control-flow +
//! remote-call combination that exercises the paper's loop-splitting rules
//! (§2.4) hardest.
//!
//! Simplifications vs. the full spec (documented per DESIGN.md): no order
//! lines or carrier/delivery queues, integer money, and item prices folded
//! into stock entities. The *transactional shape* (multi-entity read/write
//! sets, per-district order-id sequencing, the 10%-remote-warehouse
//! cross-partition accesses) is preserved.

use se_lang::builder::*;
use se_lang::{Program, Type, Value};

/// The partial TPC-C entity program.
pub fn tpcc_program() -> Program {
    let warehouse = ClassBuilder::new("Warehouse")
        .attr_default("w_id", Type::Str, Value::Str(String::new()))
        .attr_default("w_ytd", Type::Int, Value::Int(0))
        .attr_default("w_tax", Type::Int, Value::Int(7))
        .key("w_id")
        .method(
            MethodBuilder::new("receive_payment")
                .param("amount", Type::Int)
                .returns(Type::Int)
                .body(vec![attr_add("w_ytd", var("amount")), ret(attr("w_ytd"))]),
        )
        .build();

    let district = ClassBuilder::new("District")
        .attr_default("d_id", Type::Str, Value::Str(String::new()))
        .attr_default("d_ytd", Type::Int, Value::Int(0))
        .attr_default("d_next_o_id", Type::Int, Value::Int(3000))
        .key("d_id")
        .method(
            MethodBuilder::new("receive_payment")
                .param("amount", Type::Int)
                .returns(Type::Int)
                .body(vec![attr_add("d_ytd", var("amount")), ret(attr("d_ytd"))]),
        )
        .method(
            MethodBuilder::new("next_order_id")
                .returns(Type::Int)
                .body(vec![
                    attr_add("d_next_o_id", int(1)),
                    ret(attr("d_next_o_id")),
                ]),
        )
        .build();

    let stock = ClassBuilder::new("Stock")
        .attr_default("s_id", Type::Str, Value::Str(String::new()))
        .attr_default("s_quantity", Type::Int, Value::Int(100))
        .attr_default("s_ytd", Type::Int, Value::Int(0))
        .attr_default("s_order_cnt", Type::Int, Value::Int(0))
        .key("s_id")
        // TPC-C stock update rule: restock by 91 when falling below 10.
        .method(
            MethodBuilder::new("take")
                .param("qty", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    if_else(
                        ge(sub(attr("s_quantity"), var("qty")), int(10)),
                        vec![attr_assign(
                            "s_quantity",
                            sub(attr("s_quantity"), var("qty")),
                        )],
                        vec![attr_assign(
                            "s_quantity",
                            add(sub(attr("s_quantity"), var("qty")), int(91)),
                        )],
                    ),
                    attr_add("s_ytd", var("qty")),
                    attr_add("s_order_cnt", int(1)),
                    ret(attr("s_quantity")),
                ]),
        )
        .build();

    let customer = ClassBuilder::new("Customer")
        .attr_default("c_id", Type::Str, Value::Str(String::new()))
        .attr_default("c_balance", Type::Int, Value::Int(0))
        .attr_default("c_ytd_payment", Type::Int, Value::Int(0))
        .attr_default("c_payment_cnt", Type::Int, Value::Int(0))
        .attr_default("c_order_cnt", Type::Int, Value::Int(0))
        .key("c_id")
        .method(
            MethodBuilder::new("balance")
                .returns(Type::Int)
                .body(vec![ret(attr("c_balance"))]),
        )
        // TPC-C Payment: touches customer + warehouse + district atomically.
        .method(
            MethodBuilder::new("payment")
                .param("warehouse", Type::entity("Warehouse"))
                .param("district", Type::entity("District"))
                .param("amount", Type::Int)
                .returns(Type::Int)
                .transactional()
                .body(vec![
                    attr_assign("c_balance", sub(attr("c_balance"), var("amount"))),
                    attr_add("c_ytd_payment", var("amount")),
                    attr_add("c_payment_cnt", int(1)),
                    expr_stmt(call(
                        var("warehouse"),
                        "receive_payment",
                        vec![var("amount")],
                    )),
                    expr_stmt(call(
                        var("district"),
                        "receive_payment",
                        vec![var("amount")],
                    )),
                    ret(attr("c_balance")),
                ]),
        )
        // Simplified TPC-C NewOrder: sequence an order id at the district,
        // then decrement every ordered stock (remote call inside a loop).
        .method(
            MethodBuilder::new("new_order")
                .param("district", Type::entity("District"))
                .param("stocks", Type::list(Type::entity("Stock")))
                .param("qty", Type::Int)
                .returns(Type::Int)
                .transactional()
                .body(vec![
                    assign_ty(
                        "oid",
                        Type::Int,
                        call(var("district"), "next_order_id", vec![]),
                    ),
                    for_list(
                        "s",
                        var("stocks"),
                        vec![expr_stmt(call(var("s"), "take", vec![var("qty")]))],
                    ),
                    attr_add("c_order_cnt", int(1)),
                    ret(var("oid")),
                ]),
        )
        .build();

    Program::new(vec![warehouse, district, stock, customer])
}

/// Scale factors for loading.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    /// Number of warehouses.
    pub warehouses: usize,
    /// Districts per warehouse.
    pub districts_per_warehouse: usize,
    /// Customers per district.
    pub customers_per_district: usize,
    /// Stock items per warehouse.
    pub stock_per_warehouse: usize,
}

impl Default for TpccScale {
    fn default() -> Self {
        Self {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            stock_per_warehouse: 100,
        }
    }
}

/// Entity key helpers.
pub mod keys {
    /// Warehouse `w`.
    pub fn warehouse(w: usize) -> String {
        format!("w{w}")
    }
    /// District `d` of warehouse `w`.
    pub fn district(w: usize, d: usize) -> String {
        format!("w{w}d{d}")
    }
    /// Customer `c` of district `d` of warehouse `w`.
    pub fn customer(w: usize, d: usize, c: usize) -> String {
        format!("w{w}d{d}c{c}")
    }
    /// Stock item `s` of warehouse `w`.
    pub fn stock(w: usize, s: usize) -> String {
        format!("w{w}s{s}")
    }
}

/// Creates all entities of the schema at the given scale.
pub fn load(rt: &dyn se_dataflow::EntityRuntime, scale: TpccScale) {
    std::thread::scope(|scope| {
        for w in 0..scale.warehouses {
            let rt = &rt;
            scope.spawn(move || {
                rt.create("Warehouse", &keys::warehouse(w), vec![])
                    .expect("create warehouse");
                for d in 0..scale.districts_per_warehouse {
                    rt.create("District", &keys::district(w, d), vec![])
                        .expect("create district");
                    for c in 0..scale.customers_per_district {
                        rt.create(
                            "Customer",
                            &keys::customer(w, d, c),
                            vec![("c_balance".to_string(), Value::Int(1_000))],
                        )
                        .expect("create customer");
                    }
                }
                for s in 0..scale.stock_per_warehouse {
                    rt.create("Stock", &keys::stock(w, s), vec![])
                        .expect("create stock");
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_core::{deploy, RuntimeChoice, StateflowConfig};
    use se_lang::EntityRef;

    #[test]
    fn program_typechecks_and_compiles() {
        let p = tpcc_program();
        se_lang::typecheck::check_program(&p).unwrap();
        let g = se_core::compile(&p).unwrap();
        // payment: 2 calls; new_order: 1 + in-loop call.
        assert_eq!(
            g.program
                .method_or_err("Customer", "payment")
                .unwrap()
                .suspension_points(),
            2
        );
        assert_eq!(
            g.program
                .method_or_err("Customer", "new_order")
                .unwrap()
                .suspension_points(),
            2
        );
    }

    #[test]
    fn payment_and_new_order_on_stateflow() {
        let p = tpcc_program();
        let rt = deploy(&p, RuntimeChoice::Stateflow(StateflowConfig::fast_test(3))).unwrap();
        let scale = TpccScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 2,
            stock_per_warehouse: 5,
        };
        load(rt.as_ref(), scale);

        let cust = EntityRef::new("Customer", keys::customer(0, 0, 0));
        let w = EntityRef::new("Warehouse", keys::warehouse(0));
        let d = EntityRef::new("District", keys::district(0, 0));

        let bal = rt
            .call(
                cust,
                "payment",
                vec![Value::Ref(w), Value::Ref(d), Value::Int(100)],
            )
            .unwrap();
        assert_eq!(bal, Value::Int(900));
        assert_eq!(
            rt.call(w, "receive_payment", vec![Value::Int(0)]).unwrap(),
            Value::Int(100),
            "warehouse ytd accumulated"
        );

        let stocks = Value::List(vec![
            Value::Ref(EntityRef::new("Stock", keys::stock(0, 1))),
            Value::Ref(EntityRef::new("Stock", keys::stock(0, 2))),
            Value::Ref(EntityRef::new("Stock", keys::stock(0, 3))),
        ]);
        let oid = rt
            .call(
                cust,
                "new_order",
                vec![Value::Ref(d), stocks, Value::Int(7)],
            )
            .unwrap();
        assert_eq!(oid, Value::Int(3001));
        // Stock 1..=3 each lost 7 units.
        let q = rt
            .call(
                EntityRef::new("Stock", keys::stock(0, 2)),
                "take",
                vec![Value::Int(0)],
            )
            .unwrap();
        assert_eq!(q, Value::Int(93));
        rt.shutdown();
    }

    #[test]
    fn stock_restocks_below_threshold() {
        let p = tpcc_program();
        let rt = deploy(&p, RuntimeChoice::Local).unwrap();
        let s = rt
            .create("Stock", "s1", vec![("s_quantity".into(), Value::Int(12))])
            .unwrap();
        // 12 - 7 = 5 < 10 → restock: 12 - 7 + 91 = 96.
        assert_eq!(
            rt.call(s, "take", vec![Value::Int(7)]).unwrap(),
            Value::Int(96)
        );
    }
}
