//! Dynamic op-pair profile of the benchmark-shaped workloads — the data the
//! superinstruction selection in `se_vm::lower` is derived from (the module
//! doc there points here).
//!
//! Each body is compiled with [`VmOpts::none`] (no folding, no fusion) and
//! executed under [`Vm::run_profiled`], which counts every dynamically
//! executed `(previous, current)` opcode pair. The tests pin that the pairs
//! the lowering pass fuses are in fact the hot ones on these workloads:
//!
//! * `spin` (the `micro_interp` / pipeline workload-C body): the loop
//!   header's `Binary` + `JumpIfFalse` (→ [`Op::BinaryJumpIfFalse`]) and the
//!   counter bump's `Const` + `Binary` (→ [`Op::ConstBinary`]);
//! * `pump` (YCSB `deposit`-shaped attribute read-modify-write):
//!   `LoadAttr` + `Binary` (→ [`Op::LoadAttrBinary`]) and
//!   `Binary` + `StoreAttr` (→ [`Op::BinaryStoreAttr`]);
//! * `scan` (list iteration *inside a block body* — the shape the splitter
//!   leaves to the VM's own iteration protocol; top-level `for` loops are
//!   desugared to index loops before lowering, where the `spin` pairs
//!   cover them): the back-edge `Jump` + `IterNext`
//!   (→ [`Op::IterNextJump`]).
//!
//! If a lowering change reshapes the baseline instruction stream so these
//! pairs stop being hot, these tests fail — the cue to re-derive the
//! superinstruction set rather than keep fusing stale patterns.

use se_ir::{Activation, Block, BlockId, CompiledMethod, Terminator};
use se_lang::builder::*;
use se_lang::{Program, Type, Value};
use se_vm::vm::OpPairProfile;
use se_vm::{lower_method_with, PoolBuilder, Vm, VmOpts, VmProgram};

/// One class holding the three benchmark-shaped bodies.
fn profile_program() -> Program {
    let cell = ClassBuilder::new("Cell")
        .attr_default("cell_id", Type::Str, Value::Str(String::new()))
        .attr_default("acc", Type::Int, Value::Int(0))
        .key("cell_id")
        // The micro_interp churn body: local arithmetic in a counted loop.
        .method(
            MethodBuilder::new("spin")
                .param("n", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    assign("i", int(0)),
                    assign("a", int(1)),
                    assign("b", int(2)),
                    while_(
                        lt(var("i"), var("n")),
                        vec![
                            assign("a", add(var("a"), var("b"))),
                            assign("b", add(var("b"), var("i"))),
                            assign("i", add(var("i"), int(1))),
                        ],
                    ),
                    attr_assign("acc", var("a")),
                    ret(var("a")),
                ]),
        )
        // YCSB deposit-shaped body, looped: attribute read-modify-write.
        .method(
            MethodBuilder::new("pump")
                .param("n", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    assign("i", int(0)),
                    while_(
                        lt(var("i"), var("n")),
                        vec![
                            attr_assign("acc", add(attr("acc"), var("i"))),
                            assign("i", add(var("i"), int(1))),
                        ],
                    ),
                    ret(attr("acc")),
                ]),
        )
        .build();
    Program::new(vec![cell])
}

/// A hand-built single-block CFG with a `for` loop *in statement position* —
/// the shape the VM lowers through its own iteration protocol
/// (`IterInit`/`IterNext`) instead of the splitter's index-loop desugaring.
fn scan_method() -> CompiledMethod {
    CompiledMethod {
        name: "scan".into(),
        params: vec![],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec![],
            stmts: vec![
                assign("s", int(0)),
                assign("xs", list(vec![int(1), int(2), int(3), int(4)])),
                assign("i", int(0)),
                while_(
                    lt(var("i"), int(64)),
                    vec![
                        for_list("t", var("xs"), vec![assign("s", add(var("s"), var("t")))]),
                        assign("i", add(var("i"), int(1))),
                    ],
                ),
            ],
            terminator: Terminator::Return(var("s")),
        }],
        entry: BlockId(0),
    }
}

/// Compiles `profile_program` *without* optimizations and profiles one
/// Start activation of `method`.
fn profile_method(method: &str, args: Vec<Value>) -> OpPairProfile {
    let graph = se_compiler::compile(&profile_program()).expect("profile program compiles");
    let vm = VmProgram::compile_with_opts(&graph.program, VmOpts::none());
    let (class, m) = vm
        .method("Cell".into(), method.into())
        .expect("method lowered");
    let compiled_class = graph.program.class("Cell").unwrap();
    let mut state = compiled_class.class.initial_state("c", []);
    let mut profile = OpPairProfile::new();
    Vm::with_budget(1_000_000)
        .run_profiled(
            class,
            m,
            Activation::Start { args },
            &mut state,
            &mut profile,
        )
        .expect("profiled run succeeds");
    profile
}

/// `count(pair)` with a readable failure message listing the whole profile.
fn assert_hot(profile: &OpPairProfile, pair: (&'static str, &'static str), floor: u64) {
    let pairs = profile.pairs_by_count();
    let count = pairs
        .iter()
        .find(|(p, _)| *p == pair)
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(
        count >= floor,
        "pair {pair:?} executed {count} times (< {floor}); full profile: {pairs:?}"
    );
}

/// The spin loop is dominated by the compare-and-branch header and the
/// constant-operand counter bump — the `BinaryJumpIfFalse` and `ConstBinary`
/// superinstructions.
#[test]
fn spin_hot_pairs_are_the_fused_ones() {
    let profile = profile_method("spin", vec![Value::Int(256)]);
    assert_hot(&profile, ("Binary", "JumpIfFalse"), 250);
    assert_hot(&profile, ("Const", "Binary"), 250);
    // Paired update statements (`a = a + b; b = b + i`) — the profile
    // justification for the `BinaryBinary` superinstruction.
    assert_hot(&profile, ("Binary", "Binary"), 250);
}

/// The attribute read-modify-write loop is dominated by
/// `LoadAttr`+`Binary` and `Binary`+`StoreAttr` — the `LoadAttrBinary` and
/// `BinaryStoreAttr` superinstructions.
#[test]
fn pump_hot_pairs_are_the_fused_ones() {
    let profile = profile_method("pump", vec![Value::Int(256)]);
    assert_hot(&profile, ("LoadAttr", "Binary"), 250);
    assert_hot(&profile, ("Binary", "StoreAttr"), 250);
}

/// Statement-position list iteration executes the back-edge `Jump` +
/// `IterNext` pair once per element — the `IterNextJump` superinstruction.
#[test]
fn scan_hot_pairs_are_the_fused_ones() {
    let method = scan_method();
    let mut pool = PoolBuilder::default();
    let vm_method = lower_method_with(&mut pool, &method, VmOpts::none()).unwrap();
    let class = se_vm::VmClass {
        class: "Cell".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let mut profile = OpPairProfile::new();
    Vm::with_budget(1_000_000)
        .run_profiled(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut se_lang::EntityState::new(),
            &mut profile,
        )
        .expect("profiled run succeeds");
    assert_hot(&profile, ("Jump", "IterNext"), 250);
}
