//! Unit tests of the VM backend: end-to-end execution, suspension parity,
//! error parity on hand-built (unchecked) CFGs, and disassembler stability.

use std::collections::HashMap;

use se_ir::{
    drive_chain_with, process_invocation_with, Activation, Block, BlockId, BodyOutcome, BodyRunner,
    CompiledMethod, InterpBody, Invocation, RequestId, StepEffect, Terminator,
};
use se_lang::builder::*;
use se_lang::{EntityRef, EntityState, LangError, Type, Value};
use se_vm::{PoolBuilder, VmOpts, VmProgram};

fn figure1_graph() -> se_ir::DataflowGraph {
    se_compiler::compile(&se_lang::programs::figure1_program()).unwrap()
}

#[test]
fn figure1_buy_item_runs_on_vm() {
    let graph = figure1_graph();
    let vm = VmProgram::compile(&graph.program);
    assert!(vm.compiled_methods() >= 5, "all methods lowered");

    let user = EntityRef::new("User", "u");
    let item = EntityRef::new("Item", "i");
    let mut store = HashMap::new();
    store.insert(
        user,
        graph
            .program
            .class("User")
            .unwrap()
            .class
            .initial_state("u", [("balance".to_string(), Value::Int(100))]),
    );
    store.insert(
        item,
        graph.program.class("Item").unwrap().class.initial_state(
            "i",
            [
                ("price".to_string(), Value::Int(30)),
                ("stock".to_string(), Value::Int(5)),
            ],
        ),
    );
    let store = std::cell::RefCell::new(store);
    let root = Invocation::root(
        RequestId(1),
        user,
        "buy_item",
        vec![Value::Int(2), Value::Ref(item)],
    );
    let resp = drive_chain_with(
        &graph.program,
        &vm,
        root,
        |r| Ok(store.borrow()[r].clone()),
        |r, s| {
            store.borrow_mut().insert(*r, s);
        },
        16,
    );
    assert_eq!(resp.result.unwrap(), Value::Bool(true));
    assert_eq!(store.borrow()[&user]["balance"], Value::Int(40));
    assert_eq!(store.borrow()[&item]["stock"], Value::Int(3));
}

/// Suspension frames must carry byte-identical pruned environments.
#[test]
fn suspension_envs_match_interpreter() {
    let graph = figure1_graph();
    let vm = VmProgram::compile(&graph.program);
    let user = EntityRef::new("User", "u");
    let item = EntityRef::new("Item", "i");
    let init = graph
        .program
        .class("User")
        .unwrap()
        .class
        .initial_state("u", [("balance".to_string(), Value::Int(100))]);

    let root = Invocation::root(
        RequestId(7),
        user,
        "buy_item",
        vec![Value::Int(2), Value::Ref(item)],
    );
    let mut s_interp = init.clone();
    let eff_interp =
        process_invocation_with(&graph.program, &InterpBody, root.clone(), &mut s_interp);
    let mut s_vm = init;
    let eff_vm = process_invocation_with(&graph.program, &vm, root, &mut s_vm);
    assert_eq!(eff_interp, eff_vm);
    assert_eq!(s_interp, s_vm);
    let StepEffect::Emit(inv) = eff_vm else {
        panic!("buy_item must suspend on the remote call")
    };
    assert_eq!(inv.stack.len(), 1, "one suspended frame");
}

/// A hand-built method reading an undefined variable: both backends raise
/// `UndefinedVariable` — even when a later-evaluated subexpression would
/// also fail (error *ordering* parity).
#[test]
fn undefined_variable_error_parity() {
    let method = CompiledMethod {
        name: "bad".into(),
        params: vec![],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec![],
            stmts: vec![],
            // ghost + (1/0): the undefined read must win over the division.
            terminator: Terminator::Return(add(var("ghost"), div(int(1), int(0)))),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Ghostly".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };

    let mut state = EntityState::new();
    let interp_err = InterpBody
        .run_body(
            "Ghostly".into(),
            &method,
            Activation::Start { args: vec![] },
            &mut state.clone(),
        )
        .unwrap_err();
    let vm_err = se_vm::Vm::new()
        .run(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut state,
        )
        .unwrap_err();
    assert_eq!(interp_err, LangError::UndefinedVariable("ghost".into()));
    assert_eq!(interp_err, vm_err);
}

/// Nested control flow inside a single block body (legal in hand-built
/// CFGs, even though the splitter always lowers it to terminators).
#[test]
fn nested_control_flow_in_block_body() {
    let method = CompiledMethod {
        name: "nested".into(),
        params: vec![("n".into(), Type::Int)],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["n".into()],
            stmts: vec![
                assign("acc", int(0)),
                for_list(
                    "x",
                    list(vec![int(1), int(2), int(3)]),
                    vec![if_else(
                        gt(var("x"), var("n")),
                        vec![assign("acc", add(var("acc"), var("x")))],
                        vec![],
                    )],
                ),
                assign("i", int(0)),
                while_(
                    lt(var("i"), int(4)),
                    vec![
                        assign("acc", add(var("acc"), int(10))),
                        assign("i", add(var("i"), int(1))),
                    ],
                ),
            ],
            terminator: Terminator::Return(var("acc")),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Nested".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    for n in [0i64, 1, 2, 3] {
        let mut st_i = EntityState::new();
        let mut st_v = EntityState::new();
        let interp = InterpBody
            .run_body(
                "Nested".into(),
                &method,
                Activation::Start {
                    args: vec![Value::Int(n)],
                },
                &mut st_i,
            )
            .unwrap();
        let vm = se_vm::Vm::new()
            .run(
                &class,
                &class.methods[0],
                Activation::Start {
                    args: vec![Value::Int(n)],
                },
                &mut st_v,
            )
            .unwrap();
        assert_eq!(interp, vm, "n = {n}");
        let BodyOutcome::Return(v) = vm else {
            panic!("must return")
        };
        // 1+2+3 above n, plus 4 * 10 from the while loop.
        let expected = [1, 2, 3].iter().filter(|x| **x > n).sum::<i64>() + 40;
        assert_eq!(v, Value::Int(expected));
    }
}

/// A runaway loop hits the VM's step budget, like the interpreter's.
#[test]
fn runaway_loop_hits_budget() {
    let method = CompiledMethod {
        name: "spin_forever".into(),
        params: vec![],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec![],
            stmts: vec![while_(lit(true), vec![assign("x", int(1))])],
            terminator: Terminator::Return(int(0)),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Spin".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let err = se_vm::Vm::with_budget(10_000)
        .run(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert_eq!(err, LangError::StepBudgetExhausted);
}

/// A method the lowerer rejects (remote call in a block body) falls back to
/// the interpreter, which reports the violation.
#[test]
fn invalid_split_falls_back_to_interp() {
    let method = CompiledMethod {
        name: "invalid".into(),
        params: vec![("x".into(), Type::entity("Other"))],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["x".into()],
            stmts: vec![expr_stmt(call(var("x"), "m", vec![]))],
            terminator: Terminator::Return(int(0)),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    assert!(se_vm::lower_method(&mut pool, &method).is_err());

    // Through the VmProgram runner: lookup misses, interp handles it.
    let vm = VmProgram::default();
    let err = vm
        .run_body(
            "Bad".into(),
            &method,
            Activation::Start {
                args: vec![Value::Ref(EntityRef::new("Other", "o"))],
            },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("unexpected remote call"));
}

/// Disassembly is deterministic and structurally complete.
#[test]
fn disasm_is_stable_and_complete() {
    let graph = figure1_graph();
    let vm1 = VmProgram::compile(&graph.program);
    let vm2 = VmProgram::compile(&graph.program);
    let text1: String = vm1.classes().iter().map(se_vm::disasm_class).collect();
    let text2: String = vm2.classes().iter().map(se_vm::disasm_class).collect();
    assert_eq!(text1, text2, "disassembly must be deterministic");
    assert!(text1.contains("class User bytecode:"));
    assert!(text1.contains("method buy_item"));
    assert!(text1.contains("suspend call"));
    assert!(text1.contains("resume b"));
    assert!(text1.contains("self.balance"));
}

fn get_plus_method() -> CompiledMethod {
    CompiledMethod {
        name: "get_plus".into(),
        params: vec![("d".into(), Type::Int)],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["d".into()],
            stmts: vec![],
            terminator: Terminator::Return(add(attr("n"), var("d"))),
        }],
        entry: BlockId(0),
    }
}

/// Golden disassembly of a tiny hand-built method, pinning the text format —
/// and that the optimizing lowering fuses the `LoadAttr`+`Binary` pair.
#[test]
fn disasm_golden() {
    let method = get_plus_method();
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Counter".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let text = se_vm::disasm_method(&class, &class.methods[0]);
    let expected = "\
method get_plus (1 blocks, 1 locals, 3 regs, 2 ops)
  locals: r0=d
  b0:
       0  r1 = Add self.n r0(d)
       1  return r1
";
    assert_eq!(text, expected);
}

/// `VmOpts::none()` (the `SE_VM_OPT=off` escape hatch) must emit exactly the
/// unoptimized lowering — this golden pins the pre-optimization bytecode.
#[test]
fn disasm_golden_unoptimized() {
    let method = get_plus_method();
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method_with(&mut pool, &method, se_vm::VmOpts::none()).unwrap();
    let class = se_vm::VmClass {
        class: "Counter".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let text = se_vm::disasm_method(&class, &class.methods[0]);
    let expected = "\
method get_plus (1 blocks, 1 locals, 3 regs, 3 ops)
  locals: r0=d
  b0:
       0  r2 = self.n
       1  r1 = Add r2 r0(d)
       2  return r1
";
    assert_eq!(text, expected);
}

/// Golden render of every superinstruction opcode (hand-assembled so each
/// variant's stable text form is pinned independent of fusion heuristics).
#[test]
fn disasm_golden_superinstructions() {
    use se_lang::BinOp;
    use se_vm::{CacheCell, ConstPool, Op};
    let m = se_vm::VmMethod {
        name: "ops".into(),
        code: vec![
            Op::LoadAttrBinary {
                op: BinOp::Add,
                dst: 1,
                name: 0,
                rhs: 0,
                hint: CacheCell::new(),
            },
            Op::BinaryStoreAttr {
                op: BinOp::Sub,
                name: 0,
                lhs: 0,
                rhs: 1,
                hint: CacheCell::new(),
            },
            Op::ConstBinary {
                op: BinOp::Add,
                dst: 0,
                lhs: 0,
                idx: 0,
            },
            Op::BinaryJumpIfFalse {
                op: BinOp::Lt,
                lhs: 0,
                rhs: 1,
                to: 0,
            },
            Op::BinaryBinary {
                op1: BinOp::Add,
                dst1: 1,
                lhs1: 0,
                rhs1: 1,
                op2: BinOp::Sub,
                dst2: 2,
                lhs2: 1,
                rhs2: 0,
            },
            Op::BinaryBranch {
                op: BinOp::Lt,
                lhs: 0,
                rhs: 1,
                iftrue: 1,
                iffalse: 8,
            },
            Op::ConstBinaryBranch {
                op1: BinOp::Add,
                dst: 0,
                lhs: 0,
                idx: 0,
                op2: BinOp::Lt,
                rhs: 1,
                iftrue: 1,
                iffalse: 8,
            },
            Op::IterNextJump {
                list: 1,
                idx: 2,
                dst: 0,
                body: 1,
                end: 8,
            },
            Op::Return { src: 0 },
        ],
        block_entry: vec![0],
        entry: BlockId(0),
        locals: vec!["x".into()],
        local_index: vec![("x".into(), 0)],
        nparams: 1,
        nregs: 3,
    };
    let class = se_vm::VmClass {
        class: "Golden".into(),
        pool: ConstPool {
            values: vec![Value::Int(1)],
            names: vec!["acc".into()],
        },
        methods: vec![m],
    };
    let text = se_vm::disasm_method(&class, &class.methods[0]);
    let expected = "\
method ops (1 blocks, 1 locals, 3 regs, 9 ops)
  locals: r0=x
  b0:
       0  r1 = Add self.acc r0(x)
       1  self.acc = Sub r0(x) r1
       2  r0(x) = Add r0(x) const[0]  ; 1
       3  if not Lt r0(x) r1 jump 0
       4  r1 = Add r0(x) r1; r2 = Sub r1 r0(x)
       5  if Lt r0(x) r1 jump 1 else jump 8
       6  r0(x) = Add r0(x) const[0]; if Lt r0(x) r1 jump 1 else jump 8
       7  r0(x) = iter_next r1 idx=r2 jump 1 else jump 8
       8  return r0(x)
";
    assert_eq!(text, expected);
}

/// End-to-end golden through the full pipeline (compiler → lowering →
/// every fusion pass): the counted loop — the dominant hot-path shape —
/// must collapse to *two* dispatches per iteration, one [`BinaryBinary`]
/// for the paired updates and one [`ConstBinaryBranch`] for the counter
/// bump + back-edge re-test.
#[test]
fn disasm_golden_fused_counted_loop() {
    let cell = se_lang::builder::ClassBuilder::new("Cell")
        .attr_default("cell_id", Type::Str, Value::Str(String::new()))
        .attr_default("acc", Type::Int, Value::Int(0))
        .key("cell_id")
        .method(
            se_lang::builder::MethodBuilder::new("spin")
                .param("n", Type::Int)
                .returns(Type::Int)
                .body(vec![
                    assign("i", int(0)),
                    assign("a", int(1)),
                    assign("b", int(2)),
                    while_(
                        lt(var("i"), var("n")),
                        vec![
                            assign("a", add(var("a"), var("b"))),
                            assign("b", add(var("b"), var("i"))),
                            assign("i", add(var("i"), int(1))),
                        ],
                    ),
                    attr_assign("acc", var("a")),
                    ret(var("a")),
                ]),
        )
        .build();
    let graph = se_compiler::compile(&se_lang::Program::new(vec![cell])).unwrap();
    // Pin the optimized lowering: the golden is the *fused* loop, so the
    // test must not inherit a `SE_VM_OPT=off` lane's environment.
    let vm = VmProgram::compile_with_opts(&graph.program, VmOpts::all());
    let (class, m) = vm.method("Cell".into(), "spin".into()).unwrap();
    let text = se_vm::disasm_method(class, m);
    let expected = "\
method spin (4 blocks, 4 locals, 5 regs, 8 ops)
  locals: r0=n r1=i r2=a r3=b
  b0:
       0  r1(i) = const[0]  ; 0
       1  r2(a) = const[1]  ; 1
       2  r3(b) = const[2]  ; 2
  b1:
       3  if not Lt r1(i) r0(n) jump 6
  b2:
       4  r2(a) = Add r2(a) r3(b); r3(b) = Add r3(b) r1(i)
       5  r1(i) = Add r1(i) const[1]; if Lt r1(i) r0(n) jump 4 else jump 6
  b3:
       6  self.acc = r2(a)
       7  return r2(a)
";
    assert_eq!(text, expected);
}

/// Regression (latent Start-activation arity bug): a call with more
/// arguments than *parameters* — but fewer than local registers — used to
/// bind the extras into unrelated local registers. It must raise the
/// protocol's `ArityMismatch` instead.
#[test]
fn start_arity_overflow_raises_protocol_error() {
    let method = CompiledMethod {
        name: "f".into(),
        params: vec![("a".into(), Type::Int)],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["a".into()],
            // `b` is a local register but never a parameter; on the old
            // code the extra argument landed in it and `return b`
            // silently produced the attacker-controlled value.
            stmts: vec![if_else(lit(false), vec![assign("b", int(0))], vec![])],
            terminator: Terminator::Return(var("b")),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "C".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let err = se_vm::Vm::new()
        .run(
            &class,
            &class.methods[0],
            Activation::Start {
                args: vec![Value::Int(1), Value::Int(42)],
            },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        LangError::ArityMismatch {
            method: "C.f".into(),
            expected: 1,
            actual: 2,
        }
    );
    // The exact-arity call still runs (and `b` stays undefined, like the
    // interpreter's environment).
    let err = se_vm::Vm::new()
        .run(
            &class,
            &class.methods[0],
            Activation::Start {
                args: vec![Value::Int(1)],
            },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert_eq!(err, LangError::UndefinedVariable("b".into()));
}

/// Regression (`IterNext` counter wrap): a negative loop counter used to be
/// cast `as usize`, silently terminating the loop; it must raise the
/// interpreter's list-index error instead. Only reachable by hand-assembled
/// code (emitted loops never alias the counter register).
#[test]
fn iter_next_negative_counter_errors() {
    use se_vm::{ConstPool, Op};
    let m = se_vm::VmMethod {
        name: "evil_iter".into(),
        code: vec![
            Op::Const { dst: 0, idx: 0 },
            Op::Const { dst: 1, idx: 1 },
            Op::IterNext {
                list: 0,
                idx: 1,
                dst: 2,
                end: 3,
            },
            Op::Return { src: 1 },
        ],
        block_entry: vec![0],
        entry: BlockId(0),
        locals: vec![],
        local_index: vec![],
        nparams: 0,
        nregs: 3,
    };
    let class = se_vm::VmClass {
        class: "Evil".into(),
        pool: ConstPool {
            values: vec![Value::List(vec![Value::Int(7)]), Value::Int(-1)],
            names: vec![],
        },
        methods: vec![m],
    };
    let err = se_vm::Vm::new()
        .run(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        LangError::runtime("list index -1 out of range (len 1)".to_string())
    );
}
