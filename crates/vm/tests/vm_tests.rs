//! Unit tests of the VM backend: end-to-end execution, suspension parity,
//! error parity on hand-built (unchecked) CFGs, and disassembler stability.

use std::collections::HashMap;

use se_ir::{
    drive_chain_with, process_invocation_with, Activation, Block, BlockId, BodyOutcome, BodyRunner,
    CompiledMethod, InterpBody, Invocation, RequestId, StepEffect, Terminator,
};
use se_lang::builder::*;
use se_lang::{EntityRef, EntityState, LangError, Type, Value};
use se_vm::{PoolBuilder, VmProgram};

fn figure1_graph() -> se_ir::DataflowGraph {
    se_compiler::compile(&se_lang::programs::figure1_program()).unwrap()
}

#[test]
fn figure1_buy_item_runs_on_vm() {
    let graph = figure1_graph();
    let vm = VmProgram::compile(&graph.program);
    assert!(vm.compiled_methods() >= 5, "all methods lowered");

    let user = EntityRef::new("User", "u");
    let item = EntityRef::new("Item", "i");
    let mut store = HashMap::new();
    store.insert(
        user,
        graph
            .program
            .class("User")
            .unwrap()
            .class
            .initial_state("u", [("balance".to_string(), Value::Int(100))]),
    );
    store.insert(
        item,
        graph.program.class("Item").unwrap().class.initial_state(
            "i",
            [
                ("price".to_string(), Value::Int(30)),
                ("stock".to_string(), Value::Int(5)),
            ],
        ),
    );
    let store = std::cell::RefCell::new(store);
    let root = Invocation::root(
        RequestId(1),
        user,
        "buy_item",
        vec![Value::Int(2), Value::Ref(item)],
    );
    let resp = drive_chain_with(
        &graph.program,
        &vm,
        root,
        |r| Ok(store.borrow()[r].clone()),
        |r, s| {
            store.borrow_mut().insert(*r, s);
        },
        16,
    );
    assert_eq!(resp.result.unwrap(), Value::Bool(true));
    assert_eq!(store.borrow()[&user]["balance"], Value::Int(40));
    assert_eq!(store.borrow()[&item]["stock"], Value::Int(3));
}

/// Suspension frames must carry byte-identical pruned environments.
#[test]
fn suspension_envs_match_interpreter() {
    let graph = figure1_graph();
    let vm = VmProgram::compile(&graph.program);
    let user = EntityRef::new("User", "u");
    let item = EntityRef::new("Item", "i");
    let init = graph
        .program
        .class("User")
        .unwrap()
        .class
        .initial_state("u", [("balance".to_string(), Value::Int(100))]);

    let root = Invocation::root(
        RequestId(7),
        user,
        "buy_item",
        vec![Value::Int(2), Value::Ref(item)],
    );
    let mut s_interp = init.clone();
    let eff_interp =
        process_invocation_with(&graph.program, &InterpBody, root.clone(), &mut s_interp);
    let mut s_vm = init;
    let eff_vm = process_invocation_with(&graph.program, &vm, root, &mut s_vm);
    assert_eq!(eff_interp, eff_vm);
    assert_eq!(s_interp, s_vm);
    let StepEffect::Emit(inv) = eff_vm else {
        panic!("buy_item must suspend on the remote call")
    };
    assert_eq!(inv.stack.len(), 1, "one suspended frame");
}

/// A hand-built method reading an undefined variable: both backends raise
/// `UndefinedVariable` — even when a later-evaluated subexpression would
/// also fail (error *ordering* parity).
#[test]
fn undefined_variable_error_parity() {
    let method = CompiledMethod {
        name: "bad".into(),
        params: vec![],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec![],
            stmts: vec![],
            // ghost + (1/0): the undefined read must win over the division.
            terminator: Terminator::Return(add(var("ghost"), div(int(1), int(0)))),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Ghostly".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };

    let mut state = EntityState::new();
    let interp_err = InterpBody
        .run_body(
            "Ghostly".into(),
            &method,
            Activation::Start { args: vec![] },
            &mut state.clone(),
        )
        .unwrap_err();
    let vm_err = se_vm::Vm::new()
        .run(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut state,
        )
        .unwrap_err();
    assert_eq!(interp_err, LangError::UndefinedVariable("ghost".into()));
    assert_eq!(interp_err, vm_err);
}

/// Nested control flow inside a single block body (legal in hand-built
/// CFGs, even though the splitter always lowers it to terminators).
#[test]
fn nested_control_flow_in_block_body() {
    let method = CompiledMethod {
        name: "nested".into(),
        params: vec![("n".into(), Type::Int)],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["n".into()],
            stmts: vec![
                assign("acc", int(0)),
                for_list(
                    "x",
                    list(vec![int(1), int(2), int(3)]),
                    vec![if_else(
                        gt(var("x"), var("n")),
                        vec![assign("acc", add(var("acc"), var("x")))],
                        vec![],
                    )],
                ),
                assign("i", int(0)),
                while_(
                    lt(var("i"), int(4)),
                    vec![
                        assign("acc", add(var("acc"), int(10))),
                        assign("i", add(var("i"), int(1))),
                    ],
                ),
            ],
            terminator: Terminator::Return(var("acc")),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Nested".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    for n in [0i64, 1, 2, 3] {
        let mut st_i = EntityState::new();
        let mut st_v = EntityState::new();
        let interp = InterpBody
            .run_body(
                "Nested".into(),
                &method,
                Activation::Start {
                    args: vec![Value::Int(n)],
                },
                &mut st_i,
            )
            .unwrap();
        let vm = se_vm::Vm::new()
            .run(
                &class,
                &class.methods[0],
                Activation::Start {
                    args: vec![Value::Int(n)],
                },
                &mut st_v,
            )
            .unwrap();
        assert_eq!(interp, vm, "n = {n}");
        let BodyOutcome::Return(v) = vm else {
            panic!("must return")
        };
        // 1+2+3 above n, plus 4 * 10 from the while loop.
        let expected = [1, 2, 3].iter().filter(|x| **x > n).sum::<i64>() + 40;
        assert_eq!(v, Value::Int(expected));
    }
}

/// A runaway loop hits the VM's step budget, like the interpreter's.
#[test]
fn runaway_loop_hits_budget() {
    let method = CompiledMethod {
        name: "spin_forever".into(),
        params: vec![],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec![],
            stmts: vec![while_(lit(true), vec![assign("x", int(1))])],
            terminator: Terminator::Return(int(0)),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Spin".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let err = se_vm::Vm::with_budget(10_000)
        .run(
            &class,
            &class.methods[0],
            Activation::Start { args: vec![] },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert_eq!(err, LangError::StepBudgetExhausted);
}

/// A method the lowerer rejects (remote call in a block body) falls back to
/// the interpreter, which reports the violation.
#[test]
fn invalid_split_falls_back_to_interp() {
    let method = CompiledMethod {
        name: "invalid".into(),
        params: vec![("x".into(), Type::entity("Other"))],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["x".into()],
            stmts: vec![expr_stmt(call(var("x"), "m", vec![]))],
            terminator: Terminator::Return(int(0)),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    assert!(se_vm::lower_method(&mut pool, &method).is_err());

    // Through the VmProgram runner: lookup misses, interp handles it.
    let vm = VmProgram::default();
    let err = vm
        .run_body(
            "Bad".into(),
            &method,
            Activation::Start {
                args: vec![Value::Ref(EntityRef::new("Other", "o"))],
            },
            &mut EntityState::new(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("unexpected remote call"));
}

/// Disassembly is deterministic and structurally complete.
#[test]
fn disasm_is_stable_and_complete() {
    let graph = figure1_graph();
    let vm1 = VmProgram::compile(&graph.program);
    let vm2 = VmProgram::compile(&graph.program);
    let text1: String = vm1.classes().iter().map(se_vm::disasm_class).collect();
    let text2: String = vm2.classes().iter().map(se_vm::disasm_class).collect();
    assert_eq!(text1, text2, "disassembly must be deterministic");
    assert!(text1.contains("class User bytecode:"));
    assert!(text1.contains("method buy_item"));
    assert!(text1.contains("suspend call"));
    assert!(text1.contains("resume b"));
    assert!(text1.contains("self.balance"));
}

/// Golden disassembly of a tiny hand-built method, pinning the text format.
#[test]
fn disasm_golden() {
    let method = CompiledMethod {
        name: "get_plus".into(),
        params: vec![("d".into(), Type::Int)],
        ret: Type::Int,
        transactional: false,
        blocks: vec![Block {
            id: BlockId(0),
            params: vec!["d".into()],
            stmts: vec![],
            terminator: Terminator::Return(add(attr("n"), var("d"))),
        }],
        entry: BlockId(0),
    };
    let mut pool = PoolBuilder::default();
    let vm_method = se_vm::lower_method(&mut pool, &method).unwrap();
    let class = se_vm::VmClass {
        class: "Counter".into(),
        pool: pool.finish(),
        methods: vec![vm_method],
    };
    let text = se_vm::disasm_method(&class, &class.methods[0]);
    let expected = "\
method get_plus (1 blocks, 1 locals, 3 regs, 3 ops)
  locals: r0=d
  b0:
       0  r2 = self.n
       1  r1 = Add r2 r0(d)
       2  return r1
";
    assert_eq!(text, expected);
}
