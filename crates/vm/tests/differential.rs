//! Interp-vs-VM differential suite.
//!
//! Random well-typed programs (strategies from `se_lang::arb`) are compiled
//! through the full pipeline, then every invocation chain is executed under
//! the tree-walking interpreter and the bytecode VM **in lockstep**: after
//! every hop the two backends must have produced the identical
//! [`StepEffect`] (same emitted invocation — frames, pruned environments,
//! arguments — or same response, including errors) and identical entity
//! states across the whole store.
//!
//! Every chain runs against *two* compilations of the bytecode — the full
//! optimization pipeline ([`VmOpts::all`]: folding, superinstructions,
//! quickening) and the plain lowering ([`VmOpts::none`], the `SE_VM_OPT=off`
//! escape hatch) — each locked against the interpreter, so the histories of
//! the two settings are byte-identical by transitivity.

use std::collections::HashMap;

use proptest::prelude::*;
use se_ir::{
    process_invocation_with, CompiledProgram, InterpBody, Invocation, RequestId, Response,
    StepEffect,
};
use se_lang::{arb, EntityRef, EntityState, Value};
use se_vm::{VmOpts, VmProgram};

/// Drives one invocation chain under both backends, asserting identical
/// effects and stores after every hop. Returns the final response and the
/// interp-side store.
fn run_lockstep(
    program: &CompiledProgram,
    vm: &VmProgram,
    root: Invocation,
    init: &HashMap<EntityRef, EntityState>,
) -> (Response, HashMap<EntityRef, EntityState>) {
    let mut store_i = init.clone();
    let mut store_v = init.clone();
    let mut cur_i = root.clone();
    let mut cur_v = root;
    for hop in 0..8192 {
        let target = cur_i.target;
        let mut si = store_i.get(&target).cloned().expect("interp entity exists");
        let eff_i = process_invocation_with(program, &InterpBody, cur_i, &mut si);
        store_i.insert(target, si);

        let mut sv = store_v
            .get(&cur_v.target)
            .cloned()
            .expect("vm entity exists");
        let eff_v = process_invocation_with(program, vm, cur_v, &mut sv);
        store_v.insert(target, sv);

        assert_eq!(eff_i, eff_v, "hop {hop}: step effects diverged");
        for (r, state) in &store_i {
            assert_eq!(
                Some(state),
                store_v.get(r),
                "hop {hop}: state of {r} diverged"
            );
        }
        match eff_i {
            StepEffect::Respond(resp) => return (resp, store_i),
            StepEffect::Emit(next) => {
                cur_i = next;
                let StepEffect::Emit(next_v) = eff_v else {
                    unreachable!("effects compared equal")
                };
                cur_v = next_v;
            }
        }
    }
    panic!("invocation chain exceeded 8192 hops");
}

fn initial_store(
    program: &CompiledProgram,
) -> (EntityRef, EntityRef, HashMap<EntityRef, EntityState>) {
    let caller = EntityRef::new("ArbCaller", "a1");
    let callee = EntityRef::new("ArbCallee", "b1");
    let mut init = HashMap::new();
    init.insert(
        caller,
        program
            .class("ArbCaller")
            .unwrap()
            .class
            .initial_state("a1", []),
    );
    init.insert(
        callee,
        program
            .class("ArbCallee")
            .unwrap()
            .class
            .initial_state("b1", []),
    );
    (caller, callee, init)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random program, chained invocation (`go` hops to the callee and
    /// back, possibly from inside branches and loops), then two direct
    /// callee invocations against the mutated store.
    #[test]
    fn interp_and_vm_agree(
        (program, _, _) in arb::arb_two_class_program(),
        n in -50i64..50,
        x in -50i64..50,
        y in -50i64..50,
    ) {
        let graph = se_compiler::compile(&program)
            .unwrap_or_else(|e| panic!("generated program must compile, got {e:?}"));
        for opts in [VmOpts::all(), VmOpts::none()] {
            let vm = VmProgram::compile_with_opts(&graph.program, opts);
            prop_assert_eq!(
                vm.compiled_methods(),
                3,
                "all split methods must lower to bytecode"
            );

            let (caller, callee, init) = initial_store(&graph.program);
            let root = Invocation::root(
                RequestId(1),
                caller,
                "go",
                vec![Value::Int(n), Value::Ref(callee)],
            );
            let (_, after) = run_lockstep(&graph.program, &vm, root, &init);

            let bump = Invocation::root(
                RequestId(2),
                callee,
                "bump",
                vec![Value::Int(x), Value::Int(y)],
            );
            let (_, after) = run_lockstep(&graph.program, &vm, bump, &after);

            let poke = Invocation::root(RequestId(3), callee, "poke", vec![Value::Int(x)]);
            run_lockstep(&graph.program, &vm, poke, &after);
        }
    }

    /// Error paths diverge neither: wrong arity and unknown methods produce
    /// the same failed response under both backends.
    #[test]
    fn error_responses_agree((program, _, _) in arb::arb_two_class_program(), n in -50i64..50) {
        let graph = se_compiler::compile(&program)
            .unwrap_or_else(|e| panic!("generated program must compile, got {e:?}"));
        for opts in [VmOpts::all(), VmOpts::none()] {
            let vm = VmProgram::compile_with_opts(&graph.program, opts);
            let (caller, callee, init) = initial_store(&graph.program);
            for root in [
                Invocation::root(RequestId(9), caller, "go", vec![Value::Int(n)]),
                Invocation::root(RequestId(10), callee, "bump", vec![]),
                Invocation::root(RequestId(11), callee, "nope", vec![]),
            ] {
                run_lockstep(&graph.program, &vm, root, &init);
            }
        }
    }
}
