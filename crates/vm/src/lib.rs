//! # se-vm — bytecode compiler + register VM for split entity methods
//!
//! The second execution backend of the repository (the first being the
//! tree-walking interpreter in `se-lang` / `se-ir`). After the compiler
//! pipeline splits entity methods into block CFGs, both backends can run
//! them; this crate lowers those CFGs once — at deploy time — to a compact
//! register instruction set with per-class constant pools, then executes
//! them in a flat dispatch loop:
//!
//! * [`lower`] — the bytecode compiler: register allocation for locals,
//!   stack-disciplined temporaries, short-circuit lowering, and a
//!   must-definedness analysis that elides variable-defined checks the
//!   interpreter performs implicitly via its environment map;
//! * [`Vm`] — the dispatch loop, a drop-in [`se_ir::BodyRunner`];
//! * [`VmProgram`] — the deploy-time cache of compiled bodies, keyed per
//!   class/method;
//! * [`disasm`] — a disassembler with stable text output (see the
//!   `compiler_explorer` example).
//!
//! **Equivalence contract.** For any split program that completes within
//! the step budget, the VM produces byte-identical return values,
//! entity-state effects, emitted invocations and suspension frames as the
//! interpreter — including errors and their ordering. (The budget itself
//! meters different units per backend — statements vs. instructions — so
//! only the exact tripping point of `StepBudgetExhausted` on runaway loops
//! differs.) `tests/differential.rs` enforces the contract with randomized
//! programs executed under both backends in lockstep.
//!
//! ```
//! use se_ir::{ExecBackend, Invocation, RequestId, drive_chain_with};
//! use se_lang::{EntityRef, Value};
//!
//! let program = se_lang::programs::figure1_program();
//! let graph = se_compiler::compile(&program).unwrap();
//! let vm = se_vm::VmProgram::compile(&graph.program); // deploy-time lowering
//!
//! let user = EntityRef::new("User", "u");
//! let item = EntityRef::new("Item", "i");
//! let mut store = std::collections::HashMap::new();
//! store.insert(user, graph.program.class("User").unwrap().class.initial_state(
//!     "u", [("balance".to_string(), Value::Int(100))]));
//! store.insert(item, graph.program.class("Item").unwrap().class.initial_state(
//!     "i", [("price".to_string(), Value::Int(30)), ("stock".to_string(), Value::Int(5))]));
//!
//! let store = std::cell::RefCell::new(store);
//! let root = Invocation::root(RequestId(1), user, "buy_item",
//!     vec![Value::Int(2), Value::Ref(item)]);
//! let resp = drive_chain_with(
//!     &graph.program, &vm, root,
//!     |r| Ok(store.borrow()[r].clone()),
//!     |r, s| { store.borrow_mut().insert(*r, s); },
//!     16,
//! );
//! assert_eq!(resp.result.unwrap(), Value::Bool(true));
//! ```

#![warn(missing_docs)]

pub mod disasm;
pub mod lower;
pub mod op;
pub mod program;
pub mod vm;

pub use disasm::{disasm_class, disasm_method};
pub use lower::{lower_method, lower_method_with, PoolBuilder, VmOpts};
pub use op::{CacheCell, ConstPool, Op, Reg, SuspendSpec};
pub use program::{runner_for, runner_for_upgrade, VmClass, VmMethod, VmProgram};
pub use vm::Vm;
