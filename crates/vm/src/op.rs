//! The register instruction set and per-class constant pool.
//!
//! Design points, mirroring classic register VMs (Lua, and the `moon`
//! exemplar the roadmap references):
//!
//! * **registers, not an operand stack** — every method body gets a flat
//!   register file; named locals occupy the low registers (one per distinct
//!   name), expression temporaries live above them in stack discipline, so
//!   an assignment like `i = i + 1` is a single [`Op::Binary`] instead of a
//!   map lookup, two pushes and a map insert;
//! * **per-class constant pool** — literal [`Value`]s and attribute/method
//!   name [`Symbol`]s are deduplicated per class (keyed on the interned
//!   symbol / value) and referenced by `u16` index, keeping instructions
//!   compact and letting every method of a class share one pool;
//! * **suspension as an instruction** — [`Op::Suspend`] carries everything
//!   the invocation-event protocol needs to park the method at a remote
//!   call: callee, argument window, continuation block and the exact set of
//!   live registers to materialize into the continuation environment.

use se_ir::BlockId;
use se_lang::{BinOp, Builtin, Symbol, UnOp, Value};

/// Index of a register in a method's register file.
pub type Reg = u16;

/// Index into a method's code array (jump target).
pub type CodeIdx = u32;

/// One instruction of the register VM.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = pool.values[idx].clone()`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Index into the class constant pool.
        idx: u16,
    },
    /// `dst = Bool(val)` — materialized by short-circuit lowering.
    Bool {
        /// Destination register.
        dst: Reg,
        /// The boolean to load.
        val: bool,
    },
    /// `dst = src.clone()`; errors with `UndefinedVariable` if `src` is an
    /// unwritten local register.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Checks that local register `src` holds a value (a variable read at
    /// this program point), erroring with `UndefinedVariable` otherwise.
    /// Emitted only where the lowering pass cannot prove definedness.
    Defined {
        /// Register that must be defined.
        src: Reg,
    },
    /// `dst = state[name].clone()` — a `self.<attr>` read.
    LoadAttr {
        /// Destination register.
        dst: Reg,
        /// Index into the class name pool.
        name: u16,
    },
    /// `state[name] = src.clone()` — a `self.<attr> = …` write; errors if
    /// the attribute was never declared.
    StoreAttr {
        /// Index into the class name pool.
        name: u16,
        /// Register holding the value to store.
        src: Reg,
    },
    /// `dst = lhs <op> rhs` for non-logical operators (logical `and`/`or`
    /// are lowered to jumps for short-circuit evaluation).
    Binary {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst = <op> src`.
    Unary {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = Bool(src.truthy())` — the coercion `and`/`or` apply to their
    /// result.
    Truthy {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = builtin(regs[start..start+argc])`, consuming the argument
    /// window.
    CallBuiltin {
        /// The builtin to invoke.
        f: Builtin,
        /// Destination register.
        dst: Reg,
        /// First register of the contiguous argument window.
        start: Reg,
        /// Number of arguments.
        argc: u8,
    },
    /// `dst = base[idx]` (list / map / string indexing).
    Index {
        /// Destination register.
        dst: Reg,
        /// Register holding the indexed value.
        base: Reg,
        /// Register holding the index.
        idx: Reg,
    },
    /// `dst = [regs[start..start+count]]`, consuming the element window.
    MakeList {
        /// Destination register.
        dst: Reg,
        /// First register of the contiguous element window.
        start: Reg,
        /// Number of elements.
        count: u16,
    },
    /// Unconditional jump.
    Jump {
        /// Target code index.
        to: CodeIdx,
    },
    /// Jump when `cond` is truthy.
    JumpIfTrue {
        /// Condition register.
        cond: Reg,
        /// Target code index.
        to: CodeIdx,
    },
    /// Jump when `cond` is falsy.
    JumpIfFalse {
        /// Condition register.
        cond: Reg,
        /// Target code index.
        to: CodeIdx,
    },
    /// Begins a `for` loop: checks that `list` holds a list and zeroes the
    /// iteration counter in `idx`.
    IterInit {
        /// Register holding the iterated list.
        list: Reg,
        /// Register receiving the iteration counter.
        idx: Reg,
    },
    /// Advances a `for` loop: binds the next element to `dst` and bumps
    /// `idx`, or jumps to `end` when the list is exhausted.
    IterNext {
        /// Register holding the iterated list.
        list: Reg,
        /// Register holding the iteration counter.
        idx: Reg,
        /// Register bound to the current element (the loop variable).
        dst: Reg,
        /// Code index to jump to when exhausted.
        end: CodeIdx,
    },
    /// Checks that `src` holds an entity reference (the callee check a
    /// remote call performs *before* evaluating its arguments).
    EnsureRef {
        /// Register that must hold a `Value::Ref`.
        src: Reg,
    },
    /// Returns the value in `src` to the caller.
    Return {
        /// Register holding the return value.
        src: Reg,
    },
    /// Suspends the method on a remote call (see [`SuspendSpec`]).
    Suspend {
        /// Register holding the callee entity reference.
        target: Reg,
        /// The suspension descriptor.
        spec: Box<SuspendSpec>,
    },
}

/// Everything a [`Op::Suspend`] needs to park the method at a remote call.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspendSpec {
    /// Callee method name.
    pub method: Symbol,
    /// First register of the contiguous evaluated-argument window.
    pub args_start: Reg,
    /// Number of arguments.
    pub argc: u8,
    /// Variable receiving the remote call's return value, if used.
    pub result_var: Option<Symbol>,
    /// Block execution resumes at when the result arrives.
    pub resume: BlockId,
    /// The continuation environment: `(name, register)` for each of the
    /// resume block's live-in variables. Registers still unset at
    /// suspension are skipped — exactly the interpreter's behavior of
    /// retaining only *defined* live variables.
    pub save: Vec<(Symbol, Reg)>,
}

/// The per-class constant pool: literal values and attribute names shared by
/// all compiled methods of one class, referenced from instructions by `u16`
/// index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstPool {
    /// Deduplicated literal values.
    pub values: Vec<Value>,
    /// Deduplicated attribute names (keyed on the interned [`Symbol`]).
    pub names: Vec<Symbol>,
}

impl ConstPool {
    /// The literal at `idx`.
    ///
    /// # Panics
    /// Panics on an out-of-range index — pool indices are produced by the
    /// lowering pass, so an unknown index is a compiler bug.
    pub fn value(&self, idx: u16) -> &Value {
        &self.values[idx as usize]
    }

    /// The name at `idx`.
    ///
    /// # Panics
    /// Panics on an out-of-range index (compiler bug, as above).
    pub fn name(&self, idx: u16) -> Symbol {
        self.names[idx as usize]
    }
}
